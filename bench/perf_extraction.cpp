// PERF — google-benchmark microbenchmarks of trace analysis: workload-curve
// and arrival-curve extraction, dense versus compacted k-grids (the cost
// side of the DESIGN.md §5(1) ablation; the tightness side is printed by
// tab_fmin_sizing), the serial-vs-parallel extraction engine, the gap-engine
// ladder (per-k oracle scans vs the shared sliding-window index vs the
// streaming fallback — all bit-identical, so the ratios are pure speedup),
// and trace ingestion (strict CSV parsing vs the memory-mapped columnar
// format), capped by the end-to-end pair: load + γᵘ/γˡ on a 2M-row trace
// with a 64-entry grid, before (CSV + oracle) and after (columnar + shared
// index). tools/run_benchmarks.sh records the JSON trajectory in
// BENCH_extraction.json; the parallel paths are bit-identical to serial, so
// these measure pure scheduling overhead/speedup.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "trace/arrival_extract.h"
#include "trace/columnar.h"
#include "trace/io.h"
#include "trace/kgrid.h"
#include "workload/extract.h"

namespace {

using namespace wlc;

trace::DemandTrace demand_trace(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  trace::DemandTrace d;
  d.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    d.push_back(rng.bernoulli(0.1) ? rng.uniform_int(3000, 5000) : rng.uniform_int(200, 900));
  return d;
}

trace::TimestampTrace timestamp_trace(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  trace::TimestampTrace ts{0.0};
  for (std::size_t i = 1; i < n; ++i)
    ts.push_back(ts.back() +
                 (rng.bernoulli(0.3) ? rng.uniform(1e-5, 1e-4) : rng.uniform(1e-4, 1e-3)));
  return ts;
}

/// A ~`entries`-point log-spaced k-grid over [1, n] — the fixed 64-entry
/// grid shape of the end-to-end benches (duplicates collapse by +1 stepping,
/// so small n yields fewer entries, never duplicates).
std::vector<std::int64_t> log_grid(std::int64_t n, int entries) {
  std::vector<std::int64_t> ks;
  const double r = std::pow(static_cast<double>(n), 1.0 / (entries - 1));
  double v = 1.0;
  for (int i = 0; i < entries; ++i) {
    const auto k = std::max<std::int64_t>(ks.empty() ? 1 : ks.back() + 1,
                                          static_cast<std::int64_t>(std::llround(v)));
    if (k > n) break;
    ks.push_back(k);
    v *= r;
  }
  return ks;
}

trace::EventTrace event_trace(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  trace::EventTrace events;
  events.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.bernoulli(0.3) ? rng.uniform(1e-5, 1e-4) : rng.uniform(1e-4, 1e-3);
    events.push_back({t, static_cast<int>(i % 3),
                      rng.bernoulli(0.1) ? rng.uniform_int(3000, 5000)
                                         : rng.uniform_int(200, 900)});
  }
  return events;
}

/// The 2M-row fixture files for the ingestion and end-to-end benches,
/// written once per process into the temp directory.
constexpr std::size_t kBigRows = 2'000'000;

const trace::EventTrace& big_events() {
  static const trace::EventTrace events = event_trace(kBigRows, 21);
  return events;
}

const std::string& big_csv_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "wlc_bench_trace.csv").string();
    std::ofstream f(p);
    trace::write_event_trace_csv(f, big_events());
    return p;
  }();
  return path;
}

const std::string& big_columnar_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "wlc_bench_trace.wlccol").string();
    std::string err;
    if (!trace::write_columnar_file(p, big_events(), &err)) std::perror(err.c_str());
    return p;
  }();
  return path;
}

void BM_ExtractUpperGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 11);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_upper(d, ks));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperGrid)->Range(4096, 65536)->Complexity();

void BM_ExtractUpperDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 12);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::extract_upper_dense(d, static_cast<EventCount>(n)));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperDense)->Range(512, 8192)->Complexity(benchmark::oNSquared);

void BM_ArrivalExtractGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::TimestampTrace ts = timestamp_trace(n, 13);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state) benchmark::DoNotOptimize(trace::extract_upper_arrival(ts, ks));
}
BENCHMARK(BM_ArrivalExtractGrid)->Range(4096, 65536);

// --- Gap-engine ladder -----------------------------------------------------
// Same trace/grid as BM_ExtractUpperGrid, one bench per engine. All three
// produce bit-identical curves (pinned by the rmq suite), so the ratios are
// pure kernel speedup: per-k oracle scans are O(n·|grid|), the shared index
// answers each entry by block-bound pruning off one O(n log n) build, the
// streaming kernel does one fused pass for all entries.

void BM_ExtractUpperGridOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 11);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_upper_oracle(d, ks));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperGridOracle)->Range(4096, 65536)->Complexity();

void BM_ExtractUpperGridStreaming(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 11);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::extract_upper(d, ks, nullptr, nullptr, nullptr,
                                                     common::GapEngine::Streaming));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperGridStreaming)->Range(4096, 65536)->Complexity();

void BM_ArrivalExtractGridOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::TimestampTrace ts = timestamp_trace(n, 13);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::minspans_oracle(ts, ks));
    benchmark::DoNotOptimize(trace::maxspans_oracle(ts, ks));
  }
}
BENCHMARK(BM_ArrivalExtractGridOracle)->Range(4096, 65536);

// --- Trace ingestion: strict CSV vs memory-mapped columnar -----------------

void BM_TraceLoadCsv(benchmark::State& state) {
  const std::string& path = big_csv_path();
  for (auto _ : state) {
    std::ifstream f(path);
    benchmark::DoNotOptimize(
        trace::read_event_trace_csv(f, trace::ParsePolicy::Strict, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBigRows));
}
BENCHMARK(BM_TraceLoadCsv)->Unit(benchmark::kMillisecond);

void BM_TraceLoadColumnar(benchmark::State& state) {
  const std::string& path = big_columnar_path();
  for (auto _ : state) benchmark::DoNotOptimize(trace::read_columnar_trace(path));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBigRows));
}
BENCHMARK(BM_TraceLoadColumnar)->Unit(benchmark::kMillisecond);

// --- End to end: the acceptance pair ---------------------------------------
// 2M-row trace, 64-entry log-spaced grid, load + γᵘ + γˡ. "Before" is the
// seed pipeline (CSV parse, per-k oracle scans); "after" is this PR's
// (mapped columnar load, shared sliding-window index). The after/before
// ratio is the headline number BENCH_extraction.json tracks.

void BM_EndToEndCsvOracle(benchmark::State& state) {
  const std::string& path = big_csv_path();
  const auto ks = log_grid(static_cast<std::int64_t>(kBigRows), 64);
  for (auto _ : state) {
    std::ifstream f(path);
    const trace::EventTrace events =
        trace::read_event_trace_csv(f, trace::ParsePolicy::Strict, nullptr);
    const trace::DemandTrace d = trace::demands_of(events);
    benchmark::DoNotOptimize(workload::extract_upper_oracle(d, ks));
    benchmark::DoNotOptimize(workload::extract_lower_oracle(d, ks));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBigRows));
}
BENCHMARK(BM_EndToEndCsvOracle)->Unit(benchmark::kMillisecond);

void BM_EndToEndColumnarShared(benchmark::State& state) {
  const std::string& path = big_columnar_path();
  const auto ks = log_grid(static_cast<std::int64_t>(kBigRows), 64);
  for (auto _ : state) {
    // The production analysis path: extraction columns come straight from
    // the mapped file (read_columnar_columns), no AoS event materialization.
    trace::DemandTrace d;
    trace::read_columnar_columns(path, {}, &d, nullptr);
    benchmark::DoNotOptimize(workload::extract_upper(d, ks, nullptr, nullptr, nullptr,
                                                     common::GapEngine::SharedIndex));
    benchmark::DoNotOptimize(workload::extract_lower(d, ks, nullptr, nullptr, nullptr,
                                                     common::GapEngine::SharedIndex));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBigRows));
}
BENCHMARK(BM_EndToEndColumnarShared)->Unit(benchmark::kMillisecond);

// Parallel engine: same trace/grid as BM_ExtractUpperGrid, k-grid fanned
// across a pool of range(1) threads. The n=65536 / 4-thread point against
// the serial BM_ExtractUpperGrid/65536 baseline is the speedup the perf
// trajectory tracks.
void BM_ExtractUpperGridParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 11);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  wlc::common::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_upper(d, ks, pool));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperGridParallel)
    ->ArgsProduct({{4096, 16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void BM_ArrivalExtractGridParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::TimestampTrace ts = timestamp_trace(n, 13);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  wlc::common::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) benchmark::DoNotOptimize(trace::extract_upper_arrival(ts, ks, pool));
}
BENCHMARK(BM_ArrivalExtractGridParallel)
    ->ArgsProduct({{16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

// Batched API: 8 medium traces per iteration, fanned one-task-per-trace.
// The serial baseline runs the identical per-trace extractions in a loop.
std::vector<trace::DemandTrace> batch_traces(std::size_t count, std::size_t n) {
  std::vector<trace::DemandTrace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) traces.push_back(demand_trace(n, 100 + i));
  return traces;
}

void BM_ExtractBatchSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto traces = batch_traces(8, n);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state)
    for (const auto& d : traces) {
      benchmark::DoNotOptimize(workload::extract_upper(d, ks));
      benchmark::DoNotOptimize(workload::extract_lower(d, ks));
    }
}
BENCHMARK(BM_ExtractBatchSerial)->Arg(16384);

void BM_ExtractBatchParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto traces = batch_traces(8, n);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  wlc::common::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_batch(traces, ks, pool));
}
BENCHMARK(BM_ExtractBatchParallel)->ArgsProduct({{16384}, {1, 2, 4}})->ArgNames({"n", "threads"});

void BM_WorkloadCurveEval(benchmark::State& state) {
  const trace::DemandTrace d = demand_trace(8192, 14);
  const auto ks = trace::make_kgrid({.max_k = 8192, .dense_limit = 256, .growth = 1.2});
  const workload::WorkloadCurve g = workload::extract_upper(d, ks);
  EventCount k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.value(k));
    k = (k + 37) % 20000;
  }
}
BENCHMARK(BM_WorkloadCurveEval);

}  // namespace

BENCHMARK_MAIN();
