// PERF — google-benchmark microbenchmarks of trace analysis: workload-curve
// and arrival-curve extraction, dense versus compacted k-grids (the cost
// side of the DESIGN.md §5(1) ablation; the tightness side is printed by
// tab_fmin_sizing), and the serial-vs-parallel extraction engine
// (tools/run_benchmarks.sh records the JSON trajectory in
// BENCH_extraction.json; the parallel paths are bit-identical to serial, so
// these measure pure scheduling overhead/speedup).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "trace/arrival_extract.h"
#include "trace/kgrid.h"
#include "workload/extract.h"

namespace {

using namespace wlc;

trace::DemandTrace demand_trace(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  trace::DemandTrace d;
  d.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    d.push_back(rng.bernoulli(0.1) ? rng.uniform_int(3000, 5000) : rng.uniform_int(200, 900));
  return d;
}

trace::TimestampTrace timestamp_trace(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  trace::TimestampTrace ts{0.0};
  for (std::size_t i = 1; i < n; ++i)
    ts.push_back(ts.back() +
                 (rng.bernoulli(0.3) ? rng.uniform(1e-5, 1e-4) : rng.uniform(1e-4, 1e-3)));
  return ts;
}

void BM_ExtractUpperGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 11);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_upper(d, ks));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperGrid)->Range(4096, 65536)->Complexity();

void BM_ExtractUpperDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 12);
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::extract_upper_dense(d, static_cast<EventCount>(n)));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperDense)->Range(512, 8192)->Complexity(benchmark::oNSquared);

void BM_ArrivalExtractGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::TimestampTrace ts = timestamp_trace(n, 13);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state) benchmark::DoNotOptimize(trace::extract_upper_arrival(ts, ks));
}
BENCHMARK(BM_ArrivalExtractGrid)->Range(4096, 65536);

// Parallel engine: same trace/grid as BM_ExtractUpperGrid, k-grid fanned
// across a pool of range(1) threads. The n=65536 / 4-thread point against
// the serial BM_ExtractUpperGrid/65536 baseline is the speedup the perf
// trajectory tracks.
void BM_ExtractUpperGridParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::DemandTrace d = demand_trace(n, 11);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  wlc::common::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_upper(d, ks, pool));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtractUpperGridParallel)
    ->ArgsProduct({{4096, 16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void BM_ArrivalExtractGridParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const trace::TimestampTrace ts = timestamp_trace(n, 13);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  wlc::common::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) benchmark::DoNotOptimize(trace::extract_upper_arrival(ts, ks, pool));
}
BENCHMARK(BM_ArrivalExtractGridParallel)
    ->ArgsProduct({{16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

// Batched API: 8 medium traces per iteration, fanned one-task-per-trace.
// The serial baseline runs the identical per-trace extractions in a loop.
std::vector<trace::DemandTrace> batch_traces(std::size_t count, std::size_t n) {
  std::vector<trace::DemandTrace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) traces.push_back(demand_trace(n, 100 + i));
  return traces;
}

void BM_ExtractBatchSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto traces = batch_traces(8, n);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  for (auto _ : state)
    for (const auto& d : traces) {
      benchmark::DoNotOptimize(workload::extract_upper(d, ks));
      benchmark::DoNotOptimize(workload::extract_lower(d, ks));
    }
}
BENCHMARK(BM_ExtractBatchSerial)->Arg(16384);

void BM_ExtractBatchParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto traces = batch_traces(8, n);
  const auto ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(n), .dense_limit = 256, .growth = 1.2});
  wlc::common::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) benchmark::DoNotOptimize(workload::extract_batch(traces, ks, pool));
}
BENCHMARK(BM_ExtractBatchParallel)->ArgsProduct({{16384}, {1, 2, 4}})->ArgNames({"n", "threads"});

void BM_WorkloadCurveEval(benchmark::State& state) {
  const trace::DemandTrace d = demand_trace(8192, 14);
  const auto ks = trace::make_kgrid({.max_k = 8192, .dense_limit = 256, .growth = 1.2});
  const workload::WorkloadCurve g = workload::extract_upper(d, ks);
  EventCount k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.value(k));
    k = (k + 37) % 20000;
  }
}
BENCHMARK(BM_WorkloadCurveEval);

}  // namespace

BENCHMARK_MAIN();
