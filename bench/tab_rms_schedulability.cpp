// TAB-RMS — the paper's §3.1 application: the Lehoczky exact RMS test with
// WCET-only demand (eq. (3)) versus workload curves (eq. (4)). The paper
// proves L' <= L (eq. (5)) but reports no numbers; this harness produces a
// representative sweep: media-style modal tasks plus periodic control tasks,
// acceptance of both tests across a clock-frequency sweep, and the minimum
// schedulable clock per task set.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "sched/generators.h"
#include "sched/response_time.h"
#include "sched/rms.h"

namespace {

using namespace wlc;

sched::PeriodicTask modal_task(std::string name, TimeSec period, std::vector<Cycles> pattern) {
  const sched::CyclicDemand gen(std::move(pattern));
  sched::PeriodicTask t{std::move(name), period, period, 0, gen.upper_curve(512)};
  t.wcet = t.gamma_u->wcet();
  return t;
}

sched::PeriodicTask plain_task(std::string name, TimeSec period, Cycles wcet) {
  return sched::PeriodicTask{std::move(name), period, period, wcet, std::nullopt};
}

}  // namespace

int main() {
  using namespace wlc;

  std::cout << "=== TAB-RMS: Lehoczky exact test, WCET (eq. 3) vs workload curves (eq. 4) ===\n\n";

  // A video task decoding a GOP-like demand pattern (I,P,B,B heavy/light mix),
  // an audio task with a frame/parity pattern, and two control tasks.
  const sched::TaskSet ts{
      modal_task("video", 0.040, {5200, 2100, 900, 900, 2100, 900, 900, 2100, 900, 900, 900, 900}),
      modal_task("audio", 0.010, {300, 80, 80, 80}),
      plain_task("ctrl_fast", 0.005, 60),
      plain_task("ctrl_slow", 0.100, 2500),
  };

  common::Table loads({"f [kHz]", "U_wcet", "L (eq.3)", "L' (eq.4)", "eq.3 verdict",
                       "eq.4 verdict"});
  for (double f : {160e3, 200e3, 240e3, 280e3, 320e3, 400e3, 480e3}) {
    const auto classic = sched::lehoczky_test(ts, f, sched::DemandModel::WcetOnly);
    const auto curve = sched::lehoczky_test(ts, f, sched::DemandModel::WorkloadCurve);
    loads.add_row({common::fmt_f(f / 1e3, 0), common::fmt_f(sched::utilization_wcet(ts, f), 3),
                   common::fmt_f(classic.overall, 3), common::fmt_f(curve.overall, 3),
                   classic.schedulable ? "schedulable" : "NOT schedulable",
                   curve.schedulable ? "schedulable" : "NOT schedulable"});
  }
  loads.print(std::cout);

  const Hertz f_curve = sched::min_schedulable_frequency(ts, sched::DemandModel::WorkloadCurve);
  const Hertz f_wcet = sched::min_schedulable_frequency(ts, sched::DemandModel::WcetOnly);
  std::cout << "\nminimum schedulable clock:  eq.(3) " << common::fmt_f(f_wcet / 1e3, 1)
            << " kHz,  eq.(4) " << common::fmt_f(f_curve / 1e3, 1) << " kHz,  savings "
            << common::fmt_pct(1.0 - f_curve / f_wcet) << "\n\n";

  // Acceptance sweep over random modal task sets at a fixed clock: how many
  // sets each test admits (the L' <= L band).
  common::Rng rng(20040216);
  int both = 0, only_curve = 0, neither = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    sched::TaskSet set;
    for (int i = 0; i < 4; ++i) {
      std::vector<Cycles> pat;
      const int len = 2 + static_cast<int>(rng.uniform_int(0, 10));
      for (int j = 0; j < len; ++j)
        pat.push_back(rng.bernoulli(0.15) ? rng.uniform_int(300, 900)
                                          : rng.uniform_int(20, 120));
      set.push_back(modal_task("t", rng.uniform(0.01, 0.1), pat));
    }
    const Hertz f = 55e3;
    const bool c = sched::lehoczky_test(set, f, sched::DemandModel::WcetOnly).schedulable;
    const bool w = sched::lehoczky_test(set, f, sched::DemandModel::WorkloadCurve).schedulable;
    if (c && w)
      ++both;
    else if (w)
      ++only_curve;
    else if (!c && !w)
      ++neither;
    else
      std::cout << "VIOLATION of eq. (5): WCET accepted what curves rejected\n";
  }
  common::Table sweep({"verdict", "task sets", "share"});
  sweep.add_row({"accepted by both tests", std::to_string(both),
                 common::fmt_pct(static_cast<double>(both) / trials)});
  sweep.add_row({"accepted ONLY by workload curves", std::to_string(only_curve),
                 common::fmt_pct(static_cast<double>(only_curve) / trials)});
  sweep.add_row({"rejected by both", std::to_string(neither),
                 common::fmt_pct(static_cast<double>(neither) / trials)});
  std::cout << "\nacceptance sweep (" << trials << " random modal task sets @ 55 kHz):\n";
  sweep.print(std::cout);

  std::cout << "\nReproduction check (paper eq. (5)): no task set was accepted by eq. (3) but\n"
            << "rejected by eq. (4); the middle row is the schedulability gained by the\n"
            << "workload-curve characterization.\n\n";
  return 0;
}
