// TAB-EXT — extension experiments beyond the paper's own tables (DESIGN.md
// §5 and the natural follow-ups of its research line):
//
//  (a) EDF demand-bound sizing, classic vs workload curves — the paper's
//      §3.1 argument transplanted from fixed priorities to EDF (its related
//      work [2]);
//  (b) deadline-driven frequency sizing of the MPEG IDCT/MC stage — the
//      delay analogue of eq. (9) — with energy implications under the cubic
//      power law;
//  (c) DVS: a two-mode backlog-threshold governor simulated on the decoder
//      traces, compared against the constant worst-case clock;
//  (d) playout-delay analysis from the lower arrival curve — the consumer-
//      side counterpart of the paper's producer-side buffer sizing.
#include <cmath>
#include <iostream>

#include "bench/experiment_common.h"
#include "common/table.h"
#include "mpeg/clip.h"
#include "rtc/energy.h"
#include "rtc/sizing.h"
#include "sched/edf.h"
#include "sched/generators.h"
#include "sim/components.h"
#include "trace/arrival_extract.h"

namespace {

using namespace wlc;

sched::PeriodicTask modal_task(std::string name, TimeSec period, std::vector<Cycles> pattern) {
  const sched::CyclicDemand gen(std::move(pattern));
  sched::PeriodicTask t{std::move(name), period, period, 0, gen.upper_curve(512)};
  t.wcet = t.gamma_u->wcet();
  return t;
}

}  // namespace

int main() {
  using namespace wlc;
  std::cout << "=== TAB-EXT: extension experiments ===\n\n";

  // ---- (a) EDF sizing ------------------------------------------------------
  const sched::TaskSet media{
      modal_task("video", 0.040, {5400, 2300, 900, 900, 2300, 900, 900, 2300, 900, 900, 900, 900}),
      modal_task("audio", 0.010, {300, 80, 80, 80}),
      sched::PeriodicTask{"ctrl", 0.005, 0.005, 60, std::nullopt},
  };
  const Hertz f_edf_wcet = sched::min_edf_frequency(media, sched::DemandModel::WcetOnly);
  const Hertz f_edf_curve = sched::min_edf_frequency(media, sched::DemandModel::WorkloadCurve);
  const Hertz f_rms_wcet = sched::min_schedulable_frequency(media, sched::DemandModel::WcetOnly);
  const Hertz f_rms_curve =
      sched::min_schedulable_frequency(media, sched::DemandModel::WorkloadCurve);
  common::Table edf({"policy", "WCET min clock [kHz]", "curve min clock [kHz]", "savings"});
  edf.add_row({"RMS (eq.3/4)", common::fmt_f(f_rms_wcet / 1e3, 1),
               common::fmt_f(f_rms_curve / 1e3, 1), common::fmt_pct(1.0 - f_rms_curve / f_rms_wcet)});
  edf.add_row({"EDF (dbf)", common::fmt_f(f_edf_wcet / 1e3, 1),
               common::fmt_f(f_edf_curve / 1e3, 1), common::fmt_pct(1.0 - f_edf_curve / f_edf_wcet)});
  edf.print(std::cout);
  std::cout << "\n";

  // ---- (b) deadline-driven sizing on the decoder stage ---------------------
  mpeg::TraceConfig cfg = bench::paper_config();
  cfg.frames = 24;  // the sizing only needs a couple of GOPs here
  const auto clip = bench::analyze_clip(cfg, mpeg::clip_library()[8],  // action_movie
                                        24LL * cfg.stream.mb_per_frame());
  const rtc::EnergyModel energy;
  common::Table dl({"per-MB deadline [ms]", "F_min(γ) [MHz]", "F_min(WCET) [MHz]",
                    "energy ratio (curve/wcet)"});
  for (double ms : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const Hertz fg = rtc::min_frequency_for_delay(clip.arrivals, clip.gamma_u, ms * 1e-3);
    const Hertz fw = rtc::min_frequency_for_delay(
        clip.arrivals,
        workload::WorkloadCurve::from_constant_demand(workload::Bound::Upper,
                                                      clip.gamma_u.wcet()),
        ms * 1e-3);
    dl.add_row({common::fmt_f(ms, 0), common::fmt_f(fg / 1e6, 1), common::fmt_f(fw / 1e6, 1),
                common::fmt_f(energy.ratio(fg, fw), 3)});
  }
  dl.print(std::cout);
  std::cout << "\n";

  // ---- (c) DVS governor on the decoder trace -------------------------------
  const EventCount buffer = cfg.stream.mb_per_frame();
  const Hertz f_gamma = rtc::min_frequency_workload(clip.arrivals, clip.gamma_u, buffer);
  const Hertz f_wcet = rtc::min_frequency_wcet(clip.arrivals, clip.gamma_u.wcet(), buffer);
  const Hertz f_low = 0.6 * f_gamma;
  const auto constant = sim::run_fifo_pipeline(clip.trace.pe2_input, f_wcet);
  const auto sized = sim::run_fifo_pipeline(clip.trace.pe2_input, f_gamma);
  const auto dvs = sim::run_dvs_pipeline(clip.trace.pe2_input, [&](std::int64_t backlog) {
    return backlog > buffer / 8 ? f_gamma : f_low;
  });
  common::Table dvst({"configuration", "clock(s) [MHz]", "max backlog [MB]",
                      "energy vs WCET clock"});
  auto row = [&](const char* name, const std::string& clocks, const sim::PipelineStats& s) {
    dvst.add_row({name, clocks, common::fmt_i(s.max_backlog),
                  common::fmt_pct(s.energy / constant.energy)});
  };
  row("constant F^w_min", common::fmt_f(f_wcet / 1e6, 0), constant);
  row("constant F^γ_min", common::fmt_f(f_gamma / 1e6, 0), sized);
  row("two-mode DVS", common::fmt_f(f_low / 1e6, 0) + "/" + common::fmt_f(f_gamma / 1e6, 0), dvs);
  dvst.print(std::cout);
  std::cout << "(DVS keeps the backlog bounded while spending most macroblocks at the low "
               "clock — the curves' long-run slope is what makes f_low admissible.)\n\n";

  // ---- (d) playout delay ----------------------------------------------------
  // Jitter only exists under transport-accurate pacing (a preloaded
  // bitstream drains PE1 at a steady compute rate): regenerate the clip with
  // CBR delivery + VBV prefetch, where bit-heavy I pictures trickle out.
  mpeg::TraceConfig paced = cfg;
  paced.preloaded_bitstream = false;
  const mpeg::ClipTrace paced_trace = mpeg::generate_clip_trace(paced, mpeg::clip_library()[8]);
  const auto ks = bench::paper_kgrid(static_cast<std::int64_t>(paced_trace.pe2_input.size()));
  const auto lower = trace::extract_lower_arrival(trace::timestamps_of(paced_trace.pe2_input), ks);
  common::Table po({"display rate [MB/s]", "share of production", "min playout delay [ms]"});
  for (double share : {0.6, 0.8, 0.9, 0.95}) {
    const double rate = share * lower.long_run_rate();
    const TimeSec d = rtc::min_playout_delay(lower, rate);
    po.add_row({common::fmt_f(rate / 1e3, 1) + "k", common::fmt_pct(share),
                common::fmt_f(d * 1e3, 2)});
  }
  po.print(std::cout);
  std::cout << "(transport-paced PE1 output is jittery — I pictures trickle in at the CBR\n"
               " rate — so a display draining close to the production rate needs real\n"
               " pre-buffering: the consumer-side mirror of eq. (9).)\n\n";

  // ---- (e) ablation: scene non-stationarity (DESIGN.md §2, note 4) ---------
  // Freezing the scene parameters (cut rate 0) removes the intense stretches
  // where demand and burstiness co-occur: the sizing relaxes and the realized
  // backlog falls far from the bound.
  mpeg::ClipProfile frozen = mpeg::clip_library()[8];
  frozen.scene_change_rate = 0.0;
  const auto frozen_clip = bench::analyze_clip(cfg, frozen, 24LL * cfg.stream.mb_per_frame());
  const Hertz f_frozen = rtc::min_frequency_workload(frozen_clip.arrivals, frozen_clip.gamma_u,
                                                     buffer);
  const auto sim_scenes = sim::run_fifo_pipeline(clip.trace.pe2_input, f_gamma);
  const auto sim_frozen = sim::run_fifo_pipeline(frozen_clip.trace.pe2_input, f_frozen);
  common::Table abl({"clip variant", "F^γ_min [MHz]", "realized backlog / b @ own F"});
  abl.add_row({"action_movie (scenes)", common::fmt_f(f_gamma / 1e6, 1),
               common::fmt_f(static_cast<double>(sim_scenes.max_backlog) /
                                 static_cast<double>(buffer),
                             3)});
  abl.add_row({"action_movie (frozen)", common::fmt_f(f_frozen / 1e6, 1),
               common::fmt_f(static_cast<double>(sim_frozen.max_backlog) /
                                 static_cast<double>(buffer),
                             3)});
  std::cout << "ablation: scene non-stationarity\n";
  abl.print(std::cout);
  std::cout << "\n";
  return 0;
}
