// Shared configuration for the experiment harnesses so every binary
// reproduces the paper's case study from the same deterministic inputs.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"

#include "mpeg/trace_gen.h"
#include "trace/arrival_curve.h"
#include "trace/arrival_extract.h"
#include "trace/kgrid.h"
#include "workload/extract.h"

namespace wlc::bench {

/// The paper's stream setup (720×576 @ 25 fps, 9.78 Mbit/s CBR, N=12/M=3)
/// over 48 frames (4 GOPs) per clip — long enough for steady-state windows
/// of 24 frames (38 880 macroblocks), short enough to run in seconds.
inline mpeg::TraceConfig paper_config() {
  mpeg::TraceConfig cfg;  // StreamParams defaults are the paper's
  cfg.frames = 48;
  cfg.pe1_frequency = 150e6;
  return cfg;
}

/// Window-size grid used by every extraction: exact for k <= 512, then a
/// tight 2% geometric ladder up to the 24-frame analysis window. The
/// conservative between-grid steps inflate bounds by at most the growth
/// factor, so the ladder is kept tight where eq. (9)'s critical window
/// lives (thousands of macroblocks); see the grid ablation in
/// tab_fmin_sizing for the cost of coarser ladders.
inline std::vector<std::int64_t> paper_kgrid(std::int64_t max_k) {
  return trace::make_kgrid({.max_k = max_k, .dense_limit = 512, .growth = 1.01});
}

/// Optional machine-readable export: when the harness is invoked with
/// `--csv <dir>`, tables are also written as CSV files there (for external
/// plotting); without the flag nothing is written.
class CsvSink {
 public:
  CsvSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string_view(argv[i]) == "--csv") dir_ = argv[i + 1];
  }
  void write(const std::string& name, const common::Table& table) const {
    if (dir_.empty()) return;
    std::ofstream f(dir_ + "/" + name + ".csv");
    table.print_csv(f);
  }

 private:
  std::string dir_;
};

struct ClipAnalysis {
  mpeg::ClipTrace trace;
  workload::WorkloadCurve gamma_u;
  workload::WorkloadCurve gamma_l;
  trace::EmpiricalArrivalCurve arrivals;
};

/// Generates and analyzes one clip (PE2 stage: IDCT/MC). The grid ladder
/// always extends to the full trace length: stopping it earlier would leave
/// a single giant conservative step between the last grid point and the
/// trace-length anchor, and eq. (9)'s supremum would land in that artifact.
inline ClipAnalysis analyze_clip(const mpeg::TraceConfig& cfg, const mpeg::ClipProfile& profile,
                                 std::int64_t window_events) {
  mpeg::ClipTrace t = mpeg::generate_clip_trace(cfg, profile);
  const auto ks =
      paper_kgrid(std::max<std::int64_t>(window_events,
                                         static_cast<std::int64_t>(t.pe2_input.size())));
  auto gu = workload::extract_upper(trace::demands_of(t.pe2_input), ks);
  auto gl = workload::extract_lower(trace::demands_of(t.pe2_input), ks);
  auto arr = trace::extract_upper_arrival(trace::timestamps_of(t.pe2_input), ks);
  return ClipAnalysis{std::move(t), std::move(gu), std::move(gl), std::move(arr)};
}

}  // namespace wlc::bench
