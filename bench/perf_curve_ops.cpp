// PERF — google-benchmark microbenchmarks of the curve-algebra substrate:
// the O(n²) (min,+) operators, the convex fast path (DESIGN.md §5(3)), and
// piecewise-linear evaluation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "curve/discrete_curve.h"
#include "curve/pwl_curve.h"

namespace {

using namespace wlc;
using curve::DiscreteCurve;
using curve::PwlCurve;

DiscreteCurve random_nondecreasing(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v{0.0};
  for (std::size_t i = 1; i < n; ++i) v.push_back(v.back() + rng.uniform(0.0, 3.0));
  return DiscreteCurve(std::move(v), 1.0);
}

DiscreteCurve random_convex(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v{0.0};
  double slope = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    slope += rng.uniform(0.0, 0.5);
    v.push_back(v.back() + slope);
  }
  return DiscreteCurve(std::move(v), 1.0);
}

void BM_MinPlusConv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_nondecreasing(n, 1);
  const DiscreteCurve g = random_nondecreasing(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinPlusConv)->Range(64, 4096)->Complexity(benchmark::oNSquared);

void BM_MinPlusConvConvexFastPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_convex(n, 3);
  const DiscreteCurve g = random_convex(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv_convex(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinPlusConvConvexFastPath)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_MinPlusDeconv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_nondecreasing(n, 5);
  const DiscreteCurve g = random_nondecreasing(n, 6);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_deconv(f, g));
}
BENCHMARK(BM_MinPlusDeconv)->Range(64, 2048);

void BM_SupDiffBacklog(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_nondecreasing(n, 7);
  const DiscreteCurve g = random_nondecreasing(n, 8);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::sup_diff(f, g));
}
BENCHMARK(BM_SupDiffBacklog)->Range(1024, 65536);

void BM_PwlEvalPeriodic(benchmark::State& state) {
  const PwlCurve stairs = PwlCurve::staircase(1.0, 2.0, 3.0, 3.0);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stairs.eval(x));
    x += 17.3;
    if (x > 1e9) x = 0.0;
  }
}
BENCHMARK(BM_PwlEvalPeriodic);

void BM_PwlMinWithCrossings(benchmark::State& state) {
  const PwlCurve a = PwlCurve::staircase(1.0, 1.0, 2.0, 2.0);
  const PwlCurve b = PwlCurve::token_bucket(4.0, 0.4);
  for (auto _ : state) benchmark::DoNotOptimize(PwlCurve::min(a, b, 500.0));
}
BENCHMARK(BM_PwlMinWithCrossings);

}  // namespace

BENCHMARK_MAIN();
