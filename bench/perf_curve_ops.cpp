// PERF — google-benchmark microbenchmarks of the curve-algebra substrate.
//
// The headline comparison is the shape-aware engine's dispatch ladder on the
// same operands: naive O(n²) oracle vs cache-blocked dense kernel vs shape
// fast path vs memo-cache hit, at n ∈ {256, 1024, 4096} on convex/concave
// inputs (every rung is bit-identical; only the route differs — see
// docs/architecture.md, "Curve algebra & dispatch"). tools/run_benchmarks.sh
// records these as BENCH_curve_ops.json. The PWL-compaction benches time the
// bounded-error knot tier (10⁶-point fit/expand, knot kernels vs the dense
// fast path on identical operands); the PWL and sup-diff benches cover the
// remaining hot evaluation paths.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "curve/compact.h"
#include "curve/discrete_curve.h"
#include "curve/engine.h"
#include "curve/op_cache.h"
#include "curve/pwl_curve.h"

namespace {

using namespace wlc;
using curve::DiscreteCurve;
using curve::OpCache;
using curve::PwlCurve;
namespace engine = curve::engine;

DiscreteCurve random_nondecreasing(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v{0.0};
  for (std::size_t i = 1; i < n; ++i) v.push_back(v.back() + rng.uniform(0.0, 3.0));
  return DiscreteCurve(std::move(v), 1.0);
}

DiscreteCurve random_convex(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v{0.0};
  double slope = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    slope += rng.uniform(0.0, 0.5);
    v.push_back(v.back() + slope);
  }
  return DiscreteCurve(std::move(v), 1.0);
}

DiscreteCurve random_concave(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v{0.0};
  double slope = static_cast<double>(n);
  for (std::size_t i = 1; i < n; ++i) {
    slope -= rng.uniform(0.0, 0.5);
    v.push_back(v.back() + slope);
  }
  return DiscreteCurve(std::move(v), 1.0);
}

void set_engine(bool fast_paths, bool use_cache) {
  engine::Config cfg;
  cfg.fast_paths = fast_paths;
  cfg.use_cache = use_cache;
  engine::set_config(cfg);
  OpCache::global().set_capacity_bytes(OpCache::kDefaultCapacityBytes);
  OpCache::global().clear();
}

// ---- dispatch ladder on convex (min,+) convolution -------------------------

void BM_ConvexMinPlusConv_Naive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_convex(n, 3);
  const DiscreteCurve g = random_convex(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv_naive(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexMinPlusConv_Naive)
    ->Arg(256)->Arg(1024)->Arg(4096)->Complexity(benchmark::oNSquared);

void BM_ConvexMinPlusConv_DenseTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_convex(n, 3);
  const DiscreteCurve g = random_convex(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(engine::min_plus_conv_dense(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexMinPlusConv_DenseTiled)
    ->Arg(256)->Arg(1024)->Arg(4096)->Complexity(benchmark::oNSquared);

void BM_ConvexMinPlusConv_FastPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_convex(n, 3);
  const DiscreteCurve g = random_convex(n, 4);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexMinPlusConv_FastPath)
    ->Arg(256)->Arg(1024)->Arg(4096)->Complexity(benchmark::oN);

void BM_ConvexMinPlusConv_Cached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_convex(n, 3);
  const DiscreteCurve g = random_convex(n, 4);
  set_engine(/*fast_paths=*/true, /*use_cache=*/true);
  benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv(f, g));  // warm the cache
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexMinPlusConv_Cached)
    ->Arg(256)->Arg(1024)->Arg(4096)->Complexity(benchmark::oN);

// ---- dispatch ladder on concave (max,+) convolution ------------------------

void BM_ConcaveMaxPlusConv_Naive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_concave(n, 5);
  const DiscreteCurve g = random_concave(n, 6);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::max_plus_conv_naive(f, g));
}
BENCHMARK(BM_ConcaveMaxPlusConv_Naive)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ConcaveMaxPlusConv_FastPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_concave(n, 5);
  const DiscreteCurve g = random_concave(n, 6);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::max_plus_conv(f, g));
}
BENCHMARK(BM_ConcaveMaxPlusConv_FastPath)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ConcaveMaxPlusConv_Cached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_concave(n, 5);
  const DiscreteCurve g = random_concave(n, 6);
  set_engine(/*fast_paths=*/true, /*use_cache=*/true);
  benchmark::DoNotOptimize(DiscreteCurve::max_plus_conv(f, g));  // warm the cache
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::max_plus_conv(f, g));
}
BENCHMARK(BM_ConcaveMaxPlusConv_Cached)->Arg(256)->Arg(1024)->Arg(4096);

// ---- binary-search deconvolution fast path ---------------------------------

void BM_ConcaveConvexMinPlusDeconv_Naive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_concave(n, 7);
  const DiscreteCurve g = random_convex(n, 8);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_deconv_naive(f, g));
}
BENCHMARK(BM_ConcaveConvexMinPlusDeconv_Naive)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ConcaveConvexMinPlusDeconv_FastPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_concave(n, 7);
  const DiscreteCurve g = random_convex(n, 8);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_deconv(f, g));
}
BENCHMARK(BM_ConcaveConvexMinPlusDeconv_FastPath)->Arg(256)->Arg(1024)->Arg(4096);

// ---- general-shape operands (dense route through the public API) -----------

void BM_MinPlusConv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_nondecreasing(n, 1);
  const DiscreteCurve g = random_nondecreasing(n, 2);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinPlusConv)->Range(64, 4096)->Complexity(benchmark::oNSquared);

void BM_MinPlusConvConvexFastPath(benchmark::State& state) {
  // The standalone convex kernel (increment merge), kept for comparison with
  // the engine's index-tracked merge above.
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_convex(n, 3);
  const DiscreteCurve g = random_convex(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv_convex(f, g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinPlusConvConvexFastPath)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_MinPlusDeconv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_nondecreasing(n, 5);
  const DiscreteCurve g = random_nondecreasing(n, 6);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_deconv(f, g));
}
BENCHMARK(BM_MinPlusDeconv)->Range(64, 2048);

void BM_SupDiffBacklog(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = random_nondecreasing(n, 7);
  const DiscreteCurve g = random_nondecreasing(n, 8);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::sup_diff(f, g));
}
BENCHMARK(BM_SupDiffBacklog)->Range(1024, 65536);

// ---- PWL compaction tier ---------------------------------------------------

// Ramp + periodic tooth: the canonical "huge but regular" γ envelope. Under
// a two-tooth absolute budget the greedy fit rides the ramp for many periods
// per segment, so the 10⁶-point curve compacts ≥ 50× (the same construction
// tests/pwl_compact_test.cpp pins as a hard floor).
DiscreteCurve sawtooth(std::size_t n, double ramp, double amp, std::size_t period) {
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(ramp * static_cast<double>(i) +
                amp * static_cast<double>(i % period) / static_cast<double>(period));
  return DiscreteCurve(std::move(v), 1.0);
}

// Convex staircase-of-slopes: slope changes only every n/segs samples, so an
// exact (eps = 0) compaction keeps ~segs knots out of n points. This is the
// operand class where the knot kernels earn their keep: the dense fast path
// is O(n) in samples, compact_conv_merge is O(k) in knots.
DiscreteCurve blocky_convex(std::size_t n, std::size_t segs, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v{0.0};
  double slope = 0.0;
  const std::size_t per = n / segs;
  for (std::size_t i = 1; i < n; ++i) {
    // Dyadic slope steps keep every sample exactly representable, so the
    // stored increments are *exactly* piecewise-constant — the shape
    // classifier (tol = 0) sees Convex and the eps = 0 compaction keeps one
    // knot per block instead of fragmenting on ulp drift.
    if (i % per == 1) slope += 0.25 * static_cast<double>(rng.uniform_int(1, 4));
    v.push_back(v.back() + slope);
  }
  return DiscreteCurve(std::move(v), 1.0);
}

void BM_CompactMillionPointSawtooth(benchmark::State& state) {
  const DiscreteCurve dense = sawtooth(1'000'000, 0.875, 48.0, 128);
  const curve::CompactBudget budget{96.0, 0.0};
  double reduction = 0.0;
  for (auto _ : state) {
    const curve::CompactCurve c = curve::CompactCurve::compact_upper(dense, budget);
    reduction = c.reduction();
    benchmark::DoNotOptimize(c);
  }
  state.counters["reduction_x"] = reduction;
}
BENCHMARK(BM_CompactMillionPointSawtooth)->Unit(benchmark::kMillisecond);

void BM_CompactMillionPointExpand(benchmark::State& state) {
  // The inverse trip: materializing the dense curve back out of the tier.
  const curve::CompactCurve c = curve::CompactCurve::compact_upper(
      sawtooth(1'000'000, 0.875, 48.0, 128), curve::CompactBudget{96.0, 0.0});
  for (auto _ : state) benchmark::DoNotOptimize(c.expand());
  state.counters["knots"] = static_cast<double>(c.size());
}
BENCHMARK(BM_CompactMillionPointExpand)->Unit(benchmark::kMillisecond);

void BM_BlockyConvexMinPlusConv_DenseFastPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DiscreteCurve f = blocky_convex(n, 64, 9);
  const DiscreteCurve g = blocky_convex(n, 64, 10);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state) benchmark::DoNotOptimize(DiscreteCurve::min_plus_conv(f, g));
}
BENCHMARK(BM_BlockyConvexMinPlusConv_DenseFastPath)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_BlockyConvexMinPlusConv_CompactKnots(benchmark::State& state) {
  // Same operands as the dense twin above, exactly (eps = 0) compacted; the
  // knot-merge kernel runs on ~64 knots regardless of n.
  const auto n = static_cast<std::size_t>(state.range(0));
  const curve::CompactBudget exact{};
  const curve::CompactCurve cf =
      curve::CompactCurve::compact_upper(blocky_convex(n, 64, 9), exact);
  const curve::CompactCurve cg =
      curve::CompactCurve::compact_upper(blocky_convex(n, 64, 10), exact);
  set_engine(/*fast_paths=*/true, /*use_cache=*/false);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        engine::apply_compact(curve::CurveOp::MinPlusConv, cf, cg));
  state.counters["knots_f"] = static_cast<double>(cf.size());
}
BENCHMARK(BM_BlockyConvexMinPlusConv_CompactKnots)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_PwlEvalPeriodic(benchmark::State& state) {
  const PwlCurve stairs = PwlCurve::staircase(1.0, 2.0, 3.0, 3.0);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stairs.eval(x));
    x += 17.3;
    if (x > 1e9) x = 0.0;
  }
}
BENCHMARK(BM_PwlEvalPeriodic);

void BM_PwlMinWithCrossings(benchmark::State& state) {
  const PwlCurve a = PwlCurve::staircase(1.0, 1.0, 2.0, 2.0);
  const PwlCurve b = PwlCurve::token_bucket(4.0, 0.4);
  for (auto _ : state) benchmark::DoNotOptimize(PwlCurve::min(a, b, 500.0));
}
BENCHMARK(BM_PwlMinWithCrossings);

}  // namespace

BENCHMARK_MAIN();
