// TAB-NETPROC — a second, fully *analytic* case study (no traces anywhere):
// a network packet processor in the style of the platform-analysis framework
// the paper plugs into (its reference [4]).
//
// Two flows traverse a processing element:
//   * voice: periodic-with-jitter RTP stream, every packet runs the small
//     codec path;
//   * data: sporadic TCP stream whose packets are mostly forwarded
//     (cheap) but at most 1 in 4 takes the slow path (checksum + firewall
//     rules) and at most 1 in 32 hits the route-miss path — per-type
//     occurrence bounds from which γᵘ/γˡ follow analytically (§2.2 style,
//     generalized by workload/type_bounds).
//
// Because every curve is analytic, the results are hard guarantees for the
// specified environment, not per-trace statements: exactly the regime the
// paper distinguishes in §2. The harness sizes the PE clock for both flows
// under fixed-priority service, compares against WCET-only sizing, and
// cross-validates with adversarial conforming traces (trace/event_gen).
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "rtc/mpa.h"
#include "sim/components.h"
#include "trace/event_gen.h"
#include "workload/type_bounds.h"

namespace {

using namespace wlc;

/// Data-flow workload curves from per-type occurrence bounds.
workload::EventTypeTable data_types() {
  workload::EventTypeTable t;
  t.add("forward", 350, 500);       // fast path
  t.add("slow_path", 1800, 2600);   // checksum + rules
  t.add("route_miss", 5200, 7000);  // software lookup
  return t;
}

std::vector<workload::TypeOccurrenceBounds> data_bounds() {
  return {
      // forward: whatever is left.
      {[](EventCount) { return EventCount{0}; }, [](EventCount k) { return k; }},
      // slow path: at most 1 + ⌊k/4⌋ of any k consecutive packets.
      {[](EventCount) { return EventCount{0}; }, [](EventCount k) { return 1 + k / 4; }},
      // route miss: at most 1 + ⌊k/32⌋.
      {[](EventCount) { return EventCount{0}; }, [](EventCount k) { return 1 + k / 32; }},
  };
}

}  // namespace

int main() {
  using namespace wlc;
  std::cout << "=== TAB-NETPROC: analytic packet-processor sizing (no traces) ===\n\n";

  const auto types = data_types();
  const auto bounds = data_bounds();
  const auto gu_data = workload::upper_from_type_bounds(types, bounds, 512);
  const auto gl_data = workload::lower_from_type_bounds(types, bounds, 512);

  std::cout << "data-flow workload curve from type bounds: γᵘ(1) = " << gu_data.wcet()
            << ", γᵘ(32)/32 = " << common::fmt_f(static_cast<double>(gu_data.value(32)) / 32.0, 0)
            << ", long-run = " << common::fmt_f(gu_data.long_run_demand(), 0)
            << " cycles/packet (WCET-only would charge " << gu_data.wcet() << " always)\n\n";

  // System model: voice above data on one PE.
  const trace::PjdModel voice_model{.period = 20e-6, .jitter = 60e-6, .min_spacing = 2e-6};
  const trace::SporadicModel data_model{.t_min = 8e-6, .t_max = 40e-6};

  auto build = [&](Hertz f, const workload::WorkloadCurve& gu,
                   const workload::WorkloadCurve& gl) {
    rtc::SystemModel m;
    m.add_resource("pe", f);
    m.add_stream("voice", voice_model.upper_curve(0.2), voice_model.lower_curve());
    m.add_stream("data", data_model.upper_curve(), data_model.lower_curve());
    m.add_task("voice_codec", "voice", "pe",
               workload::WorkloadCurve::from_constant_demand(workload::Bound::Upper, 900),
               workload::WorkloadCurve::from_constant_demand(workload::Bound::Lower, 700));
    m.add_task("data_path", "data", "pe", gu, gl);
    return m.analyze(/*dt=*/4e-6, /*horizon=*/0.02);
  };

  // Clock sweep: when does the data path's delay bound meet a 1 ms budget?
  const auto gu_wcet =
      workload::WorkloadCurve::from_constant_demand(workload::Bound::Upper, gu_data.wcet());
  const auto gl_bcet =
      workload::WorkloadCurve::from_constant_demand(workload::Bound::Lower, gl_data.bcet());
  common::Table sweep({"PE clock [MHz]", "data delay, curves [µs]", "data delay, WCET [µs]"});
  auto fmt_delay = [](TimeSec d) {
    return std::isfinite(d) ? common::fmt_f(d * 1e6, 1) : std::string("unbounded");
  };
  Hertz f_ok_curves = 0.0;
  Hertz f_ok_wcet = 0.0;
  for (double mhz : {60.0, 120.0, 180.0, 260.0, 380.0, 600.0, 950.0}) {
    const auto rc = build(mhz * 1e6, gu_data, gl_data);
    const auto rw = build(mhz * 1e6, gu_wcet, gl_bcet);
    const TimeSec dc = rc.task("data_path").delay;
    const TimeSec dw = rw.task("data_path").delay;
    if (f_ok_curves == 0.0 && std::isfinite(dc) && dc <= 1e-3) f_ok_curves = mhz * 1e6;
    if (f_ok_wcet == 0.0 && std::isfinite(dw) && dw <= 1e-3) f_ok_wcet = mhz * 1e6;
    sweep.add_row({common::fmt_f(mhz, 0), fmt_delay(dc), fmt_delay(dw)});
  }
  sweep.print(std::cout);
  auto fmt_mhz = [](Hertz f) {
    return f > 0.0 ? common::fmt_f(f / 1e6, 0) + " MHz" : std::string("none in sweep");
  };
  std::cout << "\nfirst sweep point meeting a 1 ms data deadline: " << fmt_mhz(f_ok_curves)
            << " with curves vs " << fmt_mhz(f_ok_wcet) << " WCET-only\n\n";

  // Cross-validation: adversarial conforming traces at the curve-sized clock
  // must stay within the analytic delay bound.
  const auto report = build(f_ok_curves, gu_data, gl_data);
  const TimeSec bound = report.task("data_path").delay;
  trace::EventTrace events;
  const auto ts = data_model.generate_adversarial(2000);
  // Adversarial demands too: the worst admissible mix, greedily front-loaded
  // (route misses as often as the bound allows).
  EventCount miss_used = 0, slow_used = 0;
  for (EventCount i = 0; i < 2000; ++i) {
    Cycles d = 500;
    if (miss_used < 1 + i / 32) {
      d = 7000;
      ++miss_used;
    } else if (slow_used < 1 + i / 4) {
      d = 2600;
      ++slow_used;
    }
    events.push_back({ts[static_cast<std::size_t>(i)], 0, d});
  }
  // Voice has priority: the data path sees the leftover; emulate with the
  // bound-side service by running the pipeline at the PE clock *minus* the
  // voice long-run share (a mild check, the analytic bound covers worse).
  const double voice_share = 900.0 / 20e-6;  // cycles per second
  const auto stats = sim::run_fifo_pipeline(events, f_ok_curves - voice_share);
  std::cout << "adversarial conforming replay at " << common::fmt_f(f_ok_curves / 1e6, 0)
            << " MHz (voice share deducted): worst data latency "
            << common::fmt_f(stats.max_latency * 1e6, 1) << " µs <= analytic bound "
            << common::fmt_f(bound * 1e6, 1) << " µs: "
            << (stats.max_latency <= bound + 1e-9 ? "holds" : "VIOLATED") << "\n\n";
  return stats.max_latency <= bound + 1e-9 ? 0 : 1;
}
