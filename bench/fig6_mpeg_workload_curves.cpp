// FIG6 — reproduces Figure 6 of the paper: upper/lower workload curves of
// the MPEG-2 IDCT/MC subtask (PE2), extracted from the traces of 14 video
// clips over a 24-frame analysis window and combined by pointwise max/min,
// plotted against the WCET/BCET cones.
#include <iostream>
#include <optional>

#include "bench/experiment_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "mpeg/analyze.h"
#include "mpeg/clip.h"

int main(int argc, char** argv) {
  using namespace wlc;
  const bench::CsvSink csv(argc, argv);
  const mpeg::TraceConfig cfg = bench::paper_config();
  const std::int64_t window = 24LL * cfg.stream.mb_per_frame();  // 38'880 MBs

  std::cout << "=== FIG6: MPEG-2 workload curves (IDCT/MC stage, PE2) ===\n"
            << "14 synthetic clips, " << cfg.frames << " frames each, window = 24 frames ("
            << common::fmt_i(window) << " macroblocks)\n\n";

  // The 14 clips are generated + extracted in parallel (bit-identical to the
  // old per-clip loop); the pointwise combine stays in library order.
  common::ThreadPool pool;
  const std::vector<mpeg::ClipAnalysis> analyses = mpeg::analyze_clips(
      cfg, mpeg::clip_library(), {.min_max_k = window, .dense_limit = 512, .growth = 1.01},
      pool);

  std::optional<workload::WorkloadCurve> gu;
  std::optional<workload::WorkloadCurve> gl;
  for (const auto& a : analyses) {
    gu = gu ? workload::WorkloadCurve::combine(*gu, a.gamma_u) : a.gamma_u;
    gl = gl ? workload::WorkloadCurve::combine(*gl, a.gamma_l) : a.gamma_l;
    std::cout << "  analyzed clip " << a.trace.name << " (γᵘ(1) = " << a.gamma_u.wcet()
              << " cycles)\n";
  }

  const Cycles wcet = gu->wcet();
  const Cycles bcet = gl->bcet();
  std::cout << "\ncombined over all clips: WCET w = γᵘ(1) = " << common::fmt_i(wcet)
            << " cycles, BCET = γˡ(1) = " << common::fmt_i(bcet) << " cycles\n\n";

  common::Table table({"k (events)", "WCET·k", "γᵘ(k)", "γˡ(k)", "BCET·k", "γᵘ/(WCET·k)"});
  for (std::int64_t k :
       {1LL, 16LL, 64LL, 256LL, 810LL, 1620LL, 4860LL, 9720LL, 19440LL, 38880LL}) {
    table.add_row({common::fmt_i(k), common::fmt_i(wcet * k), common::fmt_i(gu->value(k)),
                   common::fmt_i(gl->value(k)), common::fmt_i(bcet * k),
                   common::fmt_pct(static_cast<double>(gu->value(k)) /
                                   static_cast<double>(wcet * k))});
  }
  table.print(std::cout);
  csv.write("fig6_workload_curves", table);

  std::cout << "\nexecution requirement vs # of events (ascii rendering of Fig. 6)\n";
  const double scale = static_cast<double>(wcet) * 38880.0;
  for (std::int64_t k = 3888; k <= 38880; k += 3888) {
    std::cout << "k=" << common::fmt_i(k) << "\tWCET " << '\t'
              << common::ascii_bar(static_cast<double>(wcet * k), scale, 44) << "\n";
    std::cout << "\tγᵘ   \t" << common::ascii_bar(static_cast<double>(gu->value(k)), scale, 44)
              << "\n";
    std::cout << "\tγˡ   \t" << common::ascii_bar(static_cast<double>(gl->value(k)), scale, 44)
              << "\n";
    std::cout << "\tBCET \t" << common::ascii_bar(static_cast<double>(bcet * k), scale, 44)
              << "\n";
  }

  std::cout << "\nReproduction check (paper Fig. 6 shape): the workload curves fall strictly\n"
            << "inside the WCET/BCET cones and their long-window slope approaches the\n"
            << "average demand — the gap to WCET·k is what eq. (9) converts into clock savings.\n\n";
  return 0;
}
