// FIG2 — reproduces Figure 2 of the paper: workload curves of the polling
// task (Example 1) with θ_min = 3T, θ_max = 5T, against the WCET-only and
// BCET-only cones. The grey "gain" areas of the figure appear here as the
// gap columns.
#include <iostream>

#include "common/table.h"
#include "workload/polling.h"

int main() {
  using namespace wlc;
  const Cycles e_p = 10;  // event processing cost
  const Cycles e_c = 2;   // empty-poll cost
  const workload::PollingTaskModel model(/*T=*/1.0, /*θ_min=*/3.0, /*θ_max=*/5.0, e_p, e_c);

  std::cout << "=== FIG2: polling-task workload curves (θ_min = 3T, θ_max = 5T, "
            << "e_p = " << e_p << ", e_c = " << e_c << ") ===\n\n";

  common::Table table({"k", "WCET-only", "γᵘ(k)", "γˡ(k)", "BCET-only", "upper gain",
                       "lower gain"});
  for (EventCount k = 0; k <= 30; ++k) {
    const Cycles wc = k * e_p;
    const Cycles bc = k * e_c;
    const Cycles gu = model.gamma_u(k);
    const Cycles gl = model.gamma_l(k);
    table.add_row({std::to_string(k), std::to_string(wc), std::to_string(gu), std::to_string(gl),
                   std::to_string(bc), std::to_string(wc - gu), std::to_string(gl - bc)});
  }
  table.print(std::cout);

  std::cout << "\nexecution requirement vs k (ascii rendering of Fig. 2)\n";
  const double scale = static_cast<double>(model.gamma_u(30));
  for (EventCount k = 0; k <= 30; k += 2) {
    std::cout << "k=" << (k < 10 ? " " : "") << k << "  WCET "
              << common::ascii_bar(static_cast<double>(k * e_p), scale, 48) << "\n";
    std::cout << "      γᵘ   " << common::ascii_bar(static_cast<double>(model.gamma_u(k)), scale, 48)
              << "\n";
    std::cout << "      γˡ   " << common::ascii_bar(static_cast<double>(model.gamma_l(k)), scale, 48)
              << "\n";
  }
  std::cout << "\nReproduction check: γᵘ(1) = WCET = " << model.gamma_u(1)
            << ", γᵘ < WCET-cone for k >= 2, γˡ > BCET-cone for k >= 5 — matches the "
               "paper's Fig. 2 shape.\n\n";
  return 0;
}
