// TAB-FMIN — reproduces the paper's §3.2 in-text result: the minimum PE2
// clock frequency that keeps the 1620-macroblock FIFO from overflowing,
// computed with workload curves (eq. (9), F^γ_min ≈ 340 MHz in the paper)
// versus the WCET-only characterization (eq. (10), F^w_min ≈ 710 MHz) —
// "over 50 % of savings".
//
// Also prints two ablations called out in DESIGN.md §5: the k-grid
// compaction's effect on the bound, and the buffer/frequency trade-off.
#include <iostream>
#include <optional>

#include "bench/experiment_common.h"
#include "common/table.h"
#include "mpeg/clip.h"
#include "rtc/sizing.h"

int main(int argc, char** argv) {
  using namespace wlc;
  const bench::CsvSink csv(argc, argv);
  const mpeg::TraceConfig cfg = bench::paper_config();
  const std::int64_t window = 24LL * cfg.stream.mb_per_frame();
  const EventCount buffer = cfg.stream.mb_per_frame();  // b = 1620 MBs (1 frame)

  std::cout << "=== TAB-FMIN: minimum PE2 clock under FIFO constraint (b = "
            << common::fmt_i(buffer) << " macroblocks) ===\n\n";

  std::optional<workload::WorkloadCurve> gu;
  std::optional<trace::EmpiricalArrivalCurve> arr;
  common::Table per_clip({"clip", "F^γ_min [MHz]", "F^w_min [MHz]", "savings"});
  for (const auto& profile : mpeg::clip_library()) {
    const bench::ClipAnalysis a = bench::analyze_clip(cfg, profile, window);
    const Hertz fg = rtc::min_frequency_workload(a.arrivals, a.gamma_u, buffer);
    const Hertz fw = rtc::min_frequency_wcet(a.arrivals, a.gamma_u.wcet(), buffer);
    per_clip.add_row({profile.name, common::fmt_f(fg / 1e6, 1), common::fmt_f(fw / 1e6, 1),
                      common::fmt_pct(1.0 - fg / fw)});
    gu = gu ? workload::WorkloadCurve::combine(*gu, a.gamma_u) : a.gamma_u;
    arr = arr ? trace::EmpiricalArrivalCurve::combine(*arr, a.arrivals) : a.arrivals;
  }
  per_clip.print(std::cout);
  csv.write("tab_fmin_per_clip", per_clip);

  const Hertz f_gamma = rtc::min_frequency_workload(*arr, *gu, buffer);
  const Hertz f_wcet = rtc::min_frequency_wcet(*arr, gu->wcet(), buffer);
  std::cout << "\ncombined over all 14 clips (the paper's procedure):\n"
            << "  F^γ_min = " << common::fmt_f(f_gamma / 1e6, 1) << " MHz   (paper: ≈ 340 MHz)\n"
            << "  F^w_min = " << common::fmt_f(f_wcet / 1e6, 1) << " MHz   (paper: ≈ 710 MHz)\n"
            << "  savings = " << common::fmt_pct(1.0 - f_gamma / f_wcet)
            << "            (paper: over 50%)\n\n";

  // Ablation 1 (DESIGN.md §5(1)): coarser k-grids stay sound but cost MHz.
  std::cout << "ablation: extraction-grid density vs computed F^γ_min\n";
  common::Table grid_tab({"dense_limit", "growth", "F^γ_min [MHz]", "overhead vs finest"});
  const mpeg::ClipTrace probe = mpeg::generate_clip_trace(cfg, mpeg::clip_library()[5]);
  std::optional<Hertz> finest;
  for (const auto& [dense, growth] : std::vector<std::pair<std::int64_t, double>>{
           {2048, 1.05}, {1024, 1.15}, {256, 1.3}, {64, 1.6}, {16, 2.0}}) {
    const auto ks = trace::make_kgrid({.max_k = window, .dense_limit = dense, .growth = growth});
    const auto g = workload::extract_upper(trace::demands_of(probe.pe2_input), ks);
    const auto a = trace::extract_upper_arrival(trace::timestamps_of(probe.pe2_input), ks);
    const Hertz f = rtc::min_frequency_workload(a, g, buffer);
    if (!finest) finest = f;
    grid_tab.add_row({std::to_string(dense), common::fmt_f(growth, 2),
                      common::fmt_f(f / 1e6, 1), common::fmt_pct(f / *finest - 1.0)});
  }
  grid_tab.print(std::cout);

  // Ablation 2 (DESIGN.md §5(4)): eq. (9) swept over buffer sizes.
  std::cout << "\nablation: buffer size vs minimum clock (eq. (9) sweep, combined curves)\n";
  common::Table sweep_tab({"buffer [MB]", "buffer [frames]", "F^γ_min [MHz]"});
  for (double frames : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto b = static_cast<EventCount>(frames * cfg.stream.mb_per_frame());
    const Hertz f = rtc::min_frequency_workload(*arr, *gu, b);
    sweep_tab.add_row({common::fmt_i(b), common::fmt_f(frames, 2), common::fmt_f(f / 1e6, 1)});
  }
  sweep_tab.print(std::cout);
  csv.write("tab_fmin_buffer_sweep", sweep_tab);
  std::cout << "\n";
  return 0;
}
