// FIG7 — reproduces Figure 7 of the paper: transaction-level simulation of
// the two-PE MPEG-2 decoder with PE2 clocked at the computed F^γ_min; the
// maximum FIFO backlog per clip, normalized to the buffer size b = 1620,
// must stay <= 1.0 with several clips approaching the bound ("sensible
// assumptions for system designers").
#include <iostream>
#include <optional>

#include "bench/experiment_common.h"
#include "common/table.h"
#include "mpeg/clip.h"
#include "rtc/sizing.h"
#include "sim/components.h"

int main(int argc, char** argv) {
  using namespace wlc;
  const bench::CsvSink csv(argc, argv);
  const mpeg::TraceConfig cfg = bench::paper_config();
  const std::int64_t window = 24LL * cfg.stream.mb_per_frame();
  const EventCount buffer = cfg.stream.mb_per_frame();

  std::cout << "=== FIG7: simulated FIFO backlog in front of PE2 at F^γ_min ===\n\n";

  // Phase 1: the paper's sizing — curves combined over all clips.
  std::vector<bench::ClipAnalysis> clips;
  std::optional<workload::WorkloadCurve> gu;
  std::optional<trace::EmpiricalArrivalCurve> arr;
  for (const auto& profile : mpeg::clip_library()) {
    clips.push_back(bench::analyze_clip(cfg, profile, window));
    gu = gu ? workload::WorkloadCurve::combine(*gu, clips.back().gamma_u) : clips.back().gamma_u;
    arr = arr ? trace::EmpiricalArrivalCurve::combine(*arr, clips.back().arrivals)
              : clips.back().arrivals;
  }
  const Hertz f_gamma = rtc::min_frequency_workload(*arr, *gu, buffer);
  std::cout << "PE2 clocked at F^γ_min = " << common::fmt_f(f_gamma / 1e6, 1) << " MHz; FIFO b = "
            << common::fmt_i(buffer) << " macroblocks\n\n";

  // Phase 2: event-driven simulation per clip (Fig. 7's bars). The extra
  // "own F" column sizes each clip by its own curves — it isolates how much
  // of the headroom comes from combining curves across clips versus from
  // the bound itself.
  common::Table table(
      {"nr", "clip", "max backlog", "normalized", "bar", "normalized @ own F"});
  double worst = 0.0;
  bool overflow = false;
  for (std::size_t i = 0; i < clips.size(); ++i) {
    const sim::PipelineStats stats = sim::run_fifo_pipeline(clips[i].trace.pe2_input, f_gamma);
    const double norm =
        static_cast<double>(stats.max_backlog) / static_cast<double>(buffer);
    worst = std::max(worst, norm);
    overflow = overflow || stats.max_backlog > buffer;
    const Hertz f_own = rtc::min_frequency_workload(clips[i].arrivals, clips[i].gamma_u, buffer);
    const sim::PipelineStats own = sim::run_fifo_pipeline(clips[i].trace.pe2_input, f_own);
    overflow = overflow || own.max_backlog > buffer;
    table.add_row({std::to_string(i + 1), clips[i].trace.name,
                   common::fmt_i(stats.max_backlog), common::fmt_f(norm, 3),
                   common::ascii_bar(norm, 1.0, 40),
                   common::fmt_f(static_cast<double>(own.max_backlog) /
                                     static_cast<double>(buffer),
                                 3)});
  }
  table.print(std::cout);
  csv.write("fig7_backlogs", table);

  std::cout << "\nReproduction check (paper Fig. 7): every normalized backlog <= 1.0 ("
            << (overflow ? "VIOLATED" : "holds") << "), worst = " << common::fmt_f(worst, 3)
            << " — bars close to 1.0 show the worst-case bound is not overly pessimistic.\n\n";
  return overflow ? 1 : 0;
}
