// Online workload characterization and DVS on a live decoder.
//
// A deployed player cannot extract curves offline — it watches its own
// per-macroblock demands, maintains γᵘ/γˡ incrementally with the
// OnlineWorkloadExtractor (bounded memory, O(|K|) per event), and uses the
// current curve to pick the low clock of a two-mode DVS governor. The
// example replays a synthetic MPEG-2 clip, tightens the clock as evidence
// accumulates, and verifies the final choice against the full-trace curves.
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "mpeg/trace_gen.h"
#include "rtc/sizing.h"
#include "sim/components.h"
#include "trace/arrival_extract.h"
#include "trace/kgrid.h"
#include "workload/extract.h"
#include "workload/online_extract.h"

int main() {
  using namespace wlc;

  mpeg::TraceConfig cfg;
  cfg.stream.width = 352;
  cfg.stream.height = 224;
  cfg.stream.bitrate = 2.5e6;
  cfg.frames = 60;
  cfg.pe1_frequency = 60e6;
  const mpeg::ClipTrace clip = mpeg::generate_clip_trace(cfg, mpeg::clip_library()[8]);
  const EventCount frame_mbs = cfg.stream.mb_per_frame();

  // Track one GOP of window sizes, always including whole-frame multiples
  // (the windows the sizing questions are asked about).
  std::vector<EventCount> ks;
  for (EventCount k = 1; k <= 12 * frame_mbs; k = std::max(k + 1, (k * 5) / 4)) ks.push_back(k);
  for (EventCount f = 1; f <= 12; ++f) ks.push_back(f * frame_mbs);
  workload::OnlineWorkloadExtractor monitor(ks);

  std::cout << "online characterization of '" << clip.name << "' ("
            << clip.pe2_input.size() << " macroblocks)\n\n";
  common::Table table({"after [frames]", "γᵘ(1) so far", "γᵘ(1 frame) so far",
                       "long-run estimate [cycles/MB]"});
  std::size_t next_report = 5;
  for (std::size_t i = 0; i < clip.pe2_input.size(); ++i) {
    // try_push, not push: a deployed monitor must survive a corrupted
    // sample (it would be quarantined and counted in health()) rather than
    // unwind the player with an exception.
    monitor.try_push(clip.pe2_input[i].demand);
    const std::size_t frames_seen = (i + 1) / static_cast<std::size_t>(frame_mbs);
    if (frames_seen == next_report && (i + 1) % static_cast<std::size_t>(frame_mbs) == 0) {
      const auto gu = monitor.upper();
      table.add_row({std::to_string(frames_seen), common::fmt_i(gu.wcet()),
                     common::fmt_i(gu.value(frame_mbs)),
                     common::fmt_f(gu.long_run_demand(), 0)});
      next_report *= 2;
    }
  }
  table.print(std::cout);

  // How much of the stream do the curves certify? All of it, unless
  // samples were quarantined or an extremum saturated.
  const auto health = monitor.health();
  std::cout << "\nmonitor health: " << health.accepted << " accepted, " << health.quarantined
            << " quarantined" << (health.degraded() ? " — curves certify clean runs only" : "")
            << "\n";

  // The monitor's final curve vs the offline batch extraction: identical on
  // the tracked windows (the extractor is exact, not an approximation).
  std::vector<std::int64_t> batch_ks(ks.begin(), ks.end());
  const auto offline = workload::extract_upper(trace::demands_of(clip.pe2_input), batch_ks);
  const auto online = monitor.upper();
  std::cout << "\noffline γᵘ(1 frame) = " << common::fmt_i(offline.value(frame_mbs))
            << ", online γᵘ(1 frame) = " << common::fmt_i(online.value(frame_mbs)) << " (equal: "
            << (offline.value(frame_mbs) == online.value(frame_mbs) ? "yes" : "NO") << ")\n";

  // Use the learned curve to size a DVS governor and validate by replay.
  // (The arrival grid must ladder to the full trace length — see
  // trace/kgrid.h on conservative top steps.)
  const auto arrival_ks = trace::make_kgrid(
      {.max_k = static_cast<std::int64_t>(clip.pe2_input.size()), .dense_limit = 256,
       .growth = 1.02});
  const auto arr = trace::extract_upper_arrival(trace::timestamps_of(clip.pe2_input), arrival_ks);
  const Hertz f_hi = rtc::min_frequency_workload(arr, online, frame_mbs);
  const Hertz f_lo = 0.7 * f_hi;
  const auto dvs = sim::run_dvs_pipeline(clip.pe2_input, [&](std::int64_t backlog) {
    return backlog > frame_mbs / 8 ? f_hi : f_lo;
  });
  const auto constant = sim::run_fifo_pipeline(clip.pe2_input, f_hi);
  std::cout << "\nDVS with the learned curve: clocks " << common::fmt_f(f_lo / 1e6, 1) << "/"
            << common::fmt_f(f_hi / 1e6, 1) << " MHz, max backlog " << dvs.max_backlog << "/"
            << frame_mbs << " MBs, energy " << common::fmt_pct(dvs.energy / constant.energy)
            << " of the constant-clock run\n";
  return dvs.max_backlog <= frame_mbs ? 0 : 1;
}
