// Whole-system modular performance analysis with the declarative
// SystemModel front-end: a set-top-box SoC decoding a transport stream.
//
//   demux ──> [ts_parse @ CPU] ──> [video_dec @ DSP] ──> display
//                    └────────────> [audio_dec @ CPU (lower priority)]
//
// The CPU is shared (fixed priority: parser above audio); the DSP only owns
// a TDMA share of a bus-attached accelerator. Workload curves turn packet /
// frame counts into cycles everywhere.
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "curve/pwl_curve.h"
#include "rtc/mpa.h"
#include "workload/workload_curve.h"

int main() {
  using namespace wlc;
  using curve::PwlCurve;
  using workload::Bound;
  using workload::WorkloadCurve;

  rtc::SystemModel soc;

  // Resources: a 200 MHz CPU, and 40% of a 300 MHz accelerator via TDMA.
  soc.add_resource("cpu", 200e6);
  soc.add_resource("dsp", rtc::TdmaSlot{.slot = 4e-3, .cycle = 10e-3, .bandwidth = 300e6});

  // Input stream: transport packets, nominally every 50 µs with up to 1 ms
  // of multiplexer jitter, never closer than 10 µs.
  soc.add_stream("ts_packets", PwlCurve::pjd_upper(50e-6, 1e-3, 10e-6, 1.0),
                 PwlCurve::periodic_lower(50e-6, 1e-3));

  // Parser on the CPU: 900 cycles per packet, but at most every 8th packet
  // starts a new PES header (3600 cycles) — a two-mode workload curve.
  std::vector<WorkloadCurve::Point> pu{{0, 0}};
  std::vector<WorkloadCurve::Point> pl{{0, 0}};
  for (EventCount k = 1; k <= 64; ++k) {
    const EventCount headers = (k + 7) / 8;
    pu.emplace_back(k, 900 * (k - headers) + 3600 * headers);
    pl.emplace_back(k, 900 * k);
  }
  soc.add_task("ts_parse", "ts_packets", "cpu", WorkloadCurve(Bound::Upper, pu),
               WorkloadCurve(Bound::Lower, pl));

  // Video decode on the DSP consumes the parsed stream; audio decode shares
  // the CPU below the parser.
  soc.add_task("video_dec", "ts_parse", "dsp",
               WorkloadCurve::from_constant_demand(Bound::Upper, 5200),
               WorkloadCurve::from_constant_demand(Bound::Lower, 1800));
  soc.add_task("audio_dec", "ts_parse", "cpu",
               WorkloadCurve::from_constant_demand(Bound::Upper, 700),
               WorkloadCurve::from_constant_demand(Bound::Lower, 250));

  const auto report = soc.analyze(/*dt=*/0.25e-3, /*horizon=*/0.6);

  common::Table table({"task", "backlog [events]", "backlog [kcycles]", "delay [ms]",
                       "utilization"});
  for (const auto& t : report.tasks)
    table.add_row({t.name, common::fmt_i(t.backlog_events),
                   common::fmt_f(t.backlog_cycles / 1e3, 1), common::fmt_f(t.delay * 1e3, 3),
                   common::fmt_pct(t.utilization)});
  table.print(std::cout);

  std::cout << "\nend-to-end delay bounds:\n"
            << "  packets -> decoded video: "
            << common::fmt_f(report.chain_delay("video_dec") * 1e3, 3) << " ms\n"
            << "  packets -> decoded audio: "
            << common::fmt_f(report.chain_delay("audio_dec") * 1e3, 3) << " ms\n";
  std::cout << "\n(The parser's two-mode workload curve is what keeps the CPU budget\n"
            << " feasible: a WCET-only parser model would need 3600 cycles for every\n"
            << " packet — 72% of the CPU on its own at peak rate.)\n";
  return 0;
}
