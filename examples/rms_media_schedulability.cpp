// Rate-monotonic schedulability of a media task set (the paper's §3.1
// application): exact Lehoczky test and response-time analysis, each in the
// classical WCET form and the workload-curve form, cross-checked against the
// fixed-priority scheduling simulator.
//
// The video task decodes a GOP whose per-frame demand varies 6:1 — exactly
// the "rare worst case" pattern where WCET-only analysis wastes capacity.
#include <iostream>
#include <memory>

#include "common/table.h"
#include "sched/generators.h"
#include "sched/response_time.h"
#include "sched/rms.h"
#include "sched/simulator.h"

int main() {
  using namespace wlc;

  // Per-frame decode demands over one GOP (kilocycles): I P B B P B B P B B B B.
  const std::vector<Cycles> gop{5400, 2300, 900, 900, 2300, 900,
                                900,  2300, 900, 900, 900, 900};
  const sched::CyclicDemand video_gen(gop);

  sched::TaskSet tasks;
  tasks.push_back({"video_40ms", 0.040, 0.040, video_gen.upper_curve(512).wcet(),
                   video_gen.upper_curve(512)});
  tasks.push_back({"audio_10ms", 0.010, 0.010, 260, std::nullopt});
  tasks.push_back({"osd_100ms", 0.100, 0.100, 2600, std::nullopt});

  const Hertz f = 165e3;  // kilocycle units -> kHz clock
  std::cout << "clock " << common::fmt_f(f / 1e3, 0) << " kHz, WCET utilization "
            << common::fmt_pct(sched::utilization_wcet(tasks, f)) << ", long-run utilization "
            << common::fmt_pct(sched::utilization_longrun(tasks, f)) << "\n\n";

  const auto classic = sched::lehoczky_test(tasks, f, sched::DemandModel::WcetOnly);
  const auto curves = sched::lehoczky_test(tasks, f, sched::DemandModel::WorkloadCurve);
  common::Table loads({"task", "L_i (eq.3)", "L'_i (eq.4)"});
  const sched::TaskSet ordered = sched::rate_monotonic_order(tasks);
  for (std::size_t i = 0; i < ordered.size(); ++i)
    loads.add_row({ordered[i].name, common::fmt_f(classic.per_task[i], 3),
                   common::fmt_f(curves.per_task[i], 3)});
  loads.print(std::cout);
  std::cout << "eq.(3) verdict: " << (classic.schedulable ? "schedulable" : "NOT schedulable")
            << "   eq.(4) verdict: " << (curves.schedulable ? "schedulable" : "NOT schedulable")
            << "\n\n";

  // Response times under both models.
  const auto rt_classic = sched::response_times_wcet(tasks, f);
  const auto rt_curves = sched::response_times_curve(tasks, f);
  if (rt_curves) {
    common::Table rt({"task", "R (WCET) [ms]", "R (curves) [ms]", "deadline [ms]"});
    for (std::size_t i = 0; i < ordered.size(); ++i)
      rt.add_row({ordered[i].name,
                  rt_classic ? common::fmt_f(rt_classic->per_task[i] * 1e3, 2) : "diverged",
                  common::fmt_f(rt_curves->per_task[i] * 1e3, 2),
                  common::fmt_f(ordered[i].deadline * 1e3, 1)});
    rt.print(std::cout);
  }

  // Simulate the schedule with the real GOP demands at every phase.
  std::int64_t misses = 0;
  double worst_response = 0.0;
  for (std::size_t phase = 0; phase < gop.size(); ++phase) {
    const std::vector<sched::SimTask> sim{
        {"video_40ms", 0.040, 0.040, std::make_shared<sched::CyclicDemand>(gop, phase)},
        {"audio_10ms", 0.010, 0.010, std::make_shared<sched::FixedDemand>(260)},
        {"osd_100ms", 0.100, 0.100, std::make_shared<sched::FixedDemand>(2600)},
    };
    const auto r = sched::simulate_fixed_priority(sim, f, 60.0);
    misses += r.total_misses();
    for (const auto& t : r.tasks) worst_response = std::max(worst_response, t.response_time.max());
  }
  std::cout << "\nsimulation across all " << gop.size() << " GOP phases (60 s each): " << misses
            << " deadline misses, worst observed response "
            << common::fmt_f(worst_response * 1e3, 2) << " ms\n";
  std::cout << "-> the workload-curve test certifies a clock the WCET test rejects, and the\n"
            << "   simulator confirms no deadline is ever missed there.\n";
  return misses == 0 ? 0 : 1;
}
