// Sizing a two-PE MPEG-2 decoder — the paper's §3.2 case study in miniature
// (reduced resolution and clip count so it runs in a second).
//
// Flow: synthesize decoder traces → extract the macroblock arrival curve ᾱ
// and the IDCT/MC workload curve γᵘ → compute the minimal PE2 clock for a
// one-frame FIFO via eq. (9) (and the WCET-only eq. (10) baseline) → sweep
// the buffer/frequency trade-off → validate by replaying the traces through
// the transaction-level pipeline simulator.
#include <cmath>
#include <iostream>
#include <optional>

#include "common/table.h"
#include "mpeg/trace_gen.h"
#include "rtc/sizing.h"
#include "sim/components.h"
#include "trace/arrival_extract.h"
#include "trace/kgrid.h"
#include "workload/extract.h"

int main() {
  using namespace wlc;

  mpeg::TraceConfig cfg;
  cfg.stream.width = 352;  // CIF-ish: 22x14 = 308 MBs per frame
  cfg.stream.height = 224;
  cfg.stream.bitrate = 2.5e6;
  cfg.frames = 48;
  cfg.pe1_frequency = 60e6;
  const EventCount buffer = cfg.stream.mb_per_frame();  // one frame

  std::cout << "MPEG-2 pipeline sizing example (" << cfg.stream.width << "x"
            << cfg.stream.height << ", FIFO = " << buffer << " macroblocks)\n\n";

  // Curves combined over a few contrasting clips, as in the paper.
  std::optional<workload::WorkloadCurve> gu;
  std::optional<trace::EmpiricalArrivalCurve> arr;
  std::vector<mpeg::ClipTrace> traces;
  for (std::size_t idx : {0UL, 8UL, 11UL}) {
    traces.push_back(mpeg::generate_clip_trace(cfg, mpeg::clip_library()[idx]));
    const auto& t = traces.back();
    const auto ks = trace::make_kgrid(
        {.max_k = static_cast<std::int64_t>(t.pe2_input.size()), .dense_limit = 256,
         .growth = 1.02});
    auto g = workload::extract_upper(trace::demands_of(t.pe2_input), ks);
    auto a = trace::extract_upper_arrival(trace::timestamps_of(t.pe2_input), ks);
    std::cout << "  " << t.name << ": WCET " << g.wcet() << " cycles, long-run demand "
              << common::fmt_f(g.long_run_demand(), 0) << " cycles/MB\n";
    gu = gu ? workload::WorkloadCurve::combine(*gu, g) : g;
    arr = arr ? trace::EmpiricalArrivalCurve::combine(*arr, a) : a;
  }

  const Hertz f_gamma = rtc::min_frequency_workload(*arr, *gu, buffer);
  const Hertz f_wcet = rtc::min_frequency_wcet(*arr, gu->wcet(), buffer);
  std::cout << "\nminimal PE2 clock:  workload curves " << common::fmt_f(f_gamma / 1e6, 1)
            << " MHz,  WCET-only " << common::fmt_f(f_wcet / 1e6, 1) << " MHz  ("
            << common::fmt_pct(1.0 - f_gamma / f_wcet) << " saved)\n\n";

  // Buffer/frequency trade-off (eq. (8)/(9) swept over b).
  common::Table sweep({"buffer [MB]", "F_min [MHz]"});
  for (double frames : {0.25, 0.5, 1.0, 2.0})
    sweep.add_row(
        {common::fmt_i(static_cast<long long>(frames * buffer)),
         common::fmt_f(rtc::min_frequency_workload(
                           *arr, *gu, static_cast<EventCount>(frames * buffer)) / 1e6, 1)});
  sweep.print(std::cout);

  // Validation: replay every trace at the computed clock.
  std::cout << "\nvalidation at " << common::fmt_f(f_gamma / 1e6, 1) << " MHz:\n";
  bool ok = true;
  for (const auto& t : traces) {
    const sim::PipelineStats stats = sim::run_fifo_pipeline(t.pe2_input, f_gamma);
    ok = ok && stats.max_backlog <= buffer;
    std::cout << "  " << t.name << ": max backlog " << stats.max_backlog << "/" << buffer
              << " MBs, worst latency " << common::fmt_f(stats.max_latency * 1e3, 2)
              << " ms\n";
  }
  std::cout << (ok ? "FIFO never overflows — sizing holds.\n"
                   : "FIFO OVERFLOWED — sizing violated!\n");
  return ok ? 0 : 1;
}
