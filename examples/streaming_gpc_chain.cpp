// System-level analysis of a streaming chain with greedy processing
// components (the Network-Calculus framework of the paper's §3.2, paper
// reference [4]) — plus the workload-curve unit conversion of Fig. 4.
//
// Scenario: a packet stream (token-bucket bounded) is parsed by a protocol
// task on PE_A, whose output feeds a crypto task on PE_B. Packet processing
// demand varies by packet kind; workload curves convert the event stream
// into cycle demand and the PEs' cycle service into event throughput.
#include <iostream>

#include "common/table.h"
#include "curve/pwl_curve.h"
#include "rtc/gpc.h"
#include "workload/convert.h"
#include "workload/workload_curve.h"

int main() {
  using namespace wlc;
  using curve::DiscreteCurve;
  using curve::PwlCurve;

  const double dt = 0.1e-3;  // 0.1 ms grid
  const std::size_t n = 2000;

  // Packet arrivals: at most 8 at once, long-run 2 packets/ms.
  const trace::EmpiricalArrivalCurve packets(
      trace::EmpiricalArrivalCurve::Bound::Upper,
      [] {
        std::vector<std::pair<TimeSec, EventCount>> pts{{0.0, 8}};
        for (int i = 1; i <= 400; ++i) pts.emplace_back(i * 0.5e-3, 8 + i);
        return pts;
      }());

  // Parsing demand per packet: short header-only packets cost 800 cycles,
  // full payloads 3000; at most 1 in 4 packets is a full payload — an
  // analytic type-bound model, here written directly as a curve.
  std::vector<Cycles> parse_values{0};
  for (EventCount k = 1; k <= 512; ++k)
    parse_values.push_back(800 * k + 2200 * ((k + 3) / 4));
  const workload::WorkloadCurve parse_gamma(workload::Bound::Upper, [&] {
    std::vector<workload::WorkloadCurve::Point> pts;
    for (EventCount k = 0; k < static_cast<EventCount>(parse_values.size()); ++k)
      pts.emplace_back(k, parse_values[static_cast<std::size_t>(k)]);
    return pts;
  }());

  // PE_A: 50 MHz, fully available. Convert its cycle service to packets via
  // γᵘ⁻¹ (Fig. 4), and the packet arrivals to cycles via γᵘ.
  const DiscreteCurve beta_a = DiscreteCurve::sample(PwlCurve::affine(0.0, 50e6), dt, n);
  const DiscreteCurve alpha_cycles = workload::cycle_arrival_upper(packets, parse_gamma, dt, n);
  const DiscreteCurve beta_events = workload::event_service_lower(beta_a, parse_gamma);

  std::cout << "PE_A backlog bound:  " << curve::DiscreteCurve::sup_diff(alpha_cycles, beta_a)
            << " cycles ("
            << common::fmt_f(DiscreteCurve::sup_diff(alpha_cycles, beta_a) / 50e6 * 1e3, 3)
            << " ms of work)\n";

  // GPC chain in the event domain: PE_A then PE_B (crypto at 1.2x the parse
  // throughput, shared so only 70% available).
  const DiscreteCurve alpha_u = [&] {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<double>(packets.eval(dt * static_cast<double>(i)));
    return DiscreteCurve(std::move(v), dt);
  }();
  const DiscreteCurve alpha_l = DiscreteCurve::zeros(n, dt);
  const rtc::StreamBounds input{alpha_u, alpha_l};
  const rtc::ResourceBounds pe_a{beta_events, beta_events};
  const DiscreteCurve beta_b = 0.7 * 1.2 * beta_events;
  const rtc::ResourceBounds pe_b{beta_b, beta_b};

  const auto chain = rtc::analyze_chain(input, {pe_a, pe_b});

  common::Table table({"stage", "backlog [pkts]", "delay [ms]"});
  table.add_row({"PE_A parse", common::fmt_f(chain[0].backlog, 2),
                 common::fmt_f(chain[0].delay * 1e3, 3)});
  table.add_row({"PE_B crypto", common::fmt_f(chain[1].backlog, 2),
                 common::fmt_f(chain[1].delay * 1e3, 3)});
  table.print(std::cout);

  std::cout << "\nend-to-end delay bound: "
            << common::fmt_f((chain[0].delay + chain[1].delay) * 1e3, 3) << " ms\n";
  std::cout << "smoothing over a 1 ms window: input " << alpha_u.eval_floor(1e-3)
            << " pkts -> after PE_A " << common::fmt_f(chain[0].output.upper.eval_floor(1e-3), 1)
            << " pkts\n";
  return 0;
}
