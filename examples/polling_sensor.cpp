// A sensor-polling firmware task (the paper's Example 1) analyzed two ways.
//
// Scenario: a controller polls a sensor interface every T = 250 µs. When a
// reading is pending (inter-arrival between 750 µs and 1.25 ms) the handler
// runs the full filtering path (9000 cycles); otherwise it exits early
// (1200 cycles). The task shares the CPU with two control loops under RMS.
//
// The example derives the polling task's workload curves *analytically*
// (valid for hard real-time guarantees), plugs them into the exact RMS test
// of eq. (4), and shows how much slower the CPU clock may be compared to a
// WCET-only analysis — then validates the verdict with the scheduling
// simulator.
#include <cmath>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "sched/rms.h"
#include "sched/simulator.h"
#include "workload/polling.h"

int main() {
  using namespace wlc;

  const TimeSec poll_period = 250e-6;
  const workload::PollingTaskModel sensor(poll_period, /*θ_min=*/750e-6, /*θ_max=*/1.25e-3,
                                          /*e_p=*/9000, /*e_c=*/1200);

  std::cout << "sensor polling task: WCET = " << sensor.gamma_u(1)
            << " cycles, γᵘ(8) = " << sensor.gamma_u(8) << " (WCET-only would assume "
            << 8 * sensor.gamma_u(1) << ")\n\n";

  // The task set: polling task + two periodic control loops.
  sched::TaskSet tasks;
  tasks.push_back({"sensor_poll", poll_period, poll_period, sensor.gamma_u(1),
                   sensor.upper_curve(256)});
  tasks.push_back({"inner_loop", 1e-3, 1e-3, 14000, std::nullopt});
  tasks.push_back({"outer_loop", 5e-3, 5e-3, 40000, std::nullopt});

  common::Table table({"clock [MHz]", "L (eq.3, WCET)", "L' (eq.4, curves)", "eq.3", "eq.4"});
  for (double f_mhz : {50.0, 56.0, 62.0, 70.0, 80.0}) {
    const Hertz f = f_mhz * 1e6;
    const auto classic = sched::lehoczky_test(tasks, f, sched::DemandModel::WcetOnly);
    const auto curves = sched::lehoczky_test(tasks, f, sched::DemandModel::WorkloadCurve);
    table.add_row({common::fmt_f(f_mhz, 0), common::fmt_f(classic.overall, 3),
                   common::fmt_f(curves.overall, 3), classic.schedulable ? "ok" : "FAIL",
                   curves.schedulable ? "ok" : "FAIL"});
  }
  table.print(std::cout);

  const Hertz f_wcet = sched::min_schedulable_frequency(tasks, sched::DemandModel::WcetOnly);
  const Hertz f_curve =
      sched::min_schedulable_frequency(tasks, sched::DemandModel::WorkloadCurve);
  std::cout << "\nminimum clock:  WCET analysis " << common::fmt_f(f_wcet / 1e6, 1)
            << " MHz,  workload curves " << common::fmt_f(f_curve / 1e6, 1) << " MHz  ("
            << common::fmt_pct(1.0 - f_curve / f_wcet) << " saved)\n";

  // Validate the curve-based verdict: simulate the set at the curve-minimal
  // clock with a worst-case-ish sensor pattern (an event every θ_min).
  const auto burst_pattern = [&] {
    std::vector<Cycles> pattern;
    for (int i = 0; i < 3; ++i) pattern.push_back(i == 0 ? 9000 : 1200);  // θ_min = 3T
    return pattern;
  }();
  std::vector<sched::SimTask> sim_tasks{
      {"sensor_poll", poll_period, poll_period,
       std::make_shared<sched::CyclicDemand>(burst_pattern)},
      {"inner_loop", 1e-3, 1e-3, std::make_shared<sched::FixedDemand>(14000)},
      {"outer_loop", 5e-3, 5e-3, std::make_shared<sched::FixedDemand>(40000)},
  };
  const auto result = sched::simulate_fixed_priority(sim_tasks, f_curve * 1.001, 10.0);
  std::cout << "simulation at the curve-minimal clock: " << result.total_misses()
            << " deadline misses over 10 s (utilization "
            << common::fmt_pct(result.utilization()) << ")\n";
  return result.total_misses() == 0 ? 0 : 1;
}
