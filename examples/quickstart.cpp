// Quickstart: the paper's Fig. 1 example, end to end.
//
// A task is triggered by events of types a, b, c, each with an execution
// interval [bcet, wcet]. We compute the window demands γ_w/γ_b, derive the
// workload curves γᵘ/γˡ (Definition 1), and use their pseudo-inverses —
// everything a reader needs to start using the library.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "common/table.h"
#include "workload/event_model.h"

int main() {
  using namespace wlc;

  // 1. Declare the event types of the task (paper §2.1).
  workload::EventTypeTable types;
  const int a = types.add("a", /*bcet=*/1, /*wcet=*/4);
  const int b = types.add("b", /*bcet=*/2, /*wcet=*/3);
  const int c = types.add("c", /*bcet=*/1, /*wcet=*/3);

  // 2. The triggering sequence of Fig. 1: a b a b c c a a c.
  const std::vector<int> sequence{a, b, a, b, c, c, a, a, c};

  // 3. Window demands: γ_w(3,4) / γ_b(3,4) are the paper's worked numbers.
  std::cout << "γ_b(3,4) = " << types.gamma_b(sequence, 3, 4) << "   (paper: 5)\n";
  std::cout << "γ_w(3,4) = " << types.gamma_w(sequence, 3, 4) << "  (paper: 13)\n\n";

  // 4. Workload curves: guaranteed bounds over every window of the sequence.
  const workload::WorkloadCurve gu = types.upper_curve(sequence, 9);
  const workload::WorkloadCurve gl = types.lower_curve(sequence, 9);

  common::Table table({"k", "γˡ(k)", "γᵘ(k)", "k·WCET"});
  for (EventCount k = 0; k <= 9; ++k)
    table.add_row({std::to_string(k), std::to_string(gl.value(k)), std::to_string(gu.value(k)),
                   std::to_string(k * gu.wcet())});
  table.print(std::cout);

  // 5. The task's classical parameters fall out of the curves (paper §2.1):
  std::cout << "\nWCET = γᵘ(1) = " << gu.wcet() << ", BCET = γˡ(1) = " << gl.bcet() << "\n";

  // 6. Pseudo-inverses answer capacity questions directly: how many
  //    consecutive activations are guaranteed to finish within 20 cycles?
  std::cout << "γᵘ⁻¹(20) = " << gu.inverse(20)
            << " events are guaranteed served with a 20-cycle budget\n";
  std::cout << "γˡ⁻¹(20) = " << gl.inverse(20)
            << " events might be needed before 20 cycles are consumed\n";
  return 0;
}
