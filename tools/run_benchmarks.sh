#!/usr/bin/env bash
# Runs the extraction microbenchmarks and records the perf trajectory as
# JSON: serial vs parallel workload/arrival extraction and the batched API,
# per trace size and thread count. The JSON lands in BENCH_extraction.json
# at the repo root (google-benchmark format; `context` carries host info —
# compare speedups only across runs with the same num_cpus).
#
# Usage: tools/run_benchmarks.sh [benchmark args...]
#   e.g. tools/run_benchmarks.sh --benchmark_filter='ExtractUpperGrid'
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target perf_extraction

"$build/bench/perf_extraction" \
  --benchmark_out="$repo/BENCH_extraction.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $repo/BENCH_extraction.json"
