#!/usr/bin/env bash
# Runs the microbenchmarks and records the perf trajectory as JSON:
#   BENCH_extraction.json — serial vs parallel workload/arrival extraction
#     and the batched API, per trace size and thread count.
#   BENCH_curve_ops.json  — the curve-engine dispatch ladder (naive oracle vs
#     dense-tiled vs shape fast path vs memo-cache hit) at n ∈ {256, 1024,
#     4096} on convex/concave operands, the PWL compaction tier (10⁶-point
#     fit/expand + knot kernels vs the dense fast path), plus the
#     PWL/sup-diff paths.
# Both land at the repo root (google-benchmark format; `context` carries host
# info — compare speedups only across runs with the same num_cpus).
#
# Each benchmark JSON is then enriched with a `wlc_env` envelope: git sha,
# CPU count, compiler/flags from the build cache, and the metric snapshot of
# a representative instrumented `wlc_analyze` run (extraction metrics for the
# extraction bench; curve.dispatch.*/curve.cache.* for the curve-ops bench) —
# so a checked-in benchmark file says exactly what was measured, on what,
# built how.
#
# Usage: tools/run_benchmarks.sh [benchmark args...]
#   e.g. tools/run_benchmarks.sh --benchmark_filter='ExtractUpperGrid'
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target perf_extraction perf_curve_ops wlc_analyze

git_sha="$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)"
cxx_flags="$(grep -m1 '^CMAKE_CXX_FLAGS:' "$build/CMakeCache.txt" | cut -d= -f2- || true)"
build_type="$(grep -m1 '^CMAKE_BUILD_TYPE:' "$build/CMakeCache.txt" | cut -d= -f2- || true)"
compiler="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$build/CMakeCache.txt" | cut -d= -f2- || true)"

# Wraps a benchmark JSON with the wlc_env provenance block; the metric
# snapshot of the representative run is passed as $METRICS_FILE.
add_env() {
  METRICS_FILE="$2" GIT_SHA="$git_sha" CXX_FLAGS="$cxx_flags" \
  BUILD_TYPE="$build_type" COMPILER="$compiler" METRICS_KEY="$3" \
  python3 - "$1" <<'PY'
import json, os, sys

path = sys.argv[1]
with open(path) as f:
    bench = json.load(f)
with open(os.environ["METRICS_FILE"]) as f:
    metrics = json.load(f)

bench["wlc_env"] = {
    "git_sha": os.environ["GIT_SHA"],
    "cpu_count": os.cpu_count(),
    "compiler": os.environ["COMPILER"],
    "build_type": os.environ["BUILD_TYPE"],
    "cxx_flags": os.environ["CXX_FLAGS"],
    os.environ["METRICS_KEY"]: metrics,
}
with open(path, "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
PY
}

"$build/bench/perf_extraction" \
  --benchmark_out="$repo/BENCH_extraction.json" \
  --benchmark_out_format=json \
  "$@"

# Representative instrumented run: the extraction pipeline over the checked-in
# polling fixture at full parallelism, metrics captured as JSON.
metrics="$(mktemp)"
"$build/tools/wlc_analyze" extract "$repo/tests/fixtures/polling_clean.csv" \
  --threads "$(nproc)" --metrics-out "$metrics" >/dev/null
add_env "$repo/BENCH_extraction.json" "$metrics" extract_metrics
rm -f "$metrics"
echo "wrote $repo/BENCH_extraction.json"

"$build/bench/perf_curve_ops" \
  --benchmark_out="$repo/BENCH_curve_ops.json" \
  --benchmark_out_format=json \
  "$@"

# Representative instrumented run for the curve engine: a GPC bounds
# analysis, which exercises all four operators; the snapshot carries the
# curve.dispatch.{fast,dense} and curve.cache.{hits,misses,evictions}
# counters the engine emitted.
metrics="$(mktemp)"
"$build/tools/wlc_analyze" bounds "$repo/tests/fixtures/polling_clean.csv" \
  --mhz 50 --metrics-out "$metrics" >/dev/null
add_env "$repo/BENCH_curve_ops.json" "$metrics" bounds_metrics
rm -f "$metrics"
echo "wrote $repo/BENCH_curve_ops.json"
