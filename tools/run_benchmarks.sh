#!/usr/bin/env bash
# Runs the extraction microbenchmarks and records the perf trajectory as
# JSON: serial vs parallel workload/arrival extraction and the batched API,
# per trace size and thread count. The JSON lands in BENCH_extraction.json
# at the repo root (google-benchmark format; `context` carries host info —
# compare speedups only across runs with the same num_cpus).
#
# The benchmark JSON is then enriched with a `wlc_env` envelope: git sha,
# CPU count, compiler/flags from the build cache, and the metric snapshot of
# a representative `wlc_analyze extract` run (windows scanned, pool queue
# depth/latency) — so a checked-in benchmark file says exactly what was
# measured, on what, built how.
#
# Usage: tools/run_benchmarks.sh [benchmark args...]
#   e.g. tools/run_benchmarks.sh --benchmark_filter='ExtractUpperGrid'
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target perf_extraction wlc_analyze

"$build/bench/perf_extraction" \
  --benchmark_out="$repo/BENCH_extraction.json" \
  --benchmark_out_format=json \
  "$@"

# Representative instrumented run: the extraction pipeline over the checked-in
# polling fixture at full parallelism, metrics captured as JSON.
metrics="$(mktemp)"
"$build/tools/wlc_analyze" extract "$repo/tests/fixtures/polling_clean.csv" \
  --threads "$(nproc)" --metrics-out "$metrics" >/dev/null

git_sha="$(git -C "$repo" rev-parse HEAD 2>/dev/null || echo unknown)"
cxx_flags="$(grep -m1 '^CMAKE_CXX_FLAGS:' "$build/CMakeCache.txt" | cut -d= -f2- || true)"
build_type="$(grep -m1 '^CMAKE_BUILD_TYPE:' "$build/CMakeCache.txt" | cut -d= -f2- || true)"
compiler="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$build/CMakeCache.txt" | cut -d= -f2- || true)"

METRICS_FILE="$metrics" GIT_SHA="$git_sha" CXX_FLAGS="$cxx_flags" \
BUILD_TYPE="$build_type" COMPILER="$compiler" \
python3 - "$repo/BENCH_extraction.json" <<'PY'
import json, os, sys

path = sys.argv[1]
with open(path) as f:
    bench = json.load(f)
with open(os.environ["METRICS_FILE"]) as f:
    metrics = json.load(f)

bench["wlc_env"] = {
    "git_sha": os.environ["GIT_SHA"],
    "cpu_count": os.cpu_count(),
    "compiler": os.environ["COMPILER"],
    "build_type": os.environ["BUILD_TYPE"],
    "cxx_flags": os.environ["CXX_FLAGS"],
    "extract_metrics": metrics,
}
with open(path, "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
PY
rm -f "$metrics"

echo "wrote $repo/BENCH_extraction.json"
