#!/usr/bin/env python3
"""Diff two google-benchmark JSON files (e.g. BENCH_extraction.json from
tools/run_benchmarks.sh) and flag regressions.

Benchmarks are matched by name; times are normalized to nanoseconds before
comparison, so the two files may use different time units. A benchmark is a
regression when its candidate time exceeds the baseline by more than
--threshold (relative, default 0.10 = 10 %). Exit status: 0 when no
regression (or --no-fail), 1 when at least one benchmark regressed, 2 on
malformed input.

Host provenance matters: the wlc_env envelope and google-benchmark context
carry num_cpus/CPU info. When they differ, cross-host timing diffs are
noise, so the comparison prints a loud warning and downgrades itself to
report-only — regressions are listed but the exit status stays 0 (pass
--fail-on-host-mismatch to gate anyway). On a matching host the gate is
blocking, which is what lets CI run this without continue-on-error.

A missing or empty *baseline* is not an error: a fresh clone (or a CI cache
miss) has no BENCH_*.json yet, and failing the pipeline for that would force
every new checkout to hand-seed baselines. In that case the candidate is
printed report-only with a warning and the exit status is 0. A broken
*candidate* still exits 2 — that file was just produced by the run being
gated, so it should never be missing or malformed.

Regression *tracking* (as opposed to one-shot gating) lives in the history
mode: `compare_bench.py history <bench.json> --record` appends one JSONL
entry (commit, host, per-benchmark times) to a committed history file, and
`compare_bench.py history <bench.json> --last N` renders the per-benchmark
trajectory across the last N recorded commits, flagging consecutive-commit
slowdowns beyond the threshold. History rendering is always report-only —
gating stays with the pairwise mode CI already runs.

Usage: tools/compare_bench.py baseline.json candidate.json
           [--threshold 0.10] [--metric real_time|cpu_time] [--no-fail]
           [--fail-on-host-mismatch]
       tools/compare_bench.py history bench.json [--history-file F]
           [--record] [--commit SHA] [--last N] [--threshold T] [--metric M]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# The host-mismatch warning prints at most once per run: history mode
# compares N-1 consecutive snapshot pairs, and repeating the same warning
# once per pair buries the actual numbers under boilerplate.
_host_mismatch_warned = False


def warn_host_mismatch(a: str, b: str) -> None:
    global _host_mismatch_warned
    if _host_mismatch_warned:
        return
    _host_mismatch_warned = True
    print(f"WARNING: host mismatch — [{a}] vs [{b}]; "
          "timing diffs may be noise", file=sys.stderr)


def die(msg: str) -> None:
    """Malformed input is exit 2, distinct from exit 1 = real regression."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: cannot read benchmark JSON '{path}': {e}")
    if "benchmarks" not in data:
        die(f"error: '{path}' has no 'benchmarks' array "
            "(not a google-benchmark JSON file?)")
    return data


def usable_baseline(path: str) -> bool:
    """True when `path` exists, parses, and carries at least one benchmark.
    Anything else (absent, empty file, truncated JSON, no 'benchmarks',
    empty 'benchmarks' array) means there is nothing to gate against."""
    if not os.path.exists(path):
        return False
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError):
        return False
    return bool(data.get("benchmarks"))


def times_ns(data: dict, metric: str) -> dict[str, float]:
    """Map benchmark name -> time in ns. Aggregate runs (repetitions) keep
    only the mean; raw runs are used as-is."""
    out: dict[str, float] = {}
    for b in data["benchmarks"]:
        name = b.get("name", "")
        run_type = b.get("run_type", "iteration")
        if run_type == "aggregate":
            if b.get("aggregate_name") != "mean":
                continue
            name = b.get("run_name", name)
        if metric not in b:
            continue
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None:
            die(f"error: unknown time_unit '{b.get('time_unit')}' "
                f"in benchmark '{name}'")
        out[name] = float(b[metric]) * unit
    return out


def host_id(data: dict) -> str:
    ctx = data.get("context", {})
    env = data.get("wlc_env", {})
    cpus = ctx.get("num_cpus", env.get("num_cpus", "?"))
    mhz = ctx.get("mhz_per_cpu", "?")
    return f"num_cpus={cpus} mhz_per_cpu={mhz}"


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def current_commit() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_history(path: str, source: str) -> list[dict]:
    """Entries for `source` (bench file basename), oldest first. Lines that
    don't parse or belong to another bench file are skipped, so one history
    file can interleave several BENCH_*.json streams."""
    entries: list[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                e = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(e, dict) and e.get("source") == source \
                    and isinstance(e.get("times_ns"), dict):
                entries.append(e)
    return entries


def history_main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="compare_bench.py history",
        description="Track benchmark times across commits in a JSONL file")
    ap.add_argument("bench", help="google-benchmark JSON file for this run")
    ap.add_argument("--history-file", default="BENCH_history.jsonl",
                    help="committed JSONL trajectory (default "
                         "BENCH_history.jsonl next to the bench file's cwd)")
    ap.add_argument("--record", action="store_true",
                    help="append this run to the history file")
    ap.add_argument("--commit", default=None,
                    help="commit id to record (default: git rev-parse HEAD)")
    ap.add_argument("--last", type=int, default=10,
                    help="render the last N recorded runs (default 10)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="consecutive-commit slowdown flagged as REGRESSION")
    ap.add_argument("--metric", choices=("real_time", "cpu_time"),
                    default="real_time")
    args = ap.parse_args(argv)
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")
    if args.last < 1:
        ap.error("--last must be >= 1")

    source = os.path.basename(args.bench)
    bench_data = load(args.bench)

    if args.record:
        entry = {
            "commit": args.commit or current_commit(),
            "host": host_id(bench_data),
            "metric": args.metric,
            "source": source,
            "times_ns": times_ns(bench_data, args.metric),
        }
        with open(args.history_file, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"recorded {len(entry['times_ns'])} benchmark(s) from "
              f"'{source}' at commit {entry['commit']} into "
              f"'{args.history_file}'")

    entries = load_history(args.history_file, source)[-args.last:]
    if not entries:
        print(f"WARNING: no history for '{source}' in "
              f"'{args.history_file}'; record runs with --record",
              file=sys.stderr)
        return 0

    # One warning per distinct host pair, however many snapshots disagree.
    for prev, cur in zip(entries, entries[1:]):
        if prev.get("host") != cur.get("host"):
            warn_host_mismatch(str(prev.get("host")), str(cur.get("host")))

    names = sorted({n for e in entries for n in e["times_ns"]})
    commits = [str(e.get("commit", "?"))[:16] for e in entries]
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  " + "  ".join(f"{c:>16}" for c in commits))

    flagged = 0
    for name in names:
        cells, prev_ns = [], None
        for e in entries:
            ns = e["times_ns"].get(name)
            if ns is None:
                cell = "—"
            elif prev_ns is None:
                cell = fmt_ns(ns)
            else:
                delta = (ns - prev_ns) / prev_ns if prev_ns > 0 else 0.0
                mark = ""
                if delta > args.threshold:
                    mark = "!"
                    flagged += 1
                elif delta < -args.threshold:
                    mark = "+"
                cell = f"{fmt_ns(ns)} {delta:+.0%}{mark}"
            cells.append(f"{cell:>16}")
            if ns is not None:
                prev_ns = ns
        print(f"{name:<{width}}  " + "  ".join(cells))

    print(f"\n{len(entries)} run(s), {len(names)} benchmark(s); "
          f"{flagged} consecutive-run REGRESSION(s) beyond "
          f"{args.threshold:.0%} on {args.metric} (history is report-only; "
          "gating happens in the pairwise mode)")
    if flagged:
        print(f"REGRESSION: {flagged} consecutive-run slowdown(s) beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "history":
        return history_main(sys.argv[2:])
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that counts as a regression "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--metric", choices=("real_time", "cpu_time"),
                    default="real_time")
    ap.add_argument("--no-fail", action="store_true",
                    help="always exit 0 (report-only mode)")
    ap.add_argument("--fail-on-host-mismatch", action="store_true",
                    help="gate on regressions even when the baseline and "
                         "candidate hosts differ (default: report-only)")
    args = ap.parse_args()
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")

    if not usable_baseline(args.baseline):
        cand_data = load(args.candidate)
        cand = times_ns(cand_data, args.metric)
        print(f"WARNING: no usable baseline at '{args.baseline}' "
              "(missing, unparsable, or zero benchmarks); report-only, "
              "nothing to gate against", file=sys.stderr)
        width = max((len(n) for n in sorted(cand)), default=4)
        print(f"{'benchmark':<{width}}  {'candidate':>10}")
        for name in sorted(cand):
            print(f"{name:<{width}}  {fmt_ns(cand[name]):>10}")
        print(f"\n{len(cand)} benchmark(s), no baseline — exit 0 "
              "(save this candidate as the next baseline)")
        return 0

    base_data = load(args.baseline)
    cand_data = load(args.candidate)
    base = times_ns(base_data, args.metric)
    cand = times_ns(cand_data, args.metric)

    base_host, cand_host = host_id(base_data), host_id(cand_data)
    same_host = base_host == cand_host
    if not same_host:
        warn_host_mismatch(base_host, cand_host)

    common = sorted(set(base) & set(cand))
    added = sorted(set(cand) - set(base))
    removed = sorted(set(base) - set(cand))

    regressions = []
    width = max((len(n) for n in common), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'candidate':>10}  delta")
    for name in common:
        b, c = base[name], cand[name]
        delta = (c - b) / b if b > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  improved"
        print(f"{name:<{width}}  {fmt_ns(b):>10}  {fmt_ns(c):>10}  "
              f"{delta:+7.1%}{marker}")

    for name in added:
        print(f"{name:<{width}}  {'—':>10}  {fmt_ns(cand[name]):>10}  new")
    for name in removed:
        print(f"{name:<{width}}  {fmt_ns(base[name]):>10}  {'—':>10}  removed")
    if not common:
        print("warning: no common benchmarks between the two files",
              file=sys.stderr)

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} on {args.metric}; worst: "
              f"{worst[0]} ({worst[1]:+.1%})", file=sys.stderr)
        if args.no_fail:
            return 0
        if not same_host and not args.fail_on_host_mismatch:
            print("cross-host timings: reporting only, not failing "
                  "(use --fail-on-host-mismatch to gate)", file=sys.stderr)
            return 0
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} on {args.metric} "
          f"({len(common)} compared, {len(added)} new, {len(removed)} removed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
