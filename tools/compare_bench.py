#!/usr/bin/env python3
"""Diff two google-benchmark JSON files (e.g. BENCH_extraction.json from
tools/run_benchmarks.sh) and flag regressions.

Benchmarks are matched by name; times are normalized to nanoseconds before
comparison, so the two files may use different time units. A benchmark is a
regression when its candidate time exceeds the baseline by more than
--threshold (relative, default 0.10 = 10 %). Exit status: 0 when no
regression (or --no-fail), 1 when at least one benchmark regressed, 2 on
malformed input.

Host provenance matters: the wlc_env envelope and google-benchmark context
carry num_cpus/CPU info. When they differ, cross-host timing diffs are
noise, so the comparison prints a loud warning and downgrades itself to
report-only — regressions are listed but the exit status stays 0 (pass
--fail-on-host-mismatch to gate anyway). On a matching host the gate is
blocking, which is what lets CI run this without continue-on-error.

A missing or empty *baseline* is not an error: a fresh clone (or a CI cache
miss) has no BENCH_*.json yet, and failing the pipeline for that would force
every new checkout to hand-seed baselines. In that case the candidate is
printed report-only with a warning and the exit status is 0. A broken
*candidate* still exits 2 — that file was just produced by the run being
gated, so it should never be missing or malformed.

Usage: tools/compare_bench.py baseline.json candidate.json
           [--threshold 0.10] [--metric real_time|cpu_time] [--no-fail]
           [--fail-on-host-mismatch]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read benchmark JSON '{path}': {e}")
    if "benchmarks" not in data:
        sys.exit(f"error: '{path}' has no 'benchmarks' array "
                 "(not a google-benchmark JSON file?)")
    return data


def usable_baseline(path: str) -> bool:
    """True when `path` exists, parses, and carries at least one benchmark.
    Anything else (absent, empty file, truncated JSON, no 'benchmarks',
    empty 'benchmarks' array) means there is nothing to gate against."""
    if not os.path.exists(path):
        return False
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError):
        return False
    return bool(data.get("benchmarks"))


def times_ns(data: dict, metric: str) -> dict[str, float]:
    """Map benchmark name -> time in ns. Aggregate runs (repetitions) keep
    only the mean; raw runs are used as-is."""
    out: dict[str, float] = {}
    for b in data["benchmarks"]:
        name = b.get("name", "")
        run_type = b.get("run_type", "iteration")
        if run_type == "aggregate":
            if b.get("aggregate_name") != "mean":
                continue
            name = b.get("run_name", name)
        if metric not in b:
            continue
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"error: unknown time_unit '{b.get('time_unit')}' "
                     f"in benchmark '{name}'")
        out[name] = float(b[metric]) * unit
    return out


def host_id(data: dict) -> str:
    ctx = data.get("context", {})
    env = data.get("wlc_env", {})
    cpus = ctx.get("num_cpus", env.get("num_cpus", "?"))
    mhz = ctx.get("mhz_per_cpu", "?")
    return f"num_cpus={cpus} mhz_per_cpu={mhz}"


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that counts as a regression "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--metric", choices=("real_time", "cpu_time"),
                    default="real_time")
    ap.add_argument("--no-fail", action="store_true",
                    help="always exit 0 (report-only mode)")
    ap.add_argument("--fail-on-host-mismatch", action="store_true",
                    help="gate on regressions even when the baseline and "
                         "candidate hosts differ (default: report-only)")
    args = ap.parse_args()
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")

    if not usable_baseline(args.baseline):
        cand_data = load(args.candidate)
        cand = times_ns(cand_data, args.metric)
        print(f"WARNING: no usable baseline at '{args.baseline}' "
              "(missing, unparsable, or zero benchmarks); report-only, "
              "nothing to gate against", file=sys.stderr)
        width = max((len(n) for n in sorted(cand)), default=4)
        print(f"{'benchmark':<{width}}  {'candidate':>10}")
        for name in sorted(cand):
            print(f"{name:<{width}}  {fmt_ns(cand[name]):>10}")
        print(f"\n{len(cand)} benchmark(s), no baseline — exit 0 "
              "(save this candidate as the next baseline)")
        return 0

    base_data = load(args.baseline)
    cand_data = load(args.candidate)
    base = times_ns(base_data, args.metric)
    cand = times_ns(cand_data, args.metric)

    base_host, cand_host = host_id(base_data), host_id(cand_data)
    same_host = base_host == cand_host
    if not same_host:
        print(f"WARNING: host mismatch — baseline [{base_host}] vs "
              f"candidate [{cand_host}]; timing diffs may be noise",
              file=sys.stderr)

    common = sorted(set(base) & set(cand))
    added = sorted(set(cand) - set(base))
    removed = sorted(set(base) - set(cand))

    regressions = []
    width = max((len(n) for n in common), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'candidate':>10}  delta")
    for name in common:
        b, c = base[name], cand[name]
        delta = (c - b) / b if b > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  improved"
        print(f"{name:<{width}}  {fmt_ns(b):>10}  {fmt_ns(c):>10}  "
              f"{delta:+7.1%}{marker}")

    for name in added:
        print(f"{name:<{width}}  {'—':>10}  {fmt_ns(cand[name]):>10}  new")
    for name in removed:
        print(f"{name:<{width}}  {fmt_ns(base[name]):>10}  {'—':>10}  removed")
    if not common:
        print("warning: no common benchmarks between the two files",
              file=sys.stderr)

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} on {args.metric}; worst: "
              f"{worst[0]} ({worst[1]:+.1%})", file=sys.stderr)
        if args.no_fail:
            return 0
        if not same_host and not args.fail_on_host_mismatch:
            print("host mismatch: reporting only, not failing "
                  "(use --fail-on-host-mismatch to gate)", file=sys.stderr)
            return 0
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%} on {args.metric} "
          f"({len(common)} compared, {len(added)} new, {len(removed)} removed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
