#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py (pairwise gate + history mode).

Every test shells out to the script exactly the way CI does, so exit codes
and stderr wording — the two things other tooling keys on — are what is
asserted, not internals. Registered with CTest as `compare_bench_py`
(label `tools`) from tools/CMakeLists.txt; also runnable directly:

    python3 tools/test_compare_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def bench_json(times_ns, num_cpus=8, mhz=3000):
    """Minimal google-benchmark JSON with a host-identifying context."""
    return {
        "context": {"num_cpus": num_cpus, "mhz_per_cpu": mhz},
        "benchmarks": [
            {"name": name, "run_type": "iteration",
             "real_time": ns, "cpu_time": ns, "time_unit": "ns"}
            for name, ns in sorted(times_ns.items())
        ],
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="cmp_bench_")
        self.addCleanup(self.tmp.cleanup)

    def path(self, name):
        return os.path.join(self.tmp.name, name)

    def write(self, name, data):
        p = self.path(name)
        with open(p, "w", encoding="utf-8") as f:
            json.dump(data, f)
        return p

    def run_tool(self, *argv):
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True, text=True, cwd=self.tmp.name)

    # ---- pairwise mode ----------------------------------------------------

    def test_same_host_regression_exits_1(self):
        base = self.write("base.json", bench_json({"bm_conv": 100.0}))
        cand = self.write("cand.json", bench_json({"bm_conv": 150.0}))
        r = self.run_tool(base, cand, "--threshold", "0.10")
        self.assertEqual(r.returncode, 1, r.stderr)
        self.assertIn("REGRESSION", r.stdout)
        self.assertNotIn("host mismatch", r.stderr)

    def test_same_host_within_threshold_exits_0(self):
        base = self.write("base.json", bench_json({"bm_conv": 100.0}))
        cand = self.write("cand.json", bench_json({"bm_conv": 105.0}))
        r = self.run_tool(base, cand, "--threshold", "0.10")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_host_mismatch_warns_exactly_once_and_does_not_gate(self):
        base = self.write("base.json", bench_json({"bm_conv": 100.0},
                                                  num_cpus=8))
        cand = self.write("cand.json", bench_json({"bm_conv": 200.0},
                                                  num_cpus=64))
        r = self.run_tool(base, cand, "--threshold", "0.10")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertEqual(r.stderr.count("host mismatch"), 1, r.stderr)
        self.assertIn("REGRESSION", r.stdout)

    def test_fail_on_host_mismatch_gates_anyway(self):
        base = self.write("base.json", bench_json({"bm_conv": 100.0},
                                                  num_cpus=8))
        cand = self.write("cand.json", bench_json({"bm_conv": 200.0},
                                                  num_cpus=64))
        r = self.run_tool(base, cand, "--fail-on-host-mismatch")
        self.assertEqual(r.returncode, 1, r.stderr)
        self.assertEqual(r.stderr.count("host mismatch"), 1, r.stderr)

    def test_missing_baseline_is_report_only_exit_0(self):
        cand = self.write("cand.json", bench_json({"bm_conv": 100.0}))
        r = self.run_tool(self.path("nonexistent.json"), cand)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no usable baseline", r.stderr)

    def test_malformed_candidate_exits_2(self):
        base = self.write("base.json", bench_json({"bm_conv": 100.0}))
        cand = self.path("broken.json")
        with open(cand, "w", encoding="utf-8") as f:
            f.write("{not json")
        r = self.run_tool(base, cand)
        self.assertEqual(r.returncode, 2, r.stderr)

    # ---- history mode -----------------------------------------------------

    def record(self, bench_path, commit, hist="hist.jsonl"):
        return self.run_tool("history", bench_path, "--record",
                             "--commit", commit,
                             "--history-file", self.path(hist))

    def test_history_record_appends_jsonl_entry(self):
        bench = self.write("bench.json", bench_json({"bm_conv": 100.0}))
        r = self.record(bench, "abc123")
        self.assertEqual(r.returncode, 0, r.stderr)
        with open(self.path("hist.jsonl"), encoding="utf-8") as f:
            entries = [json.loads(line) for line in f if line.strip()]
        self.assertEqual(len(entries), 1)
        self.assertEqual(entries[0]["commit"], "abc123")
        self.assertEqual(entries[0]["source"], "bench.json")
        self.assertEqual(entries[0]["times_ns"], {"bm_conv": 100.0})

    def test_history_render_flags_consecutive_regression_report_only(self):
        b1 = self.write("bench.json", bench_json({"bm_conv": 100.0}))
        self.record(b1, "c1")
        b2 = self.write("bench.json", bench_json({"bm_conv": 170.0}))
        self.record(b2, "c2")
        r = self.run_tool("history", b2, "--history-file",
                          self.path("hist.jsonl"), "--threshold", "0.10")
        self.assertEqual(r.returncode, 0, r.stderr)  # never gates
        self.assertIn("REGRESSION", r.stderr)
        self.assertIn("c1", r.stdout)
        self.assertIn("c2", r.stdout)
        self.assertIn("+70%", r.stdout)

    def test_history_multi_host_warns_exactly_once(self):
        for i, cpus in enumerate((8, 64, 8, 64)):
            b = self.write("bench.json",
                           bench_json({"bm_conv": 100.0 + i}, num_cpus=cpus))
            self.record(b, f"c{i}")
        r = self.run_tool("history", self.path("bench.json"),
                          "--history-file", self.path("hist.jsonl"))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertEqual(r.stderr.count("host mismatch"), 1, r.stderr)

    def test_history_empty_file_warns_and_exits_0(self):
        bench = self.write("bench.json", bench_json({"bm_conv": 100.0}))
        r = self.run_tool("history", bench,
                          "--history-file", self.path("absent.jsonl"))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no history", r.stderr)

    def test_history_filters_by_source_file(self):
        b1 = self.write("curve.json", bench_json({"bm_conv": 100.0}))
        self.record(b1, "c1")
        b2 = self.write("extract.json", bench_json({"bm_window": 50.0}))
        self.record(b2, "c1")
        r = self.run_tool("history", b1,
                          "--history-file", self.path("hist.jsonl"))
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("bm_conv", r.stdout)
        self.assertNotIn("bm_window", r.stdout)

    def test_history_last_limits_rendered_runs(self):
        for i in range(5):
            b = self.write("bench.json", bench_json({"bm_conv": 100.0 + i}))
            self.record(b, f"commit{i}")
        r = self.run_tool("history", self.path("bench.json"),
                          "--history-file", self.path("hist.jsonl"),
                          "--last", "2")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertNotIn("commit2", r.stdout)
        self.assertIn("commit3", r.stdout)
        self.assertIn("commit4", r.stdout)


if __name__ == "__main__":
    unittest.main()
