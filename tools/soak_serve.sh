#!/usr/bin/env bash
# Crash-recovery soak for the serve daemon: stream a trace through
# `wlc_analyze serve` with several concurrent clients, SIGKILL the daemon
# mid-stream, restart it on the same state dir, and require every client to
# finish with curves byte-identical to both (a) a clean daemon run and
# (b) the offline batch extraction of the same trace. This is the
# out-of-process twin of ServeServer.GracefulDrainSnapshotsAndRestartResumes-
# BitIdentically — the in-process test can only stop the reactor politely;
# only a real kill -9 exercises torn-write protection (atomic snapshot
# rename) and the resume protocol across a genuine process death.
#
# Usage: tools/soak_serve.sh [--tsan] [--rounds N] [--events N]
#   --tsan    build with ThreadSanitizer (own build tree, build-tsan)
#   --rounds  kill/restart cycles per soak (default 2)
#   --events  trace length (default 20000)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
san_flags=()
rounds=2
events=20000
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan)   build="$repo/build-tsan"; san_flags=(-DWLC_SANITIZE_THREAD=ON); shift ;;
    --rounds) rounds="$2"; shift 2 ;;
    --events) events="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake -B "$build" -S "$repo" "${san_flags[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" -j "$(nproc)" --target wlc_analyze >/dev/null
bin="$build/tools/wlc_analyze"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

work="$(mktemp -d "${TMPDIR:-/tmp}/wlc_soak.XXXXXX")"
sock="$work/daemon.sock"
state="$work/state"
daemon_pid=""
client_pids=()
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  for p in "${client_pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== soak workspace: $work (rounds=$rounds, events=$events)"

python3 - "$work/trace.csv" "$events" <<'PY'
import random, sys
path, n = sys.argv[1], int(sys.argv[2])
random.seed(4242)
t = 0.0
with open(path, "w") as f:
    f.write("time,type,demand\n")
    for _ in range(n):
        t += random.uniform(1e-5, 1e-3)
        f.write(f"{t:.9f},0,{random.randint(1, 50_000)}\n")
PY

start_daemon() {
  "$bin" serve --listen "unix:$sock" --state-dir "$state" \
    --max-sessions 16 --snapshot-every 256 --snapshot-interval 1 \
    --request-log "$work/requests.jsonl" --watchdog-ms 5000 \
    >>"$work/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && return 0
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/daemon.log" >&2; exit 1; }
    sleep 0.05
  done
  echo "daemon never created $sock" >&2; exit 1
}

run_clients() {  # $1 = output prefix tag, $2 = throttle-ms
  client_pids=()
  for i in 1 2 3; do
    "$bin" serve-client "$work/trace.csv" --connect "unix:$sock" \
      --session "soak-$i" --tenant "tenant-$i" --chunk 128 \
      --throttle-ms "$2" --retry-for 60 --out "$work/$1-$i" \
      >"$work/$1-$i.log" 2>&1 &
    client_pids+=($!)
  done
}

# The request log's torn-write contract: one write(2) per record on an
# O_APPEND fd means a kill -9 may truncate the *stream* but never a *line* —
# the file must end in a newline and every line must be complete JSON.
check_request_log() {
  [[ -f "$work/requests.jsonl" ]] || return 0
  python3 - "$work/requests.jsonl" <<'PY'
import json, sys
data = open(sys.argv[1], "rb").read()
if data and not data.endswith(b"\n"):
    sys.exit(f"torn request-log tail (no final newline): {data[-80:]!r}")
for i, line in enumerate(data.splitlines(), 1):
    if not line:
        continue
    try:
        json.loads(line)
    except ValueError:
        sys.exit(f"torn request-log record at line {i}: {line[:120]!r}")
PY
}

wait_clients() {  # $1 = tag
  local rc=0 p i=1
  for p in "${client_pids[@]}"; do
    if ! wait "$p"; then
      echo "client $1-$i failed:" >&2
      cat "$work/$1-$i.log" >&2
      rc=1
    fi
    i=$((i + 1))
  done
  client_pids=()
  return "$rc"
}

# --- reference 1: offline batch extraction ----------------------------------
"$bin" extract "$work/trace.csv" --out "$work/batch" >/dev/null

# --- reference 2: clean daemon run (no kill) --------------------------------
start_daemon
run_clients clean 0
wait_clients clean
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "graceful drain exited non-zero" >&2; exit 1; }
daemon_pid=""
for i in 1 2 3; do
  cmp "$work/batch.gamma.csv" "$work/clean-$i.gamma.csv" \
    || { echo "clean daemon curves differ from batch (client $i)" >&2; exit 1; }
done
rm -rf "$state"
echo "== clean daemon run matches batch extraction"

# --- the soak: SIGKILL mid-stream, restart, clients resume ------------------
start_daemon
run_clients soak 2  # throttled so the kill lands mid-stream
for round in $(seq 1 "$rounds"); do
  sleep 1
  echo "== round $round: kill -9 daemon ($daemon_pid)"
  kill -9 "$daemon_pid"
  wait "$daemon_pid" 2>/dev/null || true
  check_request_log \
    || { echo "FAIL: request log torn by kill -9 (round $round)" >&2; exit 1; }
  sleep 0.3  # clients notice the dead socket and enter their retry window
  start_daemon
  grep -q "recovered" "$work/daemon.log" \
    || echo "   (note: no sessions recovered this round — kill may have landed before first snapshot)"
done
wait_clients soak

for i in 1 2 3; do
  cmp "$work/batch.gamma.csv" "$work/soak-$i.gamma.csv" \
    || { echo "FAIL: post-crash curves differ from batch (client $i)" >&2; exit 1; }
  cmp "$work/clean-$i.gamma.csv" "$work/soak-$i.gamma.csv" \
    || { echo "FAIL: post-crash curves differ from clean run (client $i)" >&2; exit 1; }
done

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "final graceful drain exited non-zero" >&2; exit 1; }
daemon_pid=""
check_request_log \
  || { echo "FAIL: request log torn after final drain" >&2; exit 1; }
[[ -s "$work/requests.jsonl" ]] \
  || { echo "FAIL: request log is empty after the soak" >&2; exit 1; }
echo "PASS: $rounds kill -9 rounds, 3 concurrent clients, curves bit-identical to batch and clean runs, request log whole-line JSONL throughout"
