#!/usr/bin/env bash
# Crash-recovery soak for the serve daemon: stream a trace through
# `wlc_analyze serve` with several concurrent clients, SIGKILL the daemon
# mid-stream, restart it on the same state dir, and require every client to
# finish with curves byte-identical to both (a) a clean daemon run and
# (b) the offline batch extraction of the same trace. This is the
# out-of-process twin of ServeServer.GracefulDrainSnapshotsAndRestartResumes-
# BitIdentically — the in-process test can only stop the reactor politely;
# only a real kill -9 exercises torn-write protection (atomic snapshot
# rename) and the resume protocol across a genuine process death.
#
# --chaos layers the partial-failure space on top: every daemon incarnation
# runs under a seeded WLC_FAULT_SPEC plan (EINTR storms + short reads/writes
# + delayed fsync — the recoverable kinds; the retry loops must make them
# invisible to correctness), and after the kill rounds one *live migration*
# runs: daemon A restarts with --drain-to naming a fresh daemon B, clients
# stream against the failover list "A,B", A is TERM'd mid-stream, hands its
# sessions to B over Migrate frames, and the clients must finish on B with
# curves still byte-identical to batch.
#
# Drain completion is detected by a sentinel, not a sleep: the daemon
# appends a {"opcode":"drain","outcome":"complete"} record as the *last*
# line of its request log when a graceful drain (including migration) has
# fully flushed. Comparing outputs before that record exists would race the
# migrated daemon's final snapshot writes.
#
# Usage: tools/soak_serve.sh [--tsan] [--chaos] [--rounds N] [--events N]
#                            [--compact-eps E] [--compact-rel R]
#   --tsan    build with ThreadSanitizer (own build tree, build-tsan)
#   --chaos   seeded syscall fault plans on every daemon + a live migration
#   --rounds  kill/restart cycles per soak (default 2)
#   --events  trace length (default 20000)
#   --compact-eps / --compact-rel
#             passed through to every daemon incarnation: snapshots then
#             carry the compact PWL tier, so the kill -9 resume assertion
#             (curves bit-identical to batch and to a clean run) also proves
#             that tier adoption/recompute on recovery never perturbs the
#             served gamma curves. Client output stays dense either way —
#             the tier is a serving-layer annex, which is exactly why its
#             presence must be invisible in these cmp checks.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
san_flags=()
rounds=2
events=20000
chaos=0
compact_flags=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan)   build="$repo/build-tsan"; san_flags=(-DWLC_SANITIZE_THREAD=ON); shift ;;
    --chaos)  chaos=1; shift ;;
    --rounds) rounds="$2"; shift 2 ;;
    --events) events="$2"; shift 2 ;;
    --compact-eps) compact_flags+=(--compact-eps "$2"); shift 2 ;;
    --compact-rel) compact_flags+=(--compact-rel "$2"); shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake -B "$build" -S "$repo" "${san_flags[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" -j "$(nproc)" --target wlc_analyze >/dev/null
bin="$build/tools/wlc_analyze"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

work="$(mktemp -d "${TMPDIR:-/tmp}/wlc_soak.XXXXXX")"
sock="$work/daemon.sock"
state="$work/state"
sock_b="$work/daemon-b.sock"
state_b="$work/state-b"
daemon_pid=""
daemon_b_pid=""
client_pids=()
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  [[ -n "$daemon_b_pid" ]] && kill -9 "$daemon_b_pid" 2>/dev/null || true
  for p in "${client_pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== soak workspace: $work (rounds=$rounds, events=$events, chaos=$chaos)"

python3 - "$work/trace.csv" "$events" <<'PY'
import random, sys
path, n = sys.argv[1], int(sys.argv[2])
random.seed(4242)
t = 0.0
with open(path, "w") as f:
    f.write("time,type,demand\n")
    for _ in range(n):
        t += random.uniform(1e-5, 1e-3)
        f.write(f"{t:.9f},0,{random.randint(1, 50_000)}\n")
PY

# Seeded fault plan for one daemon incarnation. Only the kinds the retry
# loops fully absorb: eintr (write_all/read_exact/open_retry loop),
# short (the same loops resume at the cut), and a small fsync delay.
# enospc/emfile are exercised by the unit tests, not here — the soak
# asserts *success*, so its plans must be recoverable by construction.
fault_spec_for_round() {  # $1 = round number
  echo "seed=$((4242 + $1));read:eintr,p=0.05;read:short,p=0.1;write:eintr,p=0.05;write:short,p=0.1;open:eintr,p=0.2;fsync:delay,p=0.1,ms=2"
}

daemon_fault_spec=""  # set per round in chaos mode; daemon-only (not clients)

start_daemon() {  # extra serve flags in "$@" (e.g. --drain-to for migration)
  WLC_FAULT_SPEC="$daemon_fault_spec" \
  "$bin" serve --listen "unix:$sock" --state-dir "$state" \
    --max-sessions 16 --snapshot-every 256 --snapshot-interval 1 \
    --request-log "$work/requests.jsonl" --watchdog-ms 5000 \
    ${compact_flags[@]+"${compact_flags[@]}"} "$@" \
    >>"$work/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && return 0
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/daemon.log" >&2; exit 1; }
    sleep 0.05
  done
  echo "daemon never created $sock" >&2; exit 1
}

start_daemon_b() {  # the migration peer: own socket, state dir, request log
  "$bin" serve --listen "unix:$sock_b" --state-dir "$state_b" \
    --max-sessions 16 --snapshot-every 256 --snapshot-interval 1 \
    --request-log "$work/requests-b.jsonl" --watchdog-ms 5000 \
    ${compact_flags[@]+"${compact_flags[@]}"} \
    >>"$work/daemon-b.log" 2>&1 &
  daemon_b_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock_b" ]] && return 0
    kill -0 "$daemon_b_pid" 2>/dev/null || { cat "$work/daemon-b.log" >&2; exit 1; }
    sleep 0.05
  done
  echo "peer daemon never created $sock_b" >&2; exit 1
}

run_clients() {  # $1 = output prefix tag, $2 = throttle-ms, $3 = connect spec
  local connect="${3:-unix:$sock}"
  client_pids=()
  for i in 1 2 3; do
    "$bin" serve-client "$work/trace.csv" --connect "$connect" \
      --session "soak-$i" --tenant "tenant-$i" --chunk 128 \
      --throttle-ms "$2" --retry-for 60 --out "$work/$1-$i" \
      >"$work/$1-$i.log" 2>&1 &
    client_pids+=($!)
  done
}

# The request log's torn-write contract: one write(2) per record on an
# O_APPEND fd means a kill -9 may truncate the *stream* but never a *line* —
# the file must end in a newline and every line must be complete JSON.
check_request_log() {  # $1 = log path (default daemon A's)
  local log="${1:-$work/requests.jsonl}"
  [[ -f "$log" ]] || return 0
  python3 - "$log" <<'PY'
import json, sys
data = open(sys.argv[1], "rb").read()
if data and not data.endswith(b"\n"):
    sys.exit(f"torn request-log tail (no final newline): {data[-80:]!r}")
for i, line in enumerate(data.splitlines(), 1):
    if not line:
        continue
    try:
        json.loads(line)
    except ValueError:
        sys.exit(f"torn request-log record at line {i}: {line[:120]!r}")
PY
}

# Block until the daemon's graceful drain has fully flushed: the reactor
# appends a {"opcode":"drain","outcome":"complete"} record as the last act
# of a drain (after migration hand-offs and the final snapshot_all). This
# replaces fixed sleeps — a loaded or sanitized daemon can take arbitrarily
# long to flush, and comparing outputs before the sentinel would race it.
wait_drain_sentinel() {  # $1 = request log path
  local log="$1"
  for _ in $(seq 1 200); do
    if [[ -f "$log" ]] && grep -q '"opcode":"drain"' "$log" \
        && grep -q '"outcome":"complete"' "$log"; then
      return 0
    fi
    sleep 0.05
  done
  echo "drain sentinel never appeared in $log" >&2
  return 1
}

stop_daemon_gracefully() {  # $1 = pid, $2 = request log; clears nothing
  kill -TERM "$1"
  wait "$1" || { echo "graceful drain exited non-zero" >&2; exit 1; }
  wait_drain_sentinel "$2" || exit 1
}

wait_clients() {  # $1 = tag
  local rc=0 p i=1
  for p in "${client_pids[@]}"; do
    if ! wait "$p"; then
      echo "client $1-$i failed:" >&2
      cat "$work/$1-$i.log" >&2
      rc=1
    fi
    i=$((i + 1))
  done
  client_pids=()
  return "$rc"
}

# --- reference 1: offline batch extraction ----------------------------------
"$bin" extract "$work/trace.csv" --out "$work/batch" >/dev/null

# --- reference 2: clean daemon run (no kill, no faults) ---------------------
start_daemon
run_clients clean 0
wait_clients clean
stop_daemon_gracefully "$daemon_pid" "$work/requests.jsonl"
daemon_pid=""
for i in 1 2 3; do
  cmp "$work/batch.gamma.csv" "$work/clean-$i.gamma.csv" \
    || { echo "clean daemon curves differ from batch (client $i)" >&2; exit 1; }
done
rm -rf "$state"
: > "$work/requests.jsonl"  # fresh log so later sentinel greps see only their own drain
echo "== clean daemon run matches batch extraction"

# --- the soak: SIGKILL mid-stream, restart, clients resume ------------------
[[ "$chaos" == 1 ]] && daemon_fault_spec="$(fault_spec_for_round 0)"
start_daemon
run_clients soak 2  # throttled so the kill lands mid-stream
for round in $(seq 1 "$rounds"); do
  sleep 1
  echo "== round $round: kill -9 daemon ($daemon_pid)"
  kill -9 "$daemon_pid"
  wait "$daemon_pid" 2>/dev/null || true
  check_request_log \
    || { echo "FAIL: request log torn by kill -9 (round $round)" >&2; exit 1; }
  sleep 0.3  # clients notice the dead socket and enter their retry window
  [[ "$chaos" == 1 ]] && daemon_fault_spec="$(fault_spec_for_round "$round")"
  start_daemon
  grep -q "recovered" "$work/daemon.log" \
    || echo "   (note: no sessions recovered this round — kill may have landed before first snapshot)"
done
wait_clients soak

for i in 1 2 3; do
  cmp "$work/batch.gamma.csv" "$work/soak-$i.gamma.csv" \
    || { echo "FAIL: post-crash curves differ from batch (client $i)" >&2; exit 1; }
  cmp "$work/clean-$i.gamma.csv" "$work/soak-$i.gamma.csv" \
    || { echo "FAIL: post-crash curves differ from clean run (client $i)" >&2; exit 1; }
done

stop_daemon_gracefully "$daemon_pid" "$work/requests.jsonl"
daemon_pid=""
check_request_log \
  || { echo "FAIL: request log torn after final drain" >&2; exit 1; }
[[ -s "$work/requests.jsonl" ]] \
  || { echo "FAIL: request log is empty after the soak" >&2; exit 1; }

# --- chaos only: live migration (drain A --drain-to B, clients fail over) ---
if [[ "$chaos" == 1 ]]; then
  echo "== chaos: live migration round (A drains to B mid-stream)"
  rm -rf "$state" "$state_b"
  : > "$work/requests.jsonl"
  daemon_fault_spec="$(fault_spec_for_round 77)"
  start_daemon --drain-to "unix:$sock_b"
  start_daemon_b
  run_clients mig 2 "unix:$sock,unix:$sock_b"
  sleep 1  # let the streams get past Open so the drain lands mid-stream
  echo "== chaos: TERM daemon A ($daemon_pid), sessions migrate to B"
  stop_daemon_gracefully "$daemon_pid" "$work/requests.jsonl"
  daemon_pid=""
  grep -q "migrated to unix:$sock_b" "$work/daemon.log" \
    || echo "   (note: no sessions migrated — drain may have landed between sessions)"
  wait_clients mig
  for i in 1 2 3; do
    cmp "$work/batch.gamma.csv" "$work/mig-$i.gamma.csv" \
      || { echo "FAIL: post-migration curves differ from batch (client $i)" >&2; exit 1; }
  done
  stop_daemon_gracefully "$daemon_b_pid" "$work/requests-b.jsonl"
  daemon_b_pid=""
  check_request_log "$work/requests-b.jsonl" \
    || { echo "FAIL: peer request log torn after migration" >&2; exit 1; }
  echo "== migration round: curves bit-identical to batch after live hand-off"
fi

if [[ "$chaos" == 1 ]]; then
  echo "PASS: $rounds kill -9 rounds under seeded fault plans + 1 live migration, 3 concurrent clients, curves bit-identical to batch and clean runs, request logs whole-line JSONL throughout"
else
  echo "PASS: $rounds kill -9 rounds, 3 concurrent clients, curves bit-identical to batch and clean runs, request log whole-line JSONL throughout"
fi
