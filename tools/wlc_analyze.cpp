// Thin entry point of the wlc_analyze command-line tool; all logic is in
// src/cli (testable without spawning processes).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return wlc::cli::run(args, std::cout, std::cerr);
}
