// Thin entry point of the wlc_analyze command-line tool; all logic is in
// src/cli (testable without spawning processes). The only responsibility
// kept here is signal routing: SIGINT/SIGTERM flip the process-wide cancel
// token, and the command unwinds cooperatively — one-shot analyses exit 6
// with atomically-written (never torn) outputs, the serve daemon drains and
// snapshots its sessions before exiting 0.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "runtime/runtime.h"

namespace {

// The token outlives every handler invocation and cancel() on an armed
// token is async-signal-safe (one relaxed atomic store, no allocation), so
// this is the entire handler.
wlc::runtime::CancelToken g_interrupt = wlc::runtime::CancelToken::make();

extern "C" void on_signal(int) { g_interrupt.cancel(); }

}  // namespace

int main(int argc, char** argv) {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // Writing to a client that vanished must be an EPIPE errno (handled per
  // connection by the serve reactor), not process death.
  signal(SIGPIPE, SIG_IGN);

  std::vector<std::string> args(argv + 1, argv + argc);
  return wlc::cli::run(args, std::cout, std::cerr, &g_interrupt);
}
