#!/usr/bin/env bash
# Builds the test suite with ASan+UBSan (-DWLC_SANITIZE=ON) in a separate
# build tree and runs it. The fault-injection and fuzz tests exercise the
# parser on corrupted bytes, so this is the configuration where memory bugs
# in the ingestion path would actually surface.
#
# Usage: tools/run_sanitized_tests.sh [ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-sanitize"

cmake -B "$build" -S "$repo" \
  -DWLC_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWLC_BUILD_BENCH=OFF \
  -DWLC_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$(nproc)"

# halt_on_error makes any sanitizer report fail the test run rather than
# scroll past; detect_leaks stays on by default where supported.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)" "$@"
