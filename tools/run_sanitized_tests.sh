#!/usr/bin/env bash
# Builds the test suite with sanitizers in a separate build tree and runs it.
#
# Default: ASan+UBSan (-DWLC_SANITIZE=ON) — the fault-injection and fuzz
# tests exercise the parser on corrupted bytes, so this is the configuration
# where memory bugs in the ingestion path would actually surface.
#
# --tsan: ThreadSanitizer (-DWLC_SANITIZE_THREAD=ON) in its own build tree —
# the configuration where data races in the ThreadPool / parallel extraction
# engine would surface. Combine with `-L parallel` to run just that suite.
#
# Usage: tools/run_sanitized_tests.sh [--tsan] [ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

mode=address
if [[ "${1:-}" == "--tsan" ]]; then
  mode=thread
  shift
fi

if [[ "$mode" == "thread" ]]; then
  build="$repo/build-tsan"
  san_flags=(-DWLC_SANITIZE_THREAD=ON)
else
  build="$repo/build-sanitize"
  san_flags=(-DWLC_SANITIZE=ON)
fi

cmake -B "$build" -S "$repo" \
  "${san_flags[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWLC_BUILD_BENCH=OFF \
  -DWLC_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$(nproc)"

# halt_on_error makes any sanitizer report fail the test run rather than
# scroll past; detect_leaks stays on by default where supported.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)" "$@"

# Exit-code smoke for the runtime controls, under the same sanitizer: the
# cancelled/timeout (6) and budget-exceeded (7) paths unwind through the
# thread pool and the parse loop, exactly where a sanitizer would catch a
# leak or race on the abort path. `|| rc=$?` keeps set -e from treating the
# intentional non-zero exits as failures.
cli="$build/tools/wlc_analyze"
fixture="$repo/tests/fixtures/polling_clean.csv"
if [[ -x "$cli" ]]; then
  rc=0
  "$cli" extract "$fixture" --timeout 0.000001 --on-budget=degrade \
    --degradation-out "$build/deg-smoke.json" >/dev/null 2>&1 || rc=$?
  if [[ "$rc" -ne 6 ]]; then
    echo "expected exit 6 from --timeout, got $rc" >&2
    exit 1
  fi
  grep -q '"aborted": "deadline"' "$build/deg-smoke.json"

  rc=0
  "$cli" curves "$fixture" --max-grid 4 >/dev/null 2>&1 || rc=$?
  if [[ "$rc" -ne 7 ]]; then
    echo "expected exit 7 from --max-grid under fail, got $rc" >&2
    exit 1
  fi
  echo "runtime exit-code smoke passed (6 cancelled, 7 budget)"
fi
