#!/usr/bin/env python3
"""Lint Prometheus text exposition format (version 0.0.4) from stdin or a
file. The container has no promtool, so CI validates `wlc_analyze stats
--format prom` with this instead.

Checks, per https://prometheus.io/docs/instrumenting/exposition_formats/:

  - line grammar: `# TYPE`/`# HELP` comments, sample lines
    `name[{labels}] value [timestamp]`, metric names matching
    [a-zA-Z_:][a-zA-Z0-9_:]*
  - every sample belongs to the most recent TYPE-declared family (exact
    name, or the _bucket/_sum/_count series of a histogram family); no
    family is TYPE-declared twice
  - counter samples are non-negative and finite
  - histogram families carry a le="+Inf" bucket, bucket counts are
    cumulative (non-decreasing in le order), and the +Inf bucket equals
    the family's _count sample

Exit status: 0 clean, 1 violations (each printed to stderr), 2 usage/IO.
"""

from __future__ import annotations

import math
import re
import sys

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|histogram|summary|untyped)$")
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) .*$")
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(\{{[^{{}}]*\}})? (-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|Inf)|\+Inf|NaN)"
    r"( -?[0-9]+)?$"
)
_LABELS_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def main() -> int:
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [exposition.txt] (default: stdin)", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        try:
            with open(sys.argv[1], "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
    else:
        text = sys.stdin.read()

    errors: list[str] = []
    families: dict[str, str] = {}  # family name -> type
    # histogram family -> [(le, count)], and its _count sample value
    buckets: dict[str, list[tuple[float, float]]] = {}
    hist_counts: dict[str, float] = {}
    samples = 0

    def family_of(name: str) -> str | None:
        if name in families:
            return name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if families.get(base) == "histogram":
                    return base
        return None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if m := _TYPE_RE.match(line):
                name, kind = m.group(1), m.group(2)
                if name in families:
                    errors.append(f"line {lineno}: duplicate TYPE for '{name}'")
                families[name] = kind
            elif not _HELP_RE.match(line) and line.startswith(("# TYPE", "# HELP")):
                errors.append(f"line {lineno}: malformed TYPE/HELP comment: {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        samples += 1
        name, label_blob, raw_value = m.group(1), m.group(2), m.group(3)
        value = parse_value(raw_value)
        fam = family_of(name)
        if fam is None:
            errors.append(f"line {lineno}: sample '{name}' has no preceding TYPE declaration")
            continue
        kind = families[fam]
        labels = dict(_LABELS_RE.findall(label_blob or ""))
        if kind == "counter" and not (value >= 0 and math.isfinite(value)):
            errors.append(f"line {lineno}: counter '{name}' has value {raw_value}")
        if kind == "histogram" and name == fam + "_bucket":
            le = labels.get("le")
            if le is None:
                errors.append(f"line {lineno}: bucket of '{fam}' is missing its le label")
                continue
            try:
                buckets.setdefault(fam, []).append((parse_value(le), value))
            except ValueError:
                errors.append(f"line {lineno}: bucket of '{fam}' has bad le={le!r}")
        if kind == "histogram" and name == fam + "_count":
            hist_counts[fam] = value

    for fam, kind in families.items():
        if kind != "histogram":
            continue
        series = buckets.get(fam, [])
        if not any(math.isinf(le) and le > 0 for le, _ in series):
            errors.append(f"histogram '{fam}' has no le=\"+Inf\" bucket")
            continue
        in_order = sorted(series, key=lambda p: p[0])
        if in_order != series:
            errors.append(f"histogram '{fam}' buckets are not in increasing le order")
        last = -math.inf
        for le, count in in_order:
            if count < last:
                errors.append(
                    f"histogram '{fam}' buckets are not cumulative at le={le}"
                )
                break
            last = count
        inf_count = in_order[-1][1]
        if fam in hist_counts and inf_count != hist_counts[fam]:
            errors.append(
                f"histogram '{fam}': +Inf bucket {inf_count} != _count {hist_counts[fam]}"
            )
        elif fam not in hist_counts:
            errors.append(f"histogram '{fam}' is missing its _count sample")

    if samples == 0:
        errors.append("no samples found (empty exposition?)")
    for e in errors:
        print(f"lint_prom: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"lint_prom: OK — {samples} samples across {len(families)} families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
