#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

namespace wlc::obs {

std::string SchemaMismatchError::describe(int found, int expected) {
  std::ostringstream os;
  os << "metrics snapshot schema_version " << found << " is not readable by this build"
     << " (expected " << expected << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
/// map dots (and anything else outside the set) to underscores, with a
/// "wlc_" prefix providing the namespace and a safe leading character.
std::string prom_name(const std::string& name) {
  std::string out = "wlc_";
  out.reserve(name.size() + 4);
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const auto& c : snap.counters) {
    const std::string n = prom_name(c.name) + "_total";
    os << "# TYPE " << n << " counter\n" << n << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string n = prom_name(g.name);
    os << "# TYPE " << n << " gauge\n" << n << " " << g.value << "\n";
    os << "# TYPE " << n << "_max gauge\n" << n << "_max " << g.max << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.counts.size() ? h.counts[i] : 0;
      os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Tolerant JSON decode.

namespace {

/// Minimal owning JSON document node. Object member order is preserved but
/// lookups are by key; duplicate keys keep the first occurrence.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Recursive-descent JSON parser, strict on syntax (a malformed document is
/// a ParseError with line/column), liberal on nothing — tolerance lives in
/// the decode layer above, not here.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError("invalid metrics JSON: " + why, "", line, col);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (pos_ >= text_.size() || text_[pos_] != ch)
      fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      JsonValue member = parse_value();
      if (v.find(key) == nullptr) v.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Metric names are ASCII; encode anything else as UTF-8 so the
          // round trip stays lossless for the characters we do emit.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("invalid number");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      pos_ = start;
      fail("invalid number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::int64_t as_i64(const JsonValue& v) { return static_cast<std::int64_t>(v.number); }

std::int64_t member_i64(const JsonValue& obj, std::string_view key, std::int64_t fallback) {
  const JsonValue* m = obj.find(key);
  return (m != nullptr && m->type == JsonValue::Type::Number) ? as_i64(*m) : fallback;
}

std::vector<std::int64_t> member_i64_array(const JsonValue& obj, std::string_view key) {
  std::vector<std::int64_t> out;
  const JsonValue* m = obj.find(key);
  if (m == nullptr || m->type != JsonValue::Type::Array) return out;
  out.reserve(m->array.size());
  for (const JsonValue& e : m->array)
    out.push_back(e.type == JsonValue::Type::Number ? as_i64(e) : 0);
  return out;
}

}  // namespace

MetricsSnapshot decode_metrics_json(std::string_view json) {
  JsonParser parser(json);
  const JsonValue doc = parser.parse_document();
  if (doc.type != JsonValue::Type::Object)
    throw ParseError("metrics document is not a JSON object");

  // A stats document nests the snapshot under "metrics"; a plain
  // --metrics-out document *is* the snapshot. Check the envelope's
  // schema_version first — a mismatched envelope must not be misread either.
  const JsonValue* root = &doc;
  const JsonValue* ver = doc.find("schema_version");
  if (ver != nullptr && ver->type == JsonValue::Type::Number &&
      as_i64(*ver) != MetricsSnapshot::kSchemaVersion)
    throw SchemaMismatchError(static_cast<int>(as_i64(*ver)), MetricsSnapshot::kSchemaVersion);
  if (const JsonValue* nested = doc.find("metrics");
      nested != nullptr && nested->type == JsonValue::Type::Object) {
    root = nested;
    if (const JsonValue* nver = nested->find("schema_version");
        nver != nullptr && nver->type == JsonValue::Type::Number &&
        as_i64(*nver) != MetricsSnapshot::kSchemaVersion)
      throw SchemaMismatchError(static_cast<int>(as_i64(*nver)),
                                MetricsSnapshot::kSchemaVersion);
  }

  const JsonValue* counters = root->find("counters");
  const JsonValue* gauges = root->find("gauges");
  const JsonValue* histograms = root->find("histograms");
  const auto is_object = [](const JsonValue* v) {
    return v != nullptr && v->type == JsonValue::Type::Object;
  };
  if (!is_object(counters) && !is_object(gauges) && !is_object(histograms))
    throw ParseError(
        "document carries none of counters/gauges/histograms — not a metrics snapshot");

  MetricsSnapshot snap;
  if (is_object(counters)) {
    for (const auto& [name, v] : counters->object) {
      if (v.type != JsonValue::Type::Number) continue;
      snap.counters.push_back({name, as_i64(v)});
    }
  }
  if (is_object(gauges)) {
    for (const auto& [name, v] : gauges->object) {
      if (v.type != JsonValue::Type::Object) continue;
      snap.gauges.push_back({name, member_i64(v, "value", 0), member_i64(v, "max", 0)});
    }
  }
  if (is_object(histograms)) {
    for (const auto& [name, v] : histograms->object) {
      if (v.type != JsonValue::Type::Object) continue;
      MetricsSnapshot::HistogramRow row;
      row.name = name;
      row.bounds = member_i64_array(v, "bounds");
      row.counts = member_i64_array(v, "counts");
      row.count = member_i64(v, "count", 0);
      row.sum = member_i64(v, "sum", 0);
      row.min = member_i64(v, "min", 0);
      row.max = member_i64(v, "max", 0);
      if (const JsonValue* ex = v.find("exemplar");
          ex != nullptr && ex->type == JsonValue::Type::Object) {
        row.exemplar_bucket = member_i64(*ex, "bucket", -1);
        row.exemplar_span = static_cast<std::uint64_t>(member_i64(*ex, "span_id", 0));
      }
      snap.histograms.push_back(std::move(row));
    }
  }
  return snap;
}

}  // namespace wlc::obs
