// Process-wide metrics registry: monotonic counters, gauges and fixed-bucket
// histograms with thread-local sharding and an aggregate-on-read snapshot.
//
// Design goals, in order:
//
//  1. Lock-cheap hot path. Counter::add / Histogram::observe touch only a
//     per-(thread, instrument) cell of relaxed atomics; the registry mutex is
//     taken on structural events only (first touch of an instrument by a
//     thread, thread exit, snapshot). A thread pool hammering one counter
//     from eight workers never contends on a shared cache line.
//  2. Nothing is lost. Cells of exiting threads are folded into a per-
//     instrument retired accumulator under the registry mutex, so spans of
//     life shorter than the process (ThreadPool workers) still count.
//  3. Aggregate-on-read. Instruments carry no aggregation logic; snapshot()
//     walks live cells + retired totals under the mutex and returns a plain
//     value object that serializes to JSON or a human table.
//
// Instruments are identified by name and created on first use; handles are
// cheap copyable pointers, so the WLC_COUNTER_ADD family in obs.h can cache
// one per call site in a function-local static. The registry itself is a
// leaked singleton: worker threads may outlive main()'s locals and must be
// able to retire their cells at any point of shutdown.
//
// Gauges are *not* sharded: a gauge models one shared level (queue depth),
// where per-thread cells would be meaningless; value and high-watermark are
// single relaxed atomics.
//
// Compile-time removal: this header stays macro-free — the WLC_OBS_DISABLE
// switch lives in obs.h and only empties the instrumentation macros. The
// registry API keeps existing in a disabled build (snapshots are simply
// empty), so exporters need no conditional code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wlc::obs {

namespace detail {
struct CounterImpl;
struct GaugeImpl;
struct HistogramImpl;
struct RegistryImpl;
}  // namespace detail

/// Monotonic counter handle. add() is wait-free after the first touch per
/// thread (one relaxed fetch_add on a thread-private cell).
class Counter {
 public:
  void add(std::int64_t delta);
  void increment() { add(1); }
  /// Aggregate over live thread cells + retired threads. Takes the registry
  /// mutex; exact once all writer threads are joined.
  std::int64_t total() const;

 private:
  friend class Registry;
  explicit Counter(detail::CounterImpl* impl) : impl_(impl) {}
  detail::CounterImpl* impl_;
};

/// Shared-level gauge (queue depth, live workers): one value, one
/// high-watermark, both plain relaxed atomics.
class Gauge {
 public:
  void add(std::int64_t delta);
  void set(std::int64_t value);
  std::int64_t value() const;
  std::int64_t max() const;

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeImpl* impl) : impl_(impl) {}
  detail::GaugeImpl* impl_;
};

/// Fixed-bucket histogram of integer samples (typically microseconds).
/// Bucket i counts samples <= bounds[i]; one overflow bucket past the last
/// bound. Sharded like Counter.
class Histogram {
 public:
  void observe(std::int64_t value);

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramImpl* impl) : impl_(impl) {}
  detail::HistogramImpl* impl_;
};

/// Point-in-time aggregate of every registered instrument, name-sorted.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<std::int64_t> bounds;  ///< ascending upper bounds
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (last = overflow)
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;  ///< 0 when count == 0
    std::int64_t max = 0;  ///< 0 when count == 0
    /// Exemplar: the slowest bucket any sample has landed in so far, and the
    /// trace span id (obs::current_span_id) active at the last such sample.
    /// Links a latency outlier straight to its Chrome-trace span. -1 / 0
    /// when no sample (or no span) has been seen.
    std::int64_t exemplar_bucket = -1;
    std::uint64_t exemplar_span = 0;

    /// Interpolated quantile estimate, q in [0, 1]. Finds the bucket where
    /// the cumulative count crosses q*count and interpolates linearly inside
    /// it; the first bucket's lower edge is 0, the overflow bucket's upper
    /// edge is the observed max. The result is clamped to [min, max], so
    /// quantile(0) == min and quantile(1) == max exactly. Returns 0 when the
    /// histogram is empty.
    double quantile(double q) const;
  };

  /// Version of the JSON document layout; bumped on incompatible changes so
  /// decoders (report/stats) can reject rather than misread.
  static constexpr int kSchemaVersion = 1;

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// One JSON object: {"schema_version": N, "counters": {...}, "gauges":
  /// {...}, "histograms": {...}} — stable key order (name-sorted),
  /// parseable by json.tool.
  std::string to_json() const;

  /// Human-readable aligned table (what `wlc_analyze report` prints).
  void print(std::ostream& os) const;
};

/// Name → instrument directory. Instruments are created on first lookup and
/// live for the process; handles stay valid forever.
class Registry {
 public:
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be ascending; it is fixed by the first registration of
  /// `name` (later lookups ignore the argument).
  Histogram histogram(std::string_view name, std::span<const std::int64_t> bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (cells, retired totals, gauges). Test-only:
  /// callers must ensure no instrumentation runs concurrently.
  void reset_for_testing();

 private:
  friend Registry& registry();
  Registry();
  detail::RegistryImpl* impl_;  // leaked: worker threads retire cells at exit
};

/// The process-wide registry.
Registry& registry();

/// Default bucket bounds for latency histograms, in microseconds
/// (1us .. 1s, roughly logarithmic). Shared by WLC_HISTOGRAM_OBSERVE.
std::span<const std::int64_t> default_latency_bounds_us();

}  // namespace wlc::obs
