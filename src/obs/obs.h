// wlc::obs — umbrella header and instrumentation macros.
//
// Call sites use the macros, never the registry directly:
//
//   WLC_COUNTER_ADD("extract.windows_scanned", n - k + 1);
//   WLC_GAUGE_ADD("pool.queue_depth", 1);
//   WLC_HISTOGRAM_OBSERVE("pool.task_wait_us", wait_us);
//   WLC_TRACE_SPAN("extract.upper");            // RAII: spans the block
//
// Each macro caches its instrument handle in a function-local static, so
// the name lookup (registry mutex) happens once per call site and the hot
// path is a single sharded atomic op. WLC_TRACE_SPAN records only while
// obs::set_tracing_enabled(true) — one relaxed load otherwise.
//
// Metric naming scheme: "<layer>.<quantity>[_<unit>]", e.g.
// "pool.task_wait_us", "trace.rows_dropped.malformed", "sched.preemptions".
// Units are suffixed (_us); dotted suffixes subdivide a quantity by kind.
//
// Compiling out. Defining WLC_OBS_DISABLE (the WLC_OBS_DISABLE=ON CMake
// option does it globally) empties every macro: no statics, no atomics, no
// clock reads — the binary is bit-identical in behavior to never having
// been instrumented, which tests pin by comparing CLI output byte for byte.
// The obs library API (registry(), snapshot(), write_chrome_trace()) still
// exists in a disabled build — snapshots and traces are simply empty — so
// exporters like the CLI need no conditional code.
#pragma once

#include "obs/metrics.h"
#include "obs/span.h"

#define WLC_OBS_CONCAT_(a, b) a##b
#define WLC_OBS_CONCAT(a, b) WLC_OBS_CONCAT_(a, b)

#ifndef WLC_OBS_DISABLE

#define WLC_COUNTER_ADD(name, delta)                                             \
  do {                                                                           \
    static ::wlc::obs::Counter wlc_obs_c = ::wlc::obs::registry().counter(name); \
    wlc_obs_c.add(delta);                                                        \
  } while (0)

#define WLC_GAUGE_ADD(name, delta)                                           \
  do {                                                                       \
    static ::wlc::obs::Gauge wlc_obs_g = ::wlc::obs::registry().gauge(name); \
    wlc_obs_g.add(delta);                                                    \
  } while (0)

#define WLC_GAUGE_SET(name, value)                                           \
  do {                                                                       \
    static ::wlc::obs::Gauge wlc_obs_g = ::wlc::obs::registry().gauge(name); \
    wlc_obs_g.set(value);                                                    \
  } while (0)

/// Observes into a histogram with the default latency buckets (µs scale).
#define WLC_HISTOGRAM_OBSERVE(name, value)                             \
  do {                                                                 \
    static ::wlc::obs::Histogram wlc_obs_h = ::wlc::obs::registry().histogram( \
        name, ::wlc::obs::default_latency_bounds_us());                \
    wlc_obs_h.observe(value);                                          \
  } while (0)

/// RAII span over the rest of the enclosing block. `name` must be a string
/// literal (the tracer stores the pointer).
#define WLC_TRACE_SPAN(name) \
  ::wlc::obs::ScopedSpan WLC_OBS_CONCAT(wlc_obs_span_, __LINE__)(name)

#else  // WLC_OBS_DISABLE: every macro vanishes.

#define WLC_COUNTER_ADD(name, delta) \
  do {                               \
  } while (0)
#define WLC_GAUGE_ADD(name, delta) \
  do {                             \
  } while (0)
#define WLC_GAUGE_SET(name, value) \
  do {                             \
  } while (0)
#define WLC_HISTOGRAM_OBSERVE(name, value) \
  do {                                     \
  } while (0)
#define WLC_TRACE_SPAN(name) \
  do {                       \
  } while (0)

#endif  // WLC_OBS_DISABLE
