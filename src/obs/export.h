// Exporters and importers for MetricsSnapshot.
//
// to_prometheus() renders the classic Prometheus text exposition format
// (version 0.0.4): dotted metric names become underscore-separated with a
// "wlc_" prefix, counters gain the conventional "_total" suffix, gauges
// export value and high-watermark, and histograms export cumulative
// le-buckets plus _sum/_count — exactly what a scrape sidecar or pushgateway
// expects, so `wlc_analyze stats --format prom` is directly scrapeable.
//
// decode_metrics_json() is the inverse of MetricsSnapshot::to_json(), with
// two deliberate liberties:
//
//   - Tolerant field handling: unknown keys are skipped (a newer daemon may
//     add fields; an older reader must not choke on them), and optional
//     fields (p50/p99, exemplar) may be absent.
//   - Envelope detection: both the plain snapshot document written by
//     --metrics-out and the live-daemon stats document (which nests the
//     snapshot under a top-level "metrics" key) are accepted.
//
// Failure modes are distinguishable on purpose: malformed JSON throws
// wlc::ParseError, while a well-formed document declaring an incompatible
// "schema_version" throws SchemaMismatchError — the CLI maps the latter to
// exit 2 with a message naming both versions instead of a generic parse
// failure.
#pragma once

#include <string>
#include <string_view>

#include "common/error.h"
#include "obs/metrics.h"

namespace wlc::obs {

/// A well-formed metrics document whose schema_version this build cannot
/// read. found == 0 means the field was missing entirely (pre-versioning
/// producer).
class SchemaMismatchError : public std::runtime_error, public Error {
 public:
  SchemaMismatchError(int found, int expected, const char* file = "", int line = 0)
      : std::runtime_error(format_what("SchemaMismatchError", describe(found, expected), "",
                                       file, line)),
        Error(describe(found, expected), "", file, line),
        found_(found),
        expected_(expected) {}

  const char* kind() const noexcept override { return "SchemaMismatchError"; }
  int found() const noexcept { return found_; }
  int expected() const noexcept { return expected_; }

 private:
  static std::string describe(int found, int expected);

  int found_;
  int expected_;
};

/// Prometheus text exposition (0.0.4) of a snapshot. Every sample line is
/// prefixed "wlc_" and dots in instrument names become underscores.
std::string to_prometheus(const MetricsSnapshot& snap);

/// Parses a snapshot back out of its JSON form (either the plain
/// --metrics-out document or a stats document carrying the snapshot under
/// "metrics"). Throws wlc::ParseError on malformed JSON or a non-snapshot
/// document, SchemaMismatchError on an incompatible schema_version.
MetricsSnapshot decode_metrics_json(std::string_view json);

}  // namespace wlc::obs
