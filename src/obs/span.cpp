#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace wlc::obs {

namespace {

constexpr std::size_t kRingCapacity = 16384;  ///< spans per thread

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_next_span_id{1};
thread_local std::uint64_t t_current_span_id = 0;

std::int64_t now_ns() {
  // Epoch fixed at the first clock use so all timestamps are small positive
  // offsets on one axis (magic-static init is thread-safe).
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch)
      .count();
}

struct SpanEvent {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;
  std::uint64_t id;
};

/// One thread's span ring. `mu` is per-ring and virtually uncontended: only
/// the owner records; the serializer takes it briefly during export.
struct Ring {
  explicit Ring(std::uint32_t tid) : tid(tid) {}

  void record(SpanEvent e) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < kRingCapacity) {
      events.push_back(e);
    } else {
      events[next] = e;
      next = (next + 1) % kRingCapacity;
      ++dropped;
    }
  }

  /// Events in recording order (oldest surviving first).
  std::vector<SpanEvent> ordered() const {
    std::vector<SpanEvent> out;
    out.reserve(events.size());
    out.insert(out.end(), events.begin() + static_cast<std::ptrdiff_t>(next), events.end());
    out.insert(out.end(), events.begin(), events.begin() + static_cast<std::ptrdiff_t>(next));
    return out;
  }

  std::uint32_t tid;
  mutable std::mutex mu;
  std::vector<SpanEvent> events;
  std::size_t next = 0;  ///< overwrite position once the ring is full
  std::uint64_t dropped = 0;
};

struct TracerState {
  std::mutex mu;
  std::vector<Ring*> live;  ///< owned by the RingHolder thread_locals
  std::vector<std::pair<std::uint32_t, std::vector<SpanEvent>>> retired;
  std::uint32_t next_tid = 1;
  std::uint64_t dropped_retired = 0;
};

TracerState& tracer() {
  // Leaked for the same reason as the metrics registry: worker threads may
  // retire their rings after main()'s statics are gone.
  static TracerState* g = new TracerState;
  return *g;
}

/// Moves the thread's ring into the retired list at thread exit so its
/// spans survive the thread (e.g. ThreadPool workers joined before export).
struct RingHolder {
  Ring* ring = nullptr;

  ~RingHolder() {
    if (ring == nullptr) return;
    TracerState& t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      if (!ring->events.empty()) t.retired.emplace_back(ring->tid, ring->ordered());
      t.dropped_retired += ring->dropped;
    }
    t.live.erase(std::remove(t.live.begin(), t.live.end(), ring), t.live.end());
    delete ring;
  }
};

Ring& this_ring() {
  thread_local RingHolder holder;
  if (holder.ring == nullptr) {
    TracerState& t = tracer();
    std::lock_guard<std::mutex> lock(t.mu);
    holder.ring = new Ring(t.next_tid++);
    t.live.push_back(holder.ring);
  }
  return *holder.ring;
}

/// Nanosecond count as a microsecond decimal ("12.345") — Chrome trace
/// timestamps are microseconds, fractions allowed.
void write_us(std::ostream& os, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

void write_event(std::ostream& os, bool& first, std::uint32_t tid, const SpanEvent& e) {
  os << (first ? "\n" : ",\n");
  first = false;
  os << " {\"name\":\"" << e.name << "\",\"cat\":\"wlc\",\"ph\":\"X\",\"ts\":";
  write_us(os, e.ts_ns);
  os << ",\"dur\":";
  write_us(os, e.dur_ns);
  os << ",\"pid\":1,\"tid\":" << tid << ",\"args\":{\"span_id\":" << e.id << "}}";
}

void write_thread_meta(std::ostream& os, bool& first, std::uint32_t tid) {
  os << (first ? "\n" : ",\n");
  first = false;
  os << " {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
     << ",\"args\":{\"name\":\"wlc-thread-" << tid << "\"}}";
}

}  // namespace

void set_tracing_enabled(bool on) { g_tracing.store(on, std::memory_order_relaxed); }
bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

std::int64_t now_us() { return now_ns() / 1000; }

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      begin_ns_(0),
      id_(0),
      prev_id_(0),
      active_(g_tracing.load(std::memory_order_relaxed)) {
  if (active_) {
    begin_ns_ = now_ns();
    id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    prev_id_ = t_current_span_id;
    t_current_span_id = id_;
  }
}

ScopedSpan::~ScopedSpan() {
  if (active_) {
    t_current_span_id = prev_id_;
    this_ring().record({name_, begin_ns_, now_ns() - begin_ns_, id_});
  }
}

std::uint64_t current_span_id() { return t_current_span_id; }

void write_chrome_trace(std::ostream& os) {
  TracerState& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  os << "[";
  bool first = true;
  for (const auto& [tid, events] : t.retired) {
    write_thread_meta(os, first, tid);
    for (const SpanEvent& e : events) write_event(os, first, tid, e);
  }
  for (const Ring* ring : t.live) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->events.empty()) continue;
    write_thread_meta(os, first, ring->tid);
    for (const SpanEvent& e : ring->ordered()) write_event(os, first, ring->tid, e);
  }
  os << (first ? "]" : "\n]") << "\n";
}

std::uint64_t dropped_span_count() {
  TracerState& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  std::uint64_t n = t.dropped_retired;
  for (const Ring* ring : t.live) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    n += ring->dropped;
  }
  return n;
}

void clear_trace_for_testing() {
  TracerState& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  t.retired.clear();
  t.dropped_retired = 0;
  for (Ring* ring : t.live) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

}  // namespace wlc::obs
