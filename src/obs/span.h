// Scoped-span tracer: WLC_TRACE_SPAN("extract.upper") records a named
// begin/end interval on the current thread; write_chrome_trace() serializes
// everything recorded so far as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Recording model. Each thread owns a fixed-capacity ring buffer of
// completed spans (name, begin, duration); a full ring overwrites its oldest
// entries (the drop count is preserved), so tracing can stay on for long
// runs with bounded memory. Rings of exiting threads — ThreadPool workers
// in particular — are moved to a retired list, so their spans survive the
// pool's destruction and still appear in the serialized trace.
//
// Tracing is off by default: a disabled ScopedSpan is one relaxed atomic
// load (no clock read, no allocation). The CLI flips it on when --trace-out
// is requested, before the pipeline runs.
//
// Span names must be string literals (or otherwise outlive serialization):
// the ring stores the pointer, not a copy — that keeps recording
// allocation-free.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace wlc::obs {

/// Globally enables/disables span recording (off by default).
void set_tracing_enabled(bool on);
bool tracing_enabled();

/// Microseconds since the process trace epoch (first clock use), from the
/// steady clock. Shared by the tracer and the latency instrumentation so
/// all observability timestamps are on one axis.
std::int64_t now_us();

/// Id of the innermost span active on the current thread, 0 if none (or
/// tracing is off). Span ids are process-unique and appear in the Chrome
/// trace as args.span_id, so a histogram exemplar carrying this id points
/// straight at its span in the trace file.
std::uint64_t current_span_id();

/// RAII span: records [construction, destruction) on the current thread
/// when tracing is enabled. Use through WLC_TRACE_SPAN (obs.h) so the whole
/// statement compiles out under WLC_OBS_DISABLE. Each active span draws a
/// process-unique id and installs itself as current_span_id() for its
/// extent (restoring the enclosing span's id on destruction).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t begin_ns_;
  std::uint64_t id_;
  std::uint64_t prev_id_;
  bool active_;
};

/// Serializes every recorded span (live threads + retired rings) as a JSON
/// array of Chrome trace-event objects ("ph":"X" complete events, with
/// per-thread "thread_name" metadata). Valid JSON; loads in Perfetto.
void write_chrome_trace(std::ostream& os);

/// Spans lost to ring overflow so far (diagnostic; also useful in tests).
std::uint64_t dropped_span_count();

/// Discards every recorded span and resets the drop count. Test-only:
/// callers must ensure no spans are being recorded concurrently.
void clear_trace_for_testing();

}  // namespace wlc::obs
