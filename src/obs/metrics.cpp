#include "obs/metrics.h"

#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace wlc::obs {

namespace {

constexpr std::int64_t kMinInit = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMaxInit = std::numeric_limits<std::int64_t>::min();

/// CAS-maximum on a relaxed atomic.
void bump_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void bump_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace detail {

struct ThreadState;

/// One thread's private cell of a counter. Owner writes relaxed; snapshot
/// reads relaxed under the registry mutex (structure cannot change under it).
struct CounterCell {
  std::atomic<std::int64_t> value{0};
};

struct CounterImpl {
  std::string name;
  std::size_t id = 0;
  // Guarded by the registry mutex (structure); cell values are atomic.
  std::vector<std::pair<ThreadState*, std::unique_ptr<CounterCell>>> cells;
  std::int64_t retired = 0;  ///< folded cells of exited threads
};

struct GaugeImpl {
  std::string name;
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> max{0};
};

/// One thread's private shard of a histogram.
struct HistCell {
  explicit HistCell(std::size_t n_buckets) : buckets(n_buckets) {}
  std::vector<std::atomic<std::int64_t>> buckets;  // fixed size: bounds + overflow
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{kMinInit};
  std::atomic<std::int64_t> max{kMaxInit};
};

struct HistogramImpl {
  std::string name;
  std::size_t id = 0;
  std::vector<std::int64_t> bounds;
  // Exemplar slot: the slowest bucket observed so far and the span id active
  // at the last sample that landed there. Process-wide (not sharded): an
  // exemplar is a pointer to one interesting event, not an aggregate, so a
  // benign last-writer-wins race between threads is acceptable.
  std::atomic<std::int64_t> exemplar_bucket{-1};
  std::atomic<std::uint64_t> exemplar_span{0};
  std::vector<std::pair<ThreadState*, std::unique_ptr<HistCell>>> cells;
  // Folded shards of exited threads:
  std::vector<std::int64_t> retired_buckets;
  std::int64_t retired_count = 0;
  std::int64_t retired_sum = 0;
  std::int64_t retired_min = kMinInit;
  std::int64_t retired_max = kMaxInit;
};

struct RegistryImpl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<CounterImpl>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<GaugeImpl>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<HistogramImpl>, std::less<>> histograms;
  std::size_t next_counter_id = 0;
  std::size_t next_histogram_id = 0;
};

RegistryImpl& impl() {
  // Deliberately leaked: detached/worker threads retire their cells from
  // thread_local destructors, which may run after main()'s statics died.
  static RegistryImpl* g = new RegistryImpl;
  return *g;
}

/// Per-thread directory of this thread's cells, indexed by instrument id.
/// Only the owner thread reads/writes the vectors; the cells they point to
/// are also registered with the instrument for snapshotting.
struct ThreadState {
  std::vector<std::atomic<std::int64_t>*> counter_cells;
  std::vector<HistCell*> hist_cells;
  std::vector<CounterImpl*> attached_counters;
  std::vector<HistogramImpl*> attached_histograms;

  ~ThreadState() {
    RegistryImpl& reg = impl();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (CounterImpl* c : attached_counters) {
      auto it = std::find_if(c->cells.begin(), c->cells.end(),
                             [this](const auto& p) { return p.first == this; });
      if (it == c->cells.end()) continue;
      c->retired += it->second->value.load(std::memory_order_relaxed);
      c->cells.erase(it);
    }
    for (HistogramImpl* h : attached_histograms) {
      auto it = std::find_if(h->cells.begin(), h->cells.end(),
                             [this](const auto& p) { return p.first == this; });
      if (it == h->cells.end()) continue;
      const HistCell& cell = *it->second;
      if (h->retired_buckets.empty()) h->retired_buckets.assign(cell.buckets.size(), 0);
      for (std::size_t i = 0; i < cell.buckets.size(); ++i)
        h->retired_buckets[i] += cell.buckets[i].load(std::memory_order_relaxed);
      h->retired_count += cell.count.load(std::memory_order_relaxed);
      h->retired_sum += cell.sum.load(std::memory_order_relaxed);
      h->retired_min = std::min(h->retired_min, cell.min.load(std::memory_order_relaxed));
      h->retired_max = std::max(h->retired_max, cell.max.load(std::memory_order_relaxed));
      h->cells.erase(it);
    }
  }
};

ThreadState& tstate() {
  thread_local ThreadState state;
  return state;
}

}  // namespace detail

using detail::CounterCell;
using detail::HistCell;
using detail::ThreadState;

void Counter::add(std::int64_t delta) {
  ThreadState& ts = detail::tstate();
  if (ts.counter_cells.size() <= impl_->id || ts.counter_cells[impl_->id] == nullptr) {
    // Slow path: first touch of this counter by this thread.
    detail::RegistryImpl& reg = detail::impl();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (ts.counter_cells.size() <= impl_->id) ts.counter_cells.resize(impl_->id + 1, nullptr);
    auto cell = std::make_unique<CounterCell>();
    ts.counter_cells[impl_->id] = &cell->value;
    ts.attached_counters.push_back(impl_);
    impl_->cells.emplace_back(&ts, std::move(cell));
  }
  ts.counter_cells[impl_->id]->fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Counter::total() const {
  detail::RegistryImpl& reg = detail::impl();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::int64_t sum = impl_->retired;
  for (const auto& [owner, cell] : impl_->cells)
    sum += cell->value.load(std::memory_order_relaxed);
  return sum;
}

void Gauge::add(std::int64_t delta) {
  const std::int64_t now = impl_->value.fetch_add(delta, std::memory_order_relaxed) + delta;
  bump_max(impl_->max, now);
}

void Gauge::set(std::int64_t value) {
  impl_->value.store(value, std::memory_order_relaxed);
  bump_max(impl_->max, value);
}

std::int64_t Gauge::value() const { return impl_->value.load(std::memory_order_relaxed); }
std::int64_t Gauge::max() const { return impl_->max.load(std::memory_order_relaxed); }

void Histogram::observe(std::int64_t value) {
  ThreadState& ts = detail::tstate();
  if (ts.hist_cells.size() <= impl_->id || ts.hist_cells[impl_->id] == nullptr) {
    detail::RegistryImpl& reg = detail::impl();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (ts.hist_cells.size() <= impl_->id) ts.hist_cells.resize(impl_->id + 1, nullptr);
    auto cell = std::make_unique<HistCell>(impl_->bounds.size() + 1);
    ts.hist_cells[impl_->id] = cell.get();
    ts.attached_histograms.push_back(impl_);
    impl_->cells.emplace_back(&ts, std::move(cell));
  }
  HistCell& cell = *ts.hist_cells[impl_->id];
  const auto it = std::lower_bound(impl_->bounds.begin(), impl_->bounds.end(), value);
  const auto bucket = static_cast<std::size_t>(it - impl_->bounds.begin());
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  bump_min(cell.min, value);
  bump_max(cell.max, value);
  // Exemplar: keep the span id of the last sample in the slowest bucket seen
  // so far. >= (not >) so repeated samples in the top bucket refresh the id.
  const auto b = static_cast<std::int64_t>(bucket);
  if (b >= impl_->exemplar_bucket.load(std::memory_order_relaxed)) {
    impl_->exemplar_bucket.store(b, std::memory_order_relaxed);
    impl_->exemplar_span.store(current_span_id(), std::memory_order_relaxed);
  }
}

Registry::Registry() : impl_(&detail::impl()) {}

Registry& registry() {
  static Registry* g = new Registry;
  return *g;
}

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    auto c = std::make_unique<detail::CounterImpl>();
    c->name = std::string(name);
    c->id = impl_->next_counter_id++;
    it = impl_->counters.emplace(c->name, std::move(c)).first;
  }
  return Counter(it->second.get());
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    auto g = std::make_unique<detail::GaugeImpl>();
    g->name = std::string(name);
    it = impl_->gauges.emplace(g->name, std::move(g)).first;
  }
  return Gauge(it->second.get());
}

Histogram Registry::histogram(std::string_view name, std::span<const std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    auto h = std::make_unique<detail::HistogramImpl>();
    h->name = std::string(name);
    h->id = impl_->next_histogram_id++;
    h->bounds.assign(bounds.begin(), bounds.end());
    it = impl_->histograms.emplace(h->name, std::move(h)).first;
  }
  return Histogram(it->second.get());
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [name, c] : impl_->counters) {
    std::int64_t sum = c->retired;
    for (const auto& [owner, cell] : c->cells) sum += cell->value.load(std::memory_order_relaxed);
    snap.counters.push_back({name, sum});
  }
  for (const auto& [name, g] : impl_->gauges)
    snap.gauges.push_back({name, g->value.load(std::memory_order_relaxed),
                           g->max.load(std::memory_order_relaxed)});
  for (const auto& [name, h] : impl_->histograms) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = h->bounds;
    row.counts.assign(h->bounds.size() + 1, 0);
    if (!h->retired_buckets.empty())
      for (std::size_t i = 0; i < row.counts.size(); ++i) row.counts[i] = h->retired_buckets[i];
    std::int64_t mn = h->retired_min;
    std::int64_t mx = h->retired_max;
    row.count = h->retired_count;
    row.sum = h->retired_sum;
    for (const auto& [owner, cell] : h->cells) {
      for (std::size_t i = 0; i < row.counts.size(); ++i)
        row.counts[i] += cell->buckets[i].load(std::memory_order_relaxed);
      row.count += cell->count.load(std::memory_order_relaxed);
      row.sum += cell->sum.load(std::memory_order_relaxed);
      mn = std::min(mn, cell->min.load(std::memory_order_relaxed));
      mx = std::max(mx, cell->max.load(std::memory_order_relaxed));
    }
    row.min = row.count > 0 ? mn : 0;
    row.max = row.count > 0 ? mx : 0;
    row.exemplar_bucket = h->exemplar_bucket.load(std::memory_order_relaxed);
    row.exemplar_span = h->exemplar_span.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void Registry::reset_for_testing() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) {
    c->retired = 0;
    for (auto& [owner, cell] : c->cells) cell->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : impl_->gauges) {
    g->value.store(0, std::memory_order_relaxed);
    g->max.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : impl_->histograms) {
    h->retired_buckets.clear();
    h->retired_count = h->retired_sum = 0;
    h->retired_min = kMinInit;
    h->retired_max = kMaxInit;
    h->exemplar_bucket.store(-1, std::memory_order_relaxed);
    h->exemplar_span.store(0, std::memory_order_relaxed);
    for (auto& [owner, cell] : h->cells) {
      for (auto& b : cell->buckets) b.store(0, std::memory_order_relaxed);
      cell->count.store(0, std::memory_order_relaxed);
      cell->sum.store(0, std::memory_order_relaxed);
      cell->min.store(kMinInit, std::memory_order_relaxed);
      cell->max.store(kMaxInit, std::memory_order_relaxed);
    }
  }
}

std::span<const std::int64_t> default_latency_bounds_us() {
  static const std::int64_t bounds[] = {1,    2,    5,     10,    25,    50,     100,
                                        250,  500,  1000,  2500,  5000,  10000,  25000,
                                        50000, 100000, 250000, 1000000};
  return bounds;
}

namespace {

/// Minimal JSON string escaper; metric names are code-controlled but quote
/// and control characters must still never break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void json_int_array(std::ostringstream& os, const std::vector<std::int64_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << ']';
}

/// Shortest round-trippable decimal for a double ("%.17g" is exact but ugly;
/// quantiles are estimates, so 10 significant digits is plenty and stable).
std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

double MetricsSnapshot::HistogramRow::quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the target sample along the sorted-sample axis.
  const double target = q * static_cast<double>(count);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int64_t c = counts[i];
    if (c == 0) continue;
    const std::int64_t prev = cum;
    cum += c;
    if (static_cast<double>(cum) < target) continue;
    // The rank lands in bucket i. Bucket i spans (bounds[i-1], bounds[i]];
    // the first bucket starts at 0 and the overflow bucket ends at the
    // observed max — interpolate linearly inside that span.
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double upper = i < bounds.size() ? static_cast<double>(bounds[i])
                                           : static_cast<double>(max);
    const double frac = static_cast<double>(target - static_cast<double>(prev)) /
                        static_cast<double>(c);
    const double est = lower + (upper - lower) * frac;
    // Clamp with the exact observed extrema so quantile(0) == min and
    // quantile(1) == max regardless of bucket edges.
    return std::clamp(est, static_cast<double>(min), static_cast<double>(max));
  }
  return static_cast<double>(max);
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema_version\": " << kSchemaVersion << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i)
    os << (i ? "," : "") << "\n    \"" << json_escape(counters[i].name)
       << "\": " << counters[i].value;
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i)
    os << (i ? "," : "") << "\n    \"" << json_escape(gauges[i].name) << "\": {\"value\": "
       << gauges[i].value << ", \"max\": " << gauges[i].max << "}";
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramRow& h = histograms[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(h.name) << "\": {\"bounds\": ";
    json_int_array(os, h.bounds);
    os << ", \"counts\": ";
    json_int_array(os, h.counts);
    os << ", \"count\": " << h.count << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max;
    if (h.count > 0)
      os << ", \"p50\": " << json_double(h.quantile(0.50)) << ", \"p90\": "
         << json_double(h.quantile(0.90)) << ", \"p99\": " << json_double(h.quantile(0.99));
    if (h.exemplar_bucket >= 0)
      os << ", \"exemplar\": {\"bucket\": " << h.exemplar_bucket << ", \"span_id\": "
         << h.exemplar_span << "}";
    os << "}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void MetricsSnapshot::print(std::ostream& os) const {
  std::size_t width = 0;
  for (const auto& r : counters) width = std::max(width, r.name.size());
  for (const auto& r : gauges) width = std::max(width, r.name.size());
  for (const auto& r : histograms) width = std::max(width, r.name.size());
  const auto pad = [&](const std::string& name) {
    return name + std::string(width + 2 - name.size(), ' ');
  };
  os << "counters:\n";
  for (const auto& r : counters) os << "  " << pad(r.name) << r.value << "\n";
  os << "gauges:\n";
  for (const auto& r : gauges)
    os << "  " << pad(r.name) << r.value << " (max " << r.max << ")\n";
  os << "histograms:\n";
  for (const auto& r : histograms) {
    os << "  " << pad(r.name) << "count " << r.count << ", sum " << r.sum;
    if (r.count > 0)
      os << ", mean " << (r.sum / r.count) << ", min " << r.min << ", p50 "
         << json_double(r.quantile(0.50)) << ", p90 " << json_double(r.quantile(0.90))
         << ", p99 " << json_double(r.quantile(0.99)) << ", max " << r.max;
    os << "\n";
  }
}

}  // namespace wlc::obs
