// Trace containers shared by the extractors, the simulators and the MPEG-2
// workload model.
//
// A trace records what the paper's SystemC/SimpleScalar simulator would have
// produced: for each task activation (event) its arrival/emission time, an
// event-type id and the execution demand it imposed on the processor.
#pragma once

#include <vector>

#include "common/types.h"

namespace wlc::trace {

/// One task activation.
struct EventRecord {
  TimeSec time = 0.0;  ///< arrival time at the observed component (seconds)
  int type = 0;        ///< event-type id (meaning defined by the producer)
  Cycles demand = 0;   ///< processor cycles this activation requires
};

using EventTrace = std::vector<EventRecord>;

/// Per-activation execution demands, order preserved, timing dropped.
using DemandTrace = std::vector<Cycles>;

/// Arrival instants, non-decreasing.
using TimestampTrace = std::vector<TimeSec>;

/// Projections.
DemandTrace demands_of(const EventTrace& t);
TimestampTrace timestamps_of(const EventTrace& t);

/// True if timestamps are non-decreasing.
bool is_time_ordered(const EventTrace& t);

}  // namespace wlc::trace
