// CSV persistence for traces and curve breakpoints, so experiments can dump
// their inputs/outputs for external plotting and so tests can use golden
// files.
//
// Ingestion is hardened against untrusted input: every field must parse
// completely (no trailing garbage), values must be finite, demands
// non-negative and timestamps non-decreasing. CRLF line endings are
// accepted. Two policies govern what happens on a bad row:
//
//   ParsePolicy::Strict  — throw wlc::ParseError (or wlc::OverflowError for
//                          out-of-range numerics) carrying the input line
//                          and column of the first fault. Default, and the
//                          behavior of the legacy single-argument overload.
//   ParsePolicy::Lenient — drop the offending row, tally it in a
//                          ParseReport, and continue. The surviving trace is
//                          guaranteed well-formed (finite, non-negative
//                          demands, time-ordered), so curves extracted from
//                          it are sound bounds *for the surviving rows*;
//                          the report says how much was discarded and why,
//                          so the caller can decide whether that partial
//                          certificate is acceptable.
//
// A malformed *header* throws in both modes: when the very first line is
// wrong the stream cannot be trusted to be a trace file at all.
//
// Position context: every ParseError/OverflowError names the 1-based input
// line (and column where it applies) of the fault, prefixed with the input
// file name when the caller supplies one via ReadOptions::source_name — so
// "bad demand field" diagnostics point at `trace.csv:7`, not just "a row".
//
// Run policy: ReadOptions::policy makes ingestion interruptible and
// boundable — the parse loop polls the cancel token/deadline every few
// hundred rows, and Budget::max_trace_rows caps the rows kept:
// OnBudget::Fail throws wlc::BudgetExceededError at the first row past the
// budget; OnBudget::Degrade keeps the first max_trace_rows rows, counts
// (but does not parse) the rest, and records the kept/seen split in the
// DegradationReport — curves extracted from the surviving prefix certify
// that prefix only, exactly like lenient ingestion's partial certificate.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "trace/arrival_curve.h"
#include "trace/traces.h"

namespace wlc::trace {

/// Writes "time,type,demand" rows (with header).
void write_event_trace_csv(std::ostream& os, const EventTrace& t);

enum class ParsePolicy { Strict, Lenient };

/// Tally of what lenient ingestion dropped, by fault class.
struct ParseReport {
  std::size_t rows_total = 0;       ///< non-empty data rows seen
  std::size_t rows_kept = 0;
  std::size_t malformed = 0;        ///< wrong field count / unparsable / trailing garbage
  std::size_t non_finite = 0;       ///< NaN or ±Inf in a numeric field
  std::size_t negative_demand = 0;
  std::size_t out_of_order = 0;     ///< timestamp earlier than the last kept row's
  std::size_t overflow = 0;         ///< numeric field out of the target type's range
  std::vector<std::string> samples; ///< first few human-readable diagnostics

  std::size_t rows_dropped() const { return rows_total - rows_kept; }
  bool clean() const { return rows_dropped() == 0; }
  std::string to_string() const;
};

/// Optional ingestion controls; default-constructed = the historical
/// behavior (anonymous stream, unbounded, uninterruptible).
struct ReadOptions {
  /// Input name used to prefix fault positions ("trace.csv:7"). Empty =
  /// unnamed stream, positions stay "input line 7".
  std::string source_name;
  /// Cancellation/deadline/row-budget policy; null = unbounded.
  const runtime::RunPolicy* policy = nullptr;
  /// Receives the kept/seen row split when the row budget sheds rows under
  /// OnBudget::Degrade. May be null (shedding still happens, unrecorded).
  runtime::DegradationReport* degradation = nullptr;
};

/// Parses the format written by write_event_trace_csv under `policy`. If
/// `report` is non-null it is filled in either mode (strict fills it up to
/// the first fault before throwing).
EventTrace read_event_trace_csv(std::istream& is, ParsePolicy policy,
                                ParseReport* report = nullptr);

/// Full-control overload: named source, cancellation and row budgets.
EventTrace read_event_trace_csv(std::istream& is, ParsePolicy policy, ParseReport* report,
                                const ReadOptions& options);

/// Legacy overload: strict parsing. Throws wlc::ParseError (a
/// std::invalid_argument) on malformed input.
EventTrace read_event_trace_csv(std::istream& is);

/// Writes "delta,events" breakpoint rows (with header).
void write_arrival_curve_csv(std::ostream& os, const EmpiricalArrivalCurve& c);

}  // namespace wlc::trace
