// CSV persistence for traces and curve breakpoints, so experiments can dump
// their inputs/outputs for external plotting and so tests can use golden
// files.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/arrival_curve.h"
#include "trace/traces.h"

namespace wlc::trace {

/// Writes "time,type,demand" rows (with header).
void write_event_trace_csv(std::ostream& os, const EventTrace& t);
/// Parses the format written by write_event_trace_csv. Throws
/// std::invalid_argument on malformed input.
EventTrace read_event_trace_csv(std::istream& is);

/// Writes "delta,events" breakpoint rows (with header).
void write_arrival_curve_csv(std::ostream& os, const EmpiricalArrivalCurve& c);

}  // namespace wlc::trace
