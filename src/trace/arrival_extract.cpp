#include "trace/arrival_extract.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::trace {

namespace {

void require_ordered(const TimestampTrace& ts) {
  WLC_REQUIRE(!ts.empty(), "trace must be non-empty");
  WLC_REQUIRE(std::is_sorted(ts.begin(), ts.end()), "timestamps must be non-decreasing");
}

/// Sorted, deduplicated copy of `ks` clamped to [1, limit].
std::vector<std::int64_t> normalized_grid(std::span<const std::int64_t> ks, std::int64_t limit) {
  std::vector<std::int64_t> out;
  out.reserve(ks.size());
  for (std::int64_t k : ks) {
    WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
    out.push_back(std::min(k, limit));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// One k's span extremum, scanned in ascending window order — the retained
/// oracle kernel. Serial and parallel oracle paths share this exact loop,
/// and the fast engines reduce the same candidate set in order-independent
/// reductions, so the result — bit for bit — cannot differ.
TimeSec scan_minspan(const TimestampTrace& ts, std::int64_t n, std::int64_t k) {
  TimeSec best = std::numeric_limits<TimeSec>::infinity();
  for (std::int64_t i = 0; i + k <= n; ++i)
    best = std::min(best, ts[static_cast<std::size_t>(i + k - 1)] - ts[static_cast<std::size_t>(i)]);
  return best;
}

TimeSec scan_maxspan(const TimestampTrace& ts, std::int64_t n, std::int64_t k) {
  TimeSec best = 0.0;
  for (std::int64_t i = 0; i + k <= n; ++i)
    best = std::max(best, ts[static_cast<std::size_t>(i + k - 1)] - ts[static_cast<std::size_t>(i)]);
  return best;
}

enum class Span { Min, Max };

std::vector<TimeSec> spans(const TimestampTrace& ts, std::span<const std::int64_t> ks, Span which,
                           common::ThreadPool* pool, const runtime::RunPolicy* policy,
                           common::GapEngine engine) {
  WLC_TRACE_SPAN(which == Span::Min ? "arrival.minspans" : "arrival.maxspans");
  require_ordered(ts);
  const auto n = static_cast<std::int64_t>(ts.size());
  WLC_COUNTER_ADD("arrival.grid_entries", static_cast<std::int64_t>(ks.size()));
  for (std::int64_t k : ks)
    WLC_REQUIRE(k >= 1 && k <= n, "span window must fit in the trace");
  std::vector<TimeSec> out(ks.size());
  // Same poll cadence in all engines and both threading paths: before every
  // grid entry's scan (plus intra-build polls in the fast engines).
  const auto check = [&] {
    if (policy) policy->checkpoint("arrival extraction");
  };
  const std::function<void()> checkpoint = check;
  const auto run_entries = [&](auto&& eval_entry) {
    if (pool) {
      common::parallel_for(*pool, ks.size(), eval_entry, check);
    } else {
      for (std::size_t i = 0; i < ks.size(); ++i) {
        check();
        eval_entry(i);
      }
    }
  };
  switch (common::choose_gap_engine<TimeSec>(engine, n,
                                             policy ? policy->budget.max_resident_bytes : 0)) {
    case common::GapEngine::Streaming: {
      WLC_COUNTER_ADD("arrival.engine.streaming", 1);
      check();
      std::vector<std::int64_t> shifts(ks.size());
      for (std::size_t i = 0; i < ks.size(); ++i) shifts[i] = ks[i] - 1;
      std::vector<TimeSec> mx(ks.size());
      std::vector<TimeSec> mn(ks.size());
      common::streaming_gaps<TimeSec>(ts, shifts, mx, mn, &checkpoint);
      std::int64_t windows = 0;
      for (std::size_t i = 0; i < ks.size(); ++i) {
        windows += n - ks[i] + 1;
        out[i] = which == Span::Min ? mn[i] : mx[i];
      }
      WLC_COUNTER_ADD("arrival.windows_scanned", windows);
      break;
    }
    case common::GapEngine::SharedIndex: {
      WLC_COUNTER_ADD("arrival.engine.shared_index", 1);
      const common::SlidingExtrema<TimeSec> index(ts, &checkpoint);
      std::vector<std::int64_t> scanned(ks.size(), 0);
      run_entries([&](std::size_t i) {
        out[i] = which == Span::Min ? index.min_gap(ks[i] - 1, &scanned[i])
                                    : index.max_gap(ks[i] - 1, &scanned[i]);
      });
      WLC_COUNTER_ADD("arrival.windows_scanned",
                      std::accumulate(scanned.begin(), scanned.end(), std::int64_t{0}));
      break;
    }
    default: {
      WLC_COUNTER_ADD("arrival.engine.oracle", 1);
      run_entries([&](std::size_t i) {
        const std::int64_t k = ks[i];
        WLC_COUNTER_ADD("arrival.windows_scanned", n - k + 1);
        out[i] = which == Span::Min ? scan_minspan(ts, n, k) : scan_maxspan(ts, n, k);
      });
      break;
    }
  }
  return out;
}

EmpiricalArrivalCurve upper_arrival(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                                    common::ThreadPool* pool, const runtime::RunPolicy* policy,
                                    common::GapEngine engine) {
  if (policy) policy->checkpoint("arrival extraction");
  require_ordered(ts);
  const auto n = static_cast<std::int64_t>(ts.size());
  std::vector<std::int64_t> grid = normalized_grid(ks, n);
  if (grid.empty() || grid.back() != n) grid.push_back(n);  // sound top step
  const std::vector<TimeSec> m = spans(ts, grid, Span::Min, pool, policy, engine);

  // On [m(k_i), m(k_{i+1})) at most k_{i+1}-1 events fit (αᵘ(Δ) >= k iff
  // minspan(k) <= Δ); the final step is exactly the trace length.
  std::vector<std::pair<TimeSec, EventCount>> pts;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const EventCount value = (i + 1 < grid.size()) ? grid[i + 1] - 1 : grid[i];
    const TimeSec x = m[i];
    if (!pts.empty() && pts.back().first == x)
      pts.back().second = std::max(pts.back().second, value);
    else
      pts.emplace_back(x, value);
  }
  // Drop redundant equal-value steps.
  std::vector<std::pair<TimeSec, EventCount>> cleaned;
  for (const auto& p : pts)
    if (cleaned.empty() || p.second != cleaned.back().second) cleaned.push_back(p);
  return EmpiricalArrivalCurve(EmpiricalArrivalCurve::Bound::Upper, std::move(cleaned));
}

EmpiricalArrivalCurve lower_arrival(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                                    common::ThreadPool* pool, const runtime::RunPolicy* policy,
                                    common::GapEngine engine) {
  if (policy) policy->checkpoint("arrival extraction");
  require_ordered(ts);
  const auto n = static_cast<std::int64_t>(ts.size());
  // αˡ(Δ) >= k iff maxspan(k+1) <= Δ, so evaluate spans at k+1 (capped at n-1
  // for k so that k+1 fits; the "all n events" step is handled separately).
  std::vector<std::int64_t> grid = normalized_grid(ks, std::max<std::int64_t>(n - 1, 1));
  std::vector<std::pair<TimeSec, EventCount>> pts{{0.0, 0}};
  if (n >= 2) {
    std::vector<std::int64_t> kplus;
    kplus.reserve(grid.size());
    for (std::int64_t k : grid)
      if (k + 1 <= n) kplus.push_back(k + 1);
    std::vector<std::int64_t> kept(grid.begin(), grid.begin() + static_cast<std::ptrdiff_t>(kplus.size()));
    const std::vector<TimeSec> span_vals = spans(ts, kplus, Span::Max, pool, policy, engine);
    for (std::size_t i = 0; i < kplus.size(); ++i) {
      const TimeSec x = span_vals[i];
      const EventCount value = kept[i];
      if (!pts.empty() && pts.back().first == x)
        pts.back().second = std::max(pts.back().second, value);
      else if (x > pts.back().first)
        pts.emplace_back(x, std::max(value, pts.back().second));
    }
  }
  // A window as long as the whole observation holds every event.
  const TimeSec total = ts.back() - ts.front();
  if (!pts.empty() && pts.back().first == total)
    pts.back().second = n;
  else if (total > pts.back().first)
    pts.emplace_back(total, n);
  return EmpiricalArrivalCurve(EmpiricalArrivalCurve::Bound::Lower, std::move(pts));
}

}  // namespace

std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy, common::GapEngine engine) {
  return spans(ts, ks, Span::Min, nullptr, policy, engine);
}

std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy, common::GapEngine engine) {
  return spans(ts, ks, Span::Max, nullptr, policy, engine);
}

std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool, const runtime::RunPolicy* policy,
                              common::GapEngine engine) {
  return spans(ts, ks, Span::Min, &pool, policy, engine);
}

std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool, const runtime::RunPolicy* policy,
                              common::GapEngine engine) {
  return spans(ts, ks, Span::Max, &pool, policy, engine);
}

std::vector<TimeSec> minspans_oracle(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                                     const runtime::RunPolicy* policy) {
  return spans(ts, ks, Span::Min, nullptr, policy, common::GapEngine::Oracle);
}

std::vector<TimeSec> maxspans_oracle(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                                     const runtime::RunPolicy* policy) {
  return spans(ts, ks, Span::Max, nullptr, policy, common::GapEngine::Oracle);
}

EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy,
                                            common::GapEngine engine) {
  return upper_arrival(ts, ks, nullptr, policy, engine);
}

EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy,
                                            common::GapEngine engine) {
  return lower_arrival(ts, ks, nullptr, policy, engine);
}

EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy,
                                            common::GapEngine engine) {
  return upper_arrival(ts, ks, &pool, policy, engine);
}

EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy,
                                            common::GapEngine engine) {
  return lower_arrival(ts, ks, &pool, policy, engine);
}

EventCount max_events_in_window(const TimestampTrace& ts, TimeSec delta) {
  require_ordered(ts);
  WLC_REQUIRE(delta >= 0.0, "window length must be non-negative");
  EventCount best = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto it = std::upper_bound(ts.begin() + static_cast<std::ptrdiff_t>(i), ts.end(),
                                     ts[i] + delta);
    best = std::max(best, static_cast<EventCount>(std::distance(ts.begin() + static_cast<std::ptrdiff_t>(i), it)));
  }
  return best;
}

EventCount min_events_in_window(const TimestampTrace& ts, TimeSec delta) {
  require_ordered(ts);
  WLC_REQUIRE(delta >= 0.0, "window length must be non-negative");
  const TimeSec total = ts.back() - ts.front();
  if (delta >= total) return static_cast<EventCount>(ts.size());
  EventCount best = std::numeric_limits<EventCount>::max();
  // Candidate minimizing placements start just after an event.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] + delta >= ts.back()) break;  // window would stick out of the observation
    const auto lo = std::upper_bound(ts.begin(), ts.end(), ts[i]);
    const auto hi = std::upper_bound(ts.begin(), ts.end(), ts[i] + delta);
    best = std::min(best, static_cast<EventCount>(std::distance(lo, hi)));
  }
  if (best == std::numeric_limits<EventCount>::max()) best = static_cast<EventCount>(ts.size());
  return best;
}

}  // namespace wlc::trace
