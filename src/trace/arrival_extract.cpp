#include "trace/arrival_extract.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::trace {

namespace {

void require_ordered(const TimestampTrace& ts) {
  WLC_REQUIRE(!ts.empty(), "trace must be non-empty");
  WLC_REQUIRE(std::is_sorted(ts.begin(), ts.end()), "timestamps must be non-decreasing");
}

/// Sorted, deduplicated copy of `ks` clamped to [1, limit].
std::vector<std::int64_t> normalized_grid(std::span<const std::int64_t> ks, std::int64_t limit) {
  std::vector<std::int64_t> out;
  out.reserve(ks.size());
  for (std::int64_t k : ks) {
    WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
    out.push_back(std::min(k, limit));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// One k's span extremum, scanned in ascending window order. Serial and
/// parallel paths share this exact loop, so the floating-point reduction
/// order — and therefore the result, bit for bit — cannot differ.
TimeSec scan_minspan(const TimestampTrace& ts, std::int64_t n, std::int64_t k) {
  TimeSec best = std::numeric_limits<TimeSec>::infinity();
  for (std::int64_t i = 0; i + k <= n; ++i)
    best = std::min(best, ts[static_cast<std::size_t>(i + k - 1)] - ts[static_cast<std::size_t>(i)]);
  return best;
}

TimeSec scan_maxspan(const TimestampTrace& ts, std::int64_t n, std::int64_t k) {
  TimeSec best = 0.0;
  for (std::int64_t i = 0; i + k <= n; ++i)
    best = std::max(best, ts[static_cast<std::size_t>(i + k - 1)] - ts[static_cast<std::size_t>(i)]);
  return best;
}

enum class Span { Min, Max };

std::vector<TimeSec> spans(const TimestampTrace& ts, std::span<const std::int64_t> ks, Span which,
                           common::ThreadPool* pool, const runtime::RunPolicy* policy) {
  WLC_TRACE_SPAN(which == Span::Min ? "arrival.minspans" : "arrival.maxspans");
  require_ordered(ts);
  const auto n = static_cast<std::int64_t>(ts.size());
  WLC_COUNTER_ADD("arrival.grid_entries", static_cast<std::int64_t>(ks.size()));
  std::vector<TimeSec> out(ks.size());
  const auto eval_entry = [&](std::size_t i) {
    const std::int64_t k = ks[i];
    WLC_REQUIRE(k >= 1 && k <= n, "span window must fit in the trace");
    WLC_COUNTER_ADD("arrival.windows_scanned", n - k + 1);
    out[i] = which == Span::Min ? scan_minspan(ts, n, k) : scan_maxspan(ts, n, k);
  };
  // Same poll cadence in both paths: before every grid entry's scan.
  const auto check = [&] {
    if (policy) policy->checkpoint("arrival extraction");
  };
  if (pool) {
    common::parallel_for(*pool, ks.size(), eval_entry, check);
  } else {
    for (std::size_t i = 0; i < ks.size(); ++i) {
      check();
      eval_entry(i);
    }
  }
  return out;
}

EmpiricalArrivalCurve upper_arrival(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                                    common::ThreadPool* pool, const runtime::RunPolicy* policy) {
  if (policy) policy->checkpoint("arrival extraction");
  require_ordered(ts);
  const auto n = static_cast<std::int64_t>(ts.size());
  std::vector<std::int64_t> grid = normalized_grid(ks, n);
  if (grid.empty() || grid.back() != n) grid.push_back(n);  // sound top step
  const std::vector<TimeSec> m = spans(ts, grid, Span::Min, pool, policy);

  // On [m(k_i), m(k_{i+1})) at most k_{i+1}-1 events fit (αᵘ(Δ) >= k iff
  // minspan(k) <= Δ); the final step is exactly the trace length.
  std::vector<std::pair<TimeSec, EventCount>> pts;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const EventCount value = (i + 1 < grid.size()) ? grid[i + 1] - 1 : grid[i];
    const TimeSec x = m[i];
    if (!pts.empty() && pts.back().first == x)
      pts.back().second = std::max(pts.back().second, value);
    else
      pts.emplace_back(x, value);
  }
  // Drop redundant equal-value steps.
  std::vector<std::pair<TimeSec, EventCount>> cleaned;
  for (const auto& p : pts)
    if (cleaned.empty() || p.second != cleaned.back().second) cleaned.push_back(p);
  return EmpiricalArrivalCurve(EmpiricalArrivalCurve::Bound::Upper, std::move(cleaned));
}

EmpiricalArrivalCurve lower_arrival(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                                    common::ThreadPool* pool, const runtime::RunPolicy* policy) {
  if (policy) policy->checkpoint("arrival extraction");
  require_ordered(ts);
  const auto n = static_cast<std::int64_t>(ts.size());
  // αˡ(Δ) >= k iff maxspan(k+1) <= Δ, so evaluate spans at k+1 (capped at n-1
  // for k so that k+1 fits; the "all n events" step is handled separately).
  std::vector<std::int64_t> grid = normalized_grid(ks, std::max<std::int64_t>(n - 1, 1));
  std::vector<std::pair<TimeSec, EventCount>> pts{{0.0, 0}};
  if (n >= 2) {
    std::vector<std::int64_t> kplus;
    kplus.reserve(grid.size());
    for (std::int64_t k : grid)
      if (k + 1 <= n) kplus.push_back(k + 1);
    std::vector<std::int64_t> kept(grid.begin(), grid.begin() + static_cast<std::ptrdiff_t>(kplus.size()));
    const std::vector<TimeSec> span_vals = spans(ts, kplus, Span::Max, pool, policy);
    for (std::size_t i = 0; i < kplus.size(); ++i) {
      const TimeSec x = span_vals[i];
      const EventCount value = kept[i];
      if (!pts.empty() && pts.back().first == x)
        pts.back().second = std::max(pts.back().second, value);
      else if (x > pts.back().first)
        pts.emplace_back(x, std::max(value, pts.back().second));
    }
  }
  // A window as long as the whole observation holds every event.
  const TimeSec total = ts.back() - ts.front();
  if (!pts.empty() && pts.back().first == total)
    pts.back().second = n;
  else if (total > pts.back().first)
    pts.emplace_back(total, n);
  return EmpiricalArrivalCurve(EmpiricalArrivalCurve::Bound::Lower, std::move(pts));
}

}  // namespace

std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy) {
  return spans(ts, ks, Span::Min, nullptr, policy);
}

std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy) {
  return spans(ts, ks, Span::Max, nullptr, policy);
}

std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool, const runtime::RunPolicy* policy) {
  return spans(ts, ks, Span::Min, &pool, policy);
}

std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool, const runtime::RunPolicy* policy) {
  return spans(ts, ks, Span::Max, &pool, policy);
}

EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy) {
  return upper_arrival(ts, ks, nullptr, policy);
}

EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy) {
  return lower_arrival(ts, ks, nullptr, policy);
}

EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy) {
  return upper_arrival(ts, ks, &pool, policy);
}

EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy) {
  return lower_arrival(ts, ks, &pool, policy);
}

EventCount max_events_in_window(const TimestampTrace& ts, TimeSec delta) {
  require_ordered(ts);
  WLC_REQUIRE(delta >= 0.0, "window length must be non-negative");
  EventCount best = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto it = std::upper_bound(ts.begin() + static_cast<std::ptrdiff_t>(i), ts.end(),
                                     ts[i] + delta);
    best = std::max(best, static_cast<EventCount>(std::distance(ts.begin() + static_cast<std::ptrdiff_t>(i), it)));
  }
  return best;
}

EventCount min_events_in_window(const TimestampTrace& ts, TimeSec delta) {
  require_ordered(ts);
  WLC_REQUIRE(delta >= 0.0, "window length must be non-negative");
  const TimeSec total = ts.back() - ts.front();
  if (delta >= total) return static_cast<EventCount>(ts.size());
  EventCount best = std::numeric_limits<EventCount>::max();
  // Candidate minimizing placements start just after an event.
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] + delta >= ts.back()) break;  // window would stick out of the observation
    const auto lo = std::upper_bound(ts.begin(), ts.end(), ts[i]);
    const auto hi = std::upper_bound(ts.begin(), ts.end(), ts[i] + delta);
    best = std::min(best, static_cast<EventCount>(std::distance(lo, hi)));
  }
  if (best == std::numeric_limits<EventCount>::max()) best = static_cast<EventCount>(ts.size());
  return best;
}

}  // namespace wlc::trace
