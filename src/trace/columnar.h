// trace::columnar — the memory-mapped binary trace format ("WLCCOL").
//
// CSV is the interchange format; it is also why a 2M-row trace costs
// seconds before extraction even starts. The columnar format stores the
// same three columns as packed little-endian arrays so a reader maps the
// file and hands out typed spans with zero copies and zero parsing:
//
//   offset  size  field
//   ------  ----  --------------------------------------------------------
//        0     8  magic "WLCCOL\0\0"
//        8     4  u32 version (currently 1)
//       12     4  u32 CRC-32 (IEEE, common::crc32) of the payload bytes
//       16     8  u64 row count n
//       24    8n  time column,   f64[n]  (seconds)
//    24+8n    8n  demand column, i64[n]  (cycles)
//   24+16n    4n  type column,   i32[n]
//
// The file size must equal 24 + 20n exactly — a shorter file is truncation,
// a longer one is trailing garbage, both faults. The column order keeps the
// f64/i64 columns 8-byte aligned and the i32 column 4-byte aligned at any
// page-aligned mapping base.
//
// Decoding follows the serve-snapshot strict-decode discipline: magic,
// version, exact size and checksum are verified before any payload byte is
// interpreted, then the payload is validated semantically (finite
// non-decreasing times, non-negative demands — the same invariants strict
// CSV ingestion enforces, so every trace one reader accepts the other
// would). Every violation throws wlc::ParseError naming the source file and
// the byte offset (and row, for payload faults); hostile input can
// over-allocate nothing and read nothing out of bounds. The
// fault-injection suite drives truncation at every length, single-bit
// flips over header and payload, version skew and trailing bytes against
// this decoder under ASan/UBSan.
//
// `wlc_analyze convert-trace` converts between the CSV and columnar
// representations; every trace-reading command sniffs the magic and accepts
// either format transparently.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/mmap_file.h"
#include "trace/io.h"
#include "trace/traces.h"

namespace wlc::trace {

inline constexpr std::string_view kColumnarMagic{"WLCCOL\0\0", 8};
inline constexpr std::uint32_t kColumnarVersion = 1;
inline constexpr std::size_t kColumnarHeaderBytes = 24;
inline constexpr std::size_t kColumnarRowBytes = 20;  ///< f64 + i64 + i32

/// Serializes `events` into the columnar byte layout above.
std::string encode_columnar(const EventTrace& events);

/// Strict decode of `bytes`; `source_name` prefixes fault positions (like
/// ReadOptions::source_name for CSV). Throws wlc::ParseError on any
/// structural or semantic violation, never exhibits UB on hostile input.
EventTrace decode_columnar(std::string_view bytes, const std::string& source_name = "");

/// Atomically writes `events` to `path` in columnar form
/// (common::atomic_write_file — a crashed writer never leaves a torn file).
/// Returns false with a reason in `*error` on I/O failure.
bool write_columnar_file(const std::string& path, const EventTrace& events,
                         std::string* error = nullptr);

/// True when `path` is a readable regular file starting with the WLCCOL
/// magic — the format sniff the CLI uses to accept CSV and columnar traces
/// through the same flag. Never throws; unreadable means "not columnar".
bool sniff_columnar(const std::string& path);

/// Zero-copy reader: maps the file and validates it (structure, checksum,
/// semantics) once; the column accessors then point straight into the
/// mapping. The view owns the mapping — spans are valid for its lifetime.
class ColumnarTraceView {
 public:
  /// Maps and validates `path`. Throws wlc::ParseError on any violation
  /// (prefixed with the path) and wlc::DomainError when the file cannot be
  /// mapped at all.
  static ColumnarTraceView open(const std::string& path);

  std::size_t rows() const { return rows_; }
  std::span<const TimeSec> times() const;
  std::span<const Cycles> demands() const;
  std::span<const std::int32_t> types() const;

  /// Materializes the first `max_rows` rows (default: all) as EventRecords.
  EventTrace to_events(std::size_t max_rows = static_cast<std::size_t>(-1)) const;

 private:
  common::MappedFile map_;
  std::size_t rows_ = 0;
};

/// Reads a columnar trace file under the same ingestion controls as
/// read_event_trace_csv: the row budget keeps the first max_trace_rows rows
/// under OnBudget::Degrade (recording the kept/seen split) or throws under
/// Fail, and the cancel token/deadline is polled during materialization.
/// The columnar format has no lenient mode — a corrupt file is rejected
/// whole (the checksum cannot attribute damage to single rows), so
/// ParsePolicy does not appear here.
EventTrace read_columnar_trace(const std::string& path, const ReadOptions& options = {});

/// Column-direct variant of read_columnar_trace for the analysis pipeline:
/// fills the demand and timestamp columns straight from the mapping —
/// skipping the AoS event materialization entirely — under the exact same
/// validation, row budget and cancellation behaviour. Returns the number of
/// rows kept. Either output may be null when that column is not needed.
std::size_t read_columnar_columns(const std::string& path, const ReadOptions& options,
                                  DemandTrace* demands, TimestampTrace* times);

}  // namespace wlc::trace
