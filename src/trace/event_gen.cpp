#include "trace/event_gen.h"

#include <algorithm>

#include "common/assert.h"

namespace wlc::trace {

namespace {
void validate_pjd(const PjdModel& m) {
  WLC_REQUIRE(m.period > 0.0, "period must be positive");
  WLC_REQUIRE(m.jitter >= 0.0, "jitter must be non-negative");
  WLC_REQUIRE(m.min_spacing >= 0.0 && m.min_spacing <= m.period,
              "need 0 <= min_spacing <= period");
}
}  // namespace

curve::PwlCurve PjdModel::upper_curve(TimeSec horizon) const {
  validate_pjd(*this);
  if (min_spacing <= 0.0) return curve::PwlCurve::periodic_upper(period, jitter);
  return curve::PwlCurve::pjd_upper(period, jitter, min_spacing, horizon);
}

curve::PwlCurve PjdModel::lower_curve() const {
  validate_pjd(*this);
  return curve::PwlCurve::periodic_lower(period, jitter);
}

TimestampTrace PjdModel::generate(EventCount n, common::Rng& rng) const {
  validate_pjd(*this);
  WLC_REQUIRE(n >= 1, "need at least one event");
  TimestampTrace ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (EventCount i = 0; i < n; ++i) {
    // Nominal release i·P displaced into [i·P, i·P + J]; the minimum spacing
    // can only push events later, which (with d <= P) keeps t_i <= i·P + J.
    double t = static_cast<double>(i) * period + rng.uniform(0.0, jitter);
    if (!ts.empty()) t = std::max(t, ts.back() + min_spacing);
    ts.push_back(t);
  }
  return ts;
}

TimestampTrace PjdModel::generate_adversarial(EventCount n) const {
  validate_pjd(*this);
  WLC_REQUIRE(n >= 1, "need at least one event");
  // Maximal compression: the first half runs maximally late (+J), the second
  // half on time — at the seam the stream realizes the upper curve's densest
  // window (span (k-1)·P − J, clipped by the minimum spacing).
  TimestampTrace ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (EventCount i = 0; i < n; ++i) {
    double t = static_cast<double>(i) * period + (i < n / 2 ? jitter : 0.0);
    if (!ts.empty()) t = std::max(t, ts.back() + min_spacing);
    ts.push_back(t);
  }
  return ts;
}

curve::PwlCurve SporadicModel::upper_curve() const {
  WLC_REQUIRE(0.0 < t_min && t_min <= t_max, "need 0 < t_min <= t_max");
  return curve::PwlCurve::staircase(1.0, 1.0, t_min, t_min);  // ⌊Δ/t_min⌋ + 1
}

curve::PwlCurve SporadicModel::lower_curve() const {
  WLC_REQUIRE(0.0 < t_min && t_min <= t_max, "need 0 < t_min <= t_max");
  return curve::PwlCurve::periodic_lower(t_max);  // ⌊Δ/t_max⌋
}

TimestampTrace SporadicModel::generate(EventCount n, common::Rng& rng) const {
  WLC_REQUIRE(0.0 < t_min && t_min <= t_max, "need 0 < t_min <= t_max");
  WLC_REQUIRE(n >= 1, "need at least one event");
  TimestampTrace ts{0.0};
  for (EventCount i = 1; i < n; ++i) ts.push_back(ts.back() + rng.uniform(t_min, t_max));
  return ts;
}

TimestampTrace SporadicModel::generate_adversarial(EventCount n) const {
  WLC_REQUIRE(0.0 < t_min && t_min <= t_max, "need 0 < t_min <= t_max");
  WLC_REQUIRE(n >= 1, "need at least one event");
  TimestampTrace ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (EventCount i = 0; i < n; ++i) ts.push_back(static_cast<double>(i) * t_min);
  return ts;
}

}  // namespace wlc::trace
