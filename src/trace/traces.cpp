#include "trace/traces.h"

#include <algorithm>

namespace wlc::trace {

DemandTrace demands_of(const EventTrace& t) {
  DemandTrace out;
  out.reserve(t.size());
  for (const auto& e : t) out.push_back(e.demand);
  return out;
}

TimestampTrace timestamps_of(const EventTrace& t) {
  TimestampTrace out;
  out.reserve(t.size());
  for (const auto& e : t) out.push_back(e.time);
  return out;
}

bool is_time_ordered(const EventTrace& t) {
  return std::is_sorted(t.begin(), t.end(),
                        [](const EventRecord& a, const EventRecord& b) { return a.time < b.time; });
}

}  // namespace wlc::trace
