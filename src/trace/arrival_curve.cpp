#include "trace/arrival_curve.h"

#include <algorithm>

#include "common/assert.h"

namespace wlc::trace {

EmpiricalArrivalCurve::EmpiricalArrivalCurve(Bound bound,
                                             std::vector<std::pair<TimeSec, EventCount>> points)
    : bound_(bound), points_(std::move(points)) {
  WLC_REQUIRE(!points_.empty(), "arrival curve needs at least one breakpoint");
  WLC_REQUIRE(points_.front().first == 0.0, "first breakpoint must be at delta = 0");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    WLC_REQUIRE(points_[i - 1].first < points_[i].first, "breakpoints must strictly increase");
    WLC_REQUIRE(points_[i - 1].second <= points_[i].second, "values must be non-decreasing");
  }
}

EventCount EmpiricalArrivalCurve::eval(TimeSec delta) const {
  WLC_REQUIRE(delta >= 0.0, "window length must be non-negative");
  auto it = std::upper_bound(
      points_.begin(), points_.end(), delta,
      [](TimeSec v, const std::pair<TimeSec, EventCount>& p) { return v < p.first; });
  WLC_ASSERT(it != points_.begin());
  return std::prev(it)->second;
}

double EmpiricalArrivalCurve::long_run_rate() const {
  if (points_.back().first <= 0.0) return 0.0;
  return static_cast<double>(points_.back().second) / points_.back().first;
}

EmpiricalArrivalCurve EmpiricalArrivalCurve::combine(const EmpiricalArrivalCurve& a,
                                                     const EmpiricalArrivalCurve& b) {
  WLC_REQUIRE(a.bound() == b.bound(), "can only combine curves of the same bound kind");
  std::vector<TimeSec> xs;
  xs.reserve(a.points_.size() + b.points_.size());
  for (const auto& p : a.points_) xs.push_back(p.first);
  for (const auto& p : b.points_) xs.push_back(p.first);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  const bool upper = a.bound() == Bound::Upper;
  std::vector<std::pair<TimeSec, EventCount>> pts;
  pts.reserve(xs.size());
  for (TimeSec x : xs) {
    const EventCount va = a.eval(x);
    const EventCount vb = b.eval(x);
    const EventCount v = upper ? std::max(va, vb) : std::min(va, vb);
    if (!pts.empty() && pts.back().second == v) continue;
    pts.emplace_back(x, v);
  }
  return EmpiricalArrivalCurve(a.bound(), std::move(pts));
}

}  // namespace wlc::trace
