#include "trace/io.h"

#include <charconv>
#include <cmath>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/error.h"
#include "obs/obs.h"

namespace wlc::trace {

void write_event_trace_csv(std::ostream& os, const EventTrace& t) {
  os << "time,type,demand\n";
  // max_digits10 makes the round trip lossless: read(write(t)) == t exactly,
  // a property the fault-injection differential tests rely on.
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& e : t) os << e.time << ',' << e.type << ',' << e.demand << '\n';
}

namespace {

/// Fault classes a data row can exhibit; each maps to one ParseReport
/// counter and one strict-mode exception.
enum class RowFault { Malformed, NonFinite, NegativeDemand, OutOfOrder, Overflow };

std::size_t& counter_for(ParseReport& r, RowFault f) {
  switch (f) {
    case RowFault::Malformed: return r.malformed;
    case RowFault::NonFinite: return r.non_finite;
    case RowFault::NegativeDemand: return r.negative_demand;
    case RowFault::OutOfOrder: return r.out_of_order;
    case RowFault::Overflow: return r.overflow;
  }
  return r.malformed;  // unreachable
}

struct RowError {
  RowFault fault;
  std::string message;
  std::size_t column;  // 1-based offset into the row, 0 = whole row
};

/// Parses one complete field (no leading/trailing junk tolerated).
/// std::from_chars accepts "nan"/"inf" for doubles, so finiteness is checked
/// separately by the caller.
template <typename T>
bool parse_field(std::string_view field, T& out, bool& out_of_range) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto res = std::from_chars(begin, end, out);
  out_of_range = res.ec == std::errc::result_out_of_range;
  return res.ec == std::errc{} && res.ptr == end;
}

/// Parses "time,type,demand" into `e`; `prev_time` is the last accepted
/// timestamp (events must be non-decreasing in time). Returns the first
/// fault found, if any.
std::optional<RowError> parse_row(std::string_view line, TimeSec prev_time, EventRecord& e) {
  const std::size_t c1 = line.find(',');
  const std::size_t c2 = c1 == std::string_view::npos ? c1 : line.find(',', c1 + 1);
  if (c2 == std::string_view::npos)
    return RowError{RowFault::Malformed, "expected 3 comma-separated fields", 0};
  if (line.find(',', c2 + 1) != std::string_view::npos)
    return RowError{RowFault::Malformed, "expected exactly 3 fields", c2 + 2};

  const std::string_view time_f = line.substr(0, c1);
  const std::string_view type_f = line.substr(c1 + 1, c2 - c1 - 1);
  const std::string_view demand_f = line.substr(c2 + 1);
  bool range = false;

  if (!parse_field(time_f, e.time, range))
    return RowError{range ? RowFault::Overflow : RowFault::Malformed,
                    "bad time field '" + std::string(time_f) + "'", 1};
  if (!std::isfinite(e.time))
    return RowError{RowFault::NonFinite, "non-finite time '" + std::string(time_f) + "'", 1};
  if (!parse_field(type_f, e.type, range))
    return RowError{range ? RowFault::Overflow : RowFault::Malformed,
                    "bad type field '" + std::string(type_f) + "'", c1 + 2};
  if (!parse_field(demand_f, e.demand, range))
    return RowError{range ? RowFault::Overflow : RowFault::Malformed,
                    "bad demand field '" + std::string(demand_f) + "'", c2 + 2};
  if (e.demand < 0)
    return RowError{RowFault::NegativeDemand,
                    "negative demand '" + std::string(demand_f) + "'", c2 + 2};
  if (e.time < prev_time)
    return RowError{RowFault::OutOfOrder,
                    "timestamp '" + std::string(time_f) + "' earlier than preceding row", 1};
  return std::nullopt;
}

/// Tolerate Windows line endings: getline leaves a trailing '\r'.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

[[noreturn]] void throw_row_error(const RowError& re, std::size_t lineno) {
  if (re.fault == RowFault::Overflow)
    throw OverflowError("trace field out of range: " + re.message +
                        " at input line " + std::to_string(lineno));
  throw ParseError("malformed trace row: " + re.message, /*offending=*/"", lineno, re.column);
}

/// Folds the final ParseReport into the obs counters on every exit path of
/// read_event_trace_csv — normal return and strict-mode throw alike — so
/// "trace.rows_kept"/"trace.rows_dropped.*" always reflect what the parser
/// actually did.
struct [[maybe_unused]] ReportTally {
  const ParseReport& rep;

  ~ReportTally() {
    WLC_COUNTER_ADD("trace.rows_kept", static_cast<std::int64_t>(rep.rows_kept));
    WLC_COUNTER_ADD("trace.rows_dropped.malformed", static_cast<std::int64_t>(rep.malformed));
    WLC_COUNTER_ADD("trace.rows_dropped.non_finite", static_cast<std::int64_t>(rep.non_finite));
    WLC_COUNTER_ADD("trace.rows_dropped.negative_demand",
                    static_cast<std::int64_t>(rep.negative_demand));
    WLC_COUNTER_ADD("trace.rows_dropped.out_of_order",
                    static_cast<std::int64_t>(rep.out_of_order));
    WLC_COUNTER_ADD("trace.rows_dropped.overflow", static_cast<std::int64_t>(rep.overflow));
  }
};

}  // namespace

std::string ParseReport::to_string() const {
  std::ostringstream os;
  os << "rows: " << rows_total << " total, " << rows_kept << " kept, " << rows_dropped()
     << " dropped";
  if (malformed) os << "; malformed: " << malformed;
  if (non_finite) os << "; non-finite: " << non_finite;
  if (negative_demand) os << "; negative demand: " << negative_demand;
  if (out_of_order) os << "; out-of-order: " << out_of_order;
  if (overflow) os << "; overflow: " << overflow;
  for (const auto& s : samples) os << "\n  " << s;
  return os.str();
}

EventTrace read_event_trace_csv(std::istream& is, ParsePolicy policy, ParseReport* report) {
  WLC_TRACE_SPAN("trace.parse_csv");
  static constexpr std::size_t kMaxSamples = 8;
  ParseReport local;
  ParseReport& rep = report ? *report : local;
  rep = ParseReport{};
  const ReportTally tally{rep};

  EventTrace out;
  std::string line;
  if (!std::getline(is, line)) throw ParseError("empty trace file", "", 1);
  strip_cr(line);
  if (line != "time,type,demand")
    throw ParseError("unexpected trace header", line, 1);

  std::size_t lineno = 1;
  TimeSec prev_time = -std::numeric_limits<TimeSec>::infinity();
  while (std::getline(is, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty()) continue;
    ++rep.rows_total;
    EventRecord e;
    if (const auto err = parse_row(line, prev_time, e)) {
      if (policy == ParsePolicy::Strict) throw_row_error(*err, lineno);
      ++counter_for(rep, err->fault);
      if (rep.samples.size() < kMaxSamples)
        rep.samples.push_back("line " + std::to_string(lineno) + ": " + err->message);
      continue;
    }
    prev_time = e.time;
    out.push_back(e);
    ++rep.rows_kept;
  }
  return out;
}

EventTrace read_event_trace_csv(std::istream& is) {
  return read_event_trace_csv(is, ParsePolicy::Strict, nullptr);
}

void write_arrival_curve_csv(std::ostream& os, const EmpiricalArrivalCurve& c) {
  os << "delta,events\n";
  os.precision(12);
  for (const auto& [x, y] : c.points()) os << x << ',' << y << '\n';
}

}  // namespace wlc::trace
