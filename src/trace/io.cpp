#include "trace/io.h"

#include <charconv>
#include <cmath>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/error.h"
#include "obs/obs.h"

namespace wlc::trace {

void write_event_trace_csv(std::ostream& os, const EventTrace& t) {
  os << "time,type,demand\n";
  // max_digits10 makes the round trip lossless: read(write(t)) == t exactly,
  // a property the fault-injection differential tests rely on.
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& e : t) os << e.time << ',' << e.type << ',' << e.demand << '\n';
}

namespace {

/// Fault classes a data row can exhibit; each maps to one ParseReport
/// counter and one strict-mode exception.
enum class RowFault { Malformed, NonFinite, NegativeDemand, OutOfOrder, Overflow };

std::size_t& counter_for(ParseReport& r, RowFault f) {
  switch (f) {
    case RowFault::Malformed: return r.malformed;
    case RowFault::NonFinite: return r.non_finite;
    case RowFault::NegativeDemand: return r.negative_demand;
    case RowFault::OutOfOrder: return r.out_of_order;
    case RowFault::Overflow: return r.overflow;
  }
  return r.malformed;  // unreachable
}

struct RowError {
  RowFault fault;
  std::string message;
  std::size_t column;  // 1-based offset into the row, 0 = whole row
};

/// Parses one complete field (no leading/trailing junk tolerated).
/// std::from_chars accepts "nan"/"inf" for doubles, so finiteness is checked
/// separately by the caller.
template <typename T>
bool parse_field(std::string_view field, T& out, bool& out_of_range) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto res = std::from_chars(begin, end, out);
  out_of_range = res.ec == std::errc::result_out_of_range;
  return res.ec == std::errc{} && res.ptr == end;
}

/// Parses "time,type,demand" into `e`; `prev_time` is the last accepted
/// timestamp (events must be non-decreasing in time). Returns the first
/// fault found, if any.
std::optional<RowError> parse_row(std::string_view line, TimeSec prev_time, EventRecord& e) {
  const std::size_t c1 = line.find(',');
  const std::size_t c2 = c1 == std::string_view::npos ? c1 : line.find(',', c1 + 1);
  if (c2 == std::string_view::npos)
    return RowError{RowFault::Malformed, "expected 3 comma-separated fields", 0};
  if (line.find(',', c2 + 1) != std::string_view::npos)
    return RowError{RowFault::Malformed, "expected exactly 3 fields", c2 + 2};

  const std::string_view time_f = line.substr(0, c1);
  const std::string_view type_f = line.substr(c1 + 1, c2 - c1 - 1);
  const std::string_view demand_f = line.substr(c2 + 1);
  bool range = false;

  if (!parse_field(time_f, e.time, range))
    return RowError{range ? RowFault::Overflow : RowFault::Malformed,
                    "bad time field '" + std::string(time_f) + "'", 1};
  if (!std::isfinite(e.time))
    return RowError{RowFault::NonFinite, "non-finite time '" + std::string(time_f) + "'", 1};
  if (!parse_field(type_f, e.type, range))
    return RowError{range ? RowFault::Overflow : RowFault::Malformed,
                    "bad type field '" + std::string(type_f) + "'", c1 + 2};
  if (!parse_field(demand_f, e.demand, range))
    return RowError{range ? RowFault::Overflow : RowFault::Malformed,
                    "bad demand field '" + std::string(demand_f) + "'", c2 + 2};
  if (e.demand < 0)
    return RowError{RowFault::NegativeDemand,
                    "negative demand '" + std::string(demand_f) + "'", c2 + 2};
  if (e.time < prev_time)
    return RowError{RowFault::OutOfOrder,
                    "timestamp '" + std::string(time_f) + "' earlier than preceding row", 1};
  return std::nullopt;
}

/// Tolerate Windows line endings: getline leaves a trailing '\r'.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// "'trace.csv': " prefix for fault messages, "" for anonymous streams.
std::string source_prefix(const ReadOptions& options) {
  return options.source_name.empty() ? "" : "'" + options.source_name + "': ";
}

[[noreturn]] void throw_row_error(const RowError& re, std::size_t lineno,
                                  const ReadOptions& options) {
  if (re.fault == RowFault::Overflow)
    throw OverflowError(source_prefix(options) + "trace field out of range: " + re.message +
                        " at input line " + std::to_string(lineno));
  throw ParseError(source_prefix(options) + "malformed trace row: " + re.message,
                   /*offending=*/"", lineno, re.column);
}

/// Folds the final ParseReport into the obs counters on every exit path of
/// read_event_trace_csv — normal return and strict-mode throw alike — so
/// "trace.rows_kept"/"trace.rows_dropped.*" always reflect what the parser
/// actually did.
struct [[maybe_unused]] ReportTally {
  const ParseReport& rep;

  ~ReportTally() {
    WLC_COUNTER_ADD("trace.rows_kept", static_cast<std::int64_t>(rep.rows_kept));
    WLC_COUNTER_ADD("trace.rows_dropped.malformed", static_cast<std::int64_t>(rep.malformed));
    WLC_COUNTER_ADD("trace.rows_dropped.non_finite", static_cast<std::int64_t>(rep.non_finite));
    WLC_COUNTER_ADD("trace.rows_dropped.negative_demand",
                    static_cast<std::int64_t>(rep.negative_demand));
    WLC_COUNTER_ADD("trace.rows_dropped.out_of_order",
                    static_cast<std::int64_t>(rep.out_of_order));
    WLC_COUNTER_ADD("trace.rows_dropped.overflow", static_cast<std::int64_t>(rep.overflow));
  }
};

}  // namespace

std::string ParseReport::to_string() const {
  std::ostringstream os;
  os << "rows: " << rows_total << " total, " << rows_kept << " kept, " << rows_dropped()
     << " dropped";
  if (malformed) os << "; malformed: " << malformed;
  if (non_finite) os << "; non-finite: " << non_finite;
  if (negative_demand) os << "; negative demand: " << negative_demand;
  if (out_of_order) os << "; out-of-order: " << out_of_order;
  if (overflow) os << "; overflow: " << overflow;
  for (const auto& s : samples) os << "\n  " << s;
  return os.str();
}

EventTrace read_event_trace_csv(std::istream& is, ParsePolicy policy, ParseReport* report,
                                const ReadOptions& options) {
  WLC_TRACE_SPAN("trace.parse_csv");
  static constexpr std::size_t kMaxSamples = 8;
  // Poll cadence for the cancel token / deadline: cheap relative to parsing
  // a row, frequent enough that a trip aborts within a few hundred rows.
  static constexpr std::size_t kCheckStride = 256;
  ParseReport local;
  ParseReport& rep = report ? *report : local;
  rep = ParseReport{};
  const ReportTally tally{rep};
  const runtime::RunPolicy* rp = options.policy;
  const std::int64_t max_rows = rp ? rp->budget.max_trace_rows : 0;

  EventTrace out;
  std::string line;
  if (!std::getline(is, line))
    throw ParseError(source_prefix(options) + "empty trace file", "", 1);
  strip_cr(line);
  if (line != "time,type,demand")
    throw ParseError(source_prefix(options) + "unexpected trace header", line, 1);

  std::size_t lineno = 1;
  std::int64_t rows_shed = 0;  ///< counted-but-not-kept rows past the row budget
  TimeSec prev_time = -std::numeric_limits<TimeSec>::infinity();
  while (std::getline(is, line)) {
    ++lineno;
    if (rp && lineno % kCheckStride == 0) rp->checkpoint("trace ingestion");
    strip_cr(line);
    if (line.empty()) continue;
    ++rep.rows_total;
    if (max_rows > 0 && static_cast<std::int64_t>(rep.rows_kept) >= max_rows) {
      if (rp->on_budget == runtime::OnBudget::Fail)
        throw BudgetExceededError(
            "trace_rows",
            source_prefix(options) + "trace exceeds the row budget of " +
                std::to_string(max_rows) + " at input line " + std::to_string(lineno),
            std::to_string(max_rows), __FILE__, __LINE__);
      // Degrade: keep counting so the report states the exact seen/kept
      // split, but spend no parsing on rows that will be shed anyway.
      ++rows_shed;
      continue;
    }
    EventRecord e;
    if (const auto err = parse_row(line, prev_time, e)) {
      if (policy == ParsePolicy::Strict) throw_row_error(*err, lineno, options);
      ++counter_for(rep, err->fault);
      if (rep.samples.size() < kMaxSamples)
        rep.samples.push_back((options.source_name.empty() ? "line " : options.source_name + ":") +
                              std::to_string(lineno) + ": " + err->message);
      continue;
    }
    prev_time = e.time;
    out.push_back(e);
    ++rep.rows_kept;
  }
  if (rows_shed > 0) {
    WLC_COUNTER_ADD("runtime.degradations", 1);
    WLC_COUNTER_ADD("runtime.shed_rows", rows_shed);
    if (options.degradation) {
      options.degradation->rows_requested += static_cast<std::int64_t>(rep.rows_total);
      options.degradation->rows_used += static_cast<std::int64_t>(rep.rows_kept);
      options.degradation->note(
          "row budget kept the first " + std::to_string(rep.rows_kept) + " of " +
          std::to_string(rep.rows_total) + " data rows" +
          (options.source_name.empty() ? "" : " of '" + options.source_name + "'") +
          " (bounds certify the ingested prefix only)");
    }
  }
  return out;
}

EventTrace read_event_trace_csv(std::istream& is, ParsePolicy policy, ParseReport* report) {
  return read_event_trace_csv(is, policy, report, ReadOptions{});
}

EventTrace read_event_trace_csv(std::istream& is) {
  return read_event_trace_csv(is, ParsePolicy::Strict, nullptr, ReadOptions{});
}

void write_arrival_curve_csv(std::ostream& os, const EmpiricalArrivalCurve& c) {
  os << "delta,events\n";
  os.precision(12);
  for (const auto& [x, y] : c.points()) os << x << ',' << y << '\n';
}

}  // namespace wlc::trace
