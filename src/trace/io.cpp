#include "trace/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wlc::trace {

void write_event_trace_csv(std::ostream& os, const EventTrace& t) {
  os << "time,type,demand\n";
  os.precision(12);
  for (const auto& e : t) os << e.time << ',' << e.type << ',' << e.demand << '\n';
}

EventTrace read_event_trace_csv(std::istream& is) {
  EventTrace out;
  std::string line;
  if (!std::getline(is, line)) throw std::invalid_argument("empty trace file");
  if (line != "time,type,demand")
    throw std::invalid_argument("unexpected trace header: " + line);
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    EventRecord e;
    char c1 = 0, c2 = 0;
    if (!(row >> e.time >> c1 >> e.type >> c2 >> e.demand) || c1 != ',' || c2 != ',')
      throw std::invalid_argument("malformed trace row at line " + std::to_string(lineno));
    out.push_back(e);
  }
  return out;
}

void write_arrival_curve_csv(std::ostream& os, const EmpiricalArrivalCurve& c) {
  os << "delta,events\n";
  os.precision(12);
  for (const auto& [x, y] : c.points()) os << x << ',' << y << '\n';
}

}  // namespace wlc::trace
