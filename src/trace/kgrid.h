// Window-size grids for trace analysis.
//
// Computing a workload curve γ(k) or a min-span arrival curve exactly for
// *every* k up to a 24-frame window (38 880 macroblocks in the paper's case
// study) over long traces is Θ(n·k_max) — prohibitive. The standard remedy,
// used here, is an exact computation on a *grid* of window sizes: every k up
// to `dense_limit` (where curves bend the most and bounds are most
// sensitive), then geometrically spaced sizes up to `max_k`. Between grid
// points the curve objects interpolate conservatively (step up for upper
// bounds, step down for lower bounds), so tightness degrades gracefully but
// soundness never does. DESIGN.md §5(1) calls this choice out for ablation.
#pragma once

#include <cstdint>
#include <vector>

namespace wlc::trace {

struct KGridSpec {
  std::int64_t max_k = 0;        ///< largest window size to characterize
  std::int64_t dense_limit = 0;  ///< every k in [1, dense_limit] exactly
  double growth = 1.10;          ///< geometric factor beyond the dense region
};

/// Strictly increasing window sizes: 1..dense_limit, then geometric growth,
/// always including max_k itself. dense_limit is clamped to max_k.
std::vector<std::int64_t> make_kgrid(const KGridSpec& spec);

}  // namespace wlc::trace
