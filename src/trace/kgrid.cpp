#include "trace/kgrid.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace wlc::trace {

std::vector<std::int64_t> make_kgrid(const KGridSpec& spec) {
  WLC_REQUIRE(spec.max_k >= 1, "grid needs max_k >= 1");
  WLC_REQUIRE(spec.growth > 1.0, "geometric growth factor must exceed 1");
  const std::int64_t dense = std::min(std::max<std::int64_t>(spec.dense_limit, 1), spec.max_k);
  std::vector<std::int64_t> ks;
  for (std::int64_t k = 1; k <= dense; ++k) ks.push_back(k);
  double next = static_cast<double>(dense) * spec.growth;
  while (ks.back() < spec.max_k) {
    auto k = static_cast<std::int64_t>(std::llround(next));
    k = std::max(k, ks.back() + 1);
    k = std::min(k, spec.max_k);
    ks.push_back(k);
    next = static_cast<double>(k) * spec.growth;
  }
  return ks;
}

}  // namespace wlc::trace
