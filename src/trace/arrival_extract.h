// Extraction of empirical arrival curves from timestamp traces via the
// span-inversion method.
//
// Instead of sweeping windows of every length Δ (quadratic in time
// resolution), we invert the problem: for each event count k compute
//
//   minspan(k) = min_i ( t[i+k-1] - t[i] )   — tightest k events ever get,
//   maxspan(k) = max_i ( t[i+k-1] - t[i] )   — loosest k consecutive events,
//
// each O(n) per k. Then, for closed windows,
//
//   ᾱᵘ(Δ) = max{ k : minspan(k) <= Δ },
//   ᾱˡ(Δ) = max{ k : maxspan(k+1) <= Δ }   (a window of length Δ always
//            contains >= k events iff every k+1 consecutive events span <= Δ,
//            windows restricted to the observation interval).
//
// Computed on a KGrid of k values; between grid points the resulting step
// curves take the conservative side (see arrival_curve.h). For the upper
// curve the full trace length is always appended to the grid so the top
// step is sound.
//
// Engines. Both span families are gap extrema over the timestamp array at
// shift k−1, so they share common::SlidingExtrema with the workload
// extractor: one block-pruned index per spans() call answers the whole
// grid, with the single-pass streaming kernel as the budget-bounded
// fallback and the per-k scans retained as the minspans_oracle /
// maxspans_oracle kernels. Every engine is bit-identical to the oracle —
// the candidates are the same IEEE subtractions, the reductions are
// order-independent (validated-ordered inputs, no NaNs) — pinned by the
// rmq-labelled differential suite. The trailing GapEngine parameter is a
// test/benchmark hook; leave it Auto.
//
// Parallel engine. Each grid entry is independent given the shared array
// (and index), so the overloads taking a common::ThreadPool partition the
// k-grid across workers; results land in grid-indexed slots and every
// per-entry reduction runs single-threaded in ascending window order, so
// parallel output is bit-identical to the pool-less functions.
//
// Run policy. Every function takes an optional trailing
// runtime::RunPolicy*; when armed, the scans poll the cancel token /
// deadline before each grid entry and every few thousand values inside an
// index build or streaming pass (same cadence serial and pooled, so a trip
// aborts within one bounded chunk either way). Arrival grids are typically
// caller-sized, so no budget axis sheds work here — callers wanting a grid
// budget coarsen the k-grid with runtime::apply_grid_budget first — but an
// armed resident-byte cap steers Auto away from the index when its
// auxiliary memory would not fit (streaming fallback, identical output).
#pragma once

#include <span>

#include "common/rmq.h"
#include "common/thread_pool.h"
#include "runtime/runtime.h"
#include "trace/arrival_curve.h"
#include "trace/traces.h"

namespace wlc::trace {

/// minspan(k) for each k in `ks` (each k must satisfy 1 <= k <= trace size).
std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy = nullptr,
                              common::GapEngine engine = common::GapEngine::Auto);
/// maxspan(k) for each k in `ks`.
std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy = nullptr,
                              common::GapEngine engine = common::GapEngine::Auto);

/// Parallel span computations: k-grid partitioned across `pool`,
/// bit-identical to the serial overloads.
std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool,
                              const runtime::RunPolicy* policy = nullptr,
                              common::GapEngine engine = common::GapEngine::Auto);
std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool,
                              const runtime::RunPolicy* policy = nullptr,
                              common::GapEngine engine = common::GapEngine::Auto);

/// The retained O(n·|grid|) per-k reference scans, regardless of what Auto
/// would pick — the differential anchors for the fast engines.
std::vector<TimeSec> minspans_oracle(const TimestampTrace& ts,
                                     std::span<const std::int64_t> ks,
                                     const runtime::RunPolicy* policy = nullptr);
std::vector<TimeSec> maxspans_oracle(const TimestampTrace& ts,
                                     std::span<const std::int64_t> ks,
                                     const runtime::RunPolicy* policy = nullptr);

/// Upper arrival curve of the trace on the given k-grid (trace length is
/// appended automatically). Requires a non-empty, time-ordered trace.
EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy = nullptr,
                                            common::GapEngine engine = common::GapEngine::Auto);

/// Lower arrival curve of the trace on the given k-grid.
EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy = nullptr,
                                            common::GapEngine engine = common::GapEngine::Auto);

/// Parallel arrival-curve extraction: the span scans fan across `pool`, the
/// step-merge stays serial. Bit-identical to the serial overloads.
EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy = nullptr,
                                            common::GapEngine engine = common::GapEngine::Auto);
EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy = nullptr,
                                            common::GapEngine engine = common::GapEngine::Auto);

/// Reference implementation — direct window sweep at one Δ; O(n). Used by
/// tests to validate the span-inversion extractors.
EventCount max_events_in_window(const TimestampTrace& ts, TimeSec delta);
EventCount min_events_in_window(const TimestampTrace& ts, TimeSec delta);

}  // namespace wlc::trace
