// Extraction of empirical arrival curves from timestamp traces via the
// span-inversion method.
//
// Instead of sweeping windows of every length Δ (quadratic in time
// resolution), we invert the problem: for each event count k compute
//
//   minspan(k) = min_i ( t[i+k-1] - t[i] )   — tightest k events ever get,
//   maxspan(k) = max_i ( t[i+k-1] - t[i] )   — loosest k consecutive events,
//
// each O(n) per k. Then, for closed windows,
//
//   ᾱᵘ(Δ) = max{ k : minspan(k) <= Δ },
//   ᾱˡ(Δ) = max{ k : maxspan(k+1) <= Δ }   (a window of length Δ always
//            contains >= k events iff every k+1 consecutive events span <= Δ,
//            windows restricted to the observation interval).
//
// Computed on a KGrid of k values; between grid points the resulting step
// curves take the conservative side (see arrival_curve.h). For the upper
// curve the full trace length is always appended to the grid so the top
// step is sound.
//
// Parallel engine. Each k's span scan is independent, so the overloads
// taking a common::ThreadPool partition the k-grid across workers. Every k
// is still scanned i = 0..n-k in ascending order by one thread, and results
// land in grid-indexed slots, so the (floating-point) min/max reductions
// run in exactly the serial order and parallel output is bit-identical to
// the pool-less functions — which remain the serial reference oracle.
// Run policy. Every function takes an optional trailing
// runtime::RunPolicy*; when armed, the span scans poll the cancel token /
// deadline before each grid entry (same cadence serial and pooled, so a
// trip aborts within one k's scan either way). Arrival grids are typically
// caller-sized, so no budget axis applies here — callers wanting a grid
// budget coarsen the k-grid with runtime::apply_grid_budget first.
#pragma once

#include <span>

#include "common/thread_pool.h"
#include "runtime/runtime.h"
#include "trace/arrival_curve.h"
#include "trace/traces.h"

namespace wlc::trace {

/// minspan(k) for each k in `ks` (each k must satisfy 1 <= k <= trace size).
std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy = nullptr);
/// maxspan(k) for each k in `ks`.
std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              const runtime::RunPolicy* policy = nullptr);

/// Parallel span computations: k-grid partitioned across `pool`,
/// bit-identical to the serial overloads.
std::vector<TimeSec> minspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool,
                              const runtime::RunPolicy* policy = nullptr);
std::vector<TimeSec> maxspans(const TimestampTrace& ts, std::span<const std::int64_t> ks,
                              common::ThreadPool& pool,
                              const runtime::RunPolicy* policy = nullptr);

/// Upper arrival curve of the trace on the given k-grid (trace length is
/// appended automatically). Requires a non-empty, time-ordered trace.
EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy = nullptr);

/// Lower arrival curve of the trace on the given k-grid.
EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            const runtime::RunPolicy* policy = nullptr);

/// Parallel arrival-curve extraction: the span scans fan across `pool`, the
/// step-merge stays serial. Bit-identical to the serial overloads.
EmpiricalArrivalCurve extract_upper_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy = nullptr);
EmpiricalArrivalCurve extract_lower_arrival(const TimestampTrace& ts,
                                            std::span<const std::int64_t> ks,
                                            common::ThreadPool& pool,
                                            const runtime::RunPolicy* policy = nullptr);

/// Reference implementation — direct window sweep at one Δ; O(n). Used by
/// tests to validate the span-inversion extractors.
EventCount max_events_in_window(const TimestampTrace& ts, TimeSec delta);
EventCount min_events_in_window(const TimestampTrace& ts, TimeSec delta);

}  // namespace wlc::trace
