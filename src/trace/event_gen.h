// Conforming event-stream generators.
//
// The dual of extraction: given an *analytic* event model (the kind used for
// hard real-time guarantees), generate concrete timestamp traces that
// provably conform to its arrival curves — including adversarial ones that
// push against the upper bound. Used to validate analyses end-to-end
// (any analysis result derived from the model must hold on every generated
// trace) and to drive the simulators with specification-level inputs.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "curve/pwl_curve.h"
#include "trace/traces.h"

namespace wlc::trace {

/// Periodic stream with bounded jitter and a minimum spacing (the classical
/// PJD event model): event i nominally at i·period, displaced by at most
/// `jitter`, never closer than `min_spacing` to its predecessor.
struct PjdModel {
  TimeSec period = 1.0;
  TimeSec jitter = 0.0;
  TimeSec min_spacing = 0.0;  ///< 0: only the period constrains spacing

  /// Upper/lower arrival curves of the model (closed-window convention).
  curve::PwlCurve upper_curve(TimeSec horizon) const;
  curve::PwlCurve lower_curve() const;

  /// Random conforming trace of n events.
  TimestampTrace generate(EventCount n, common::Rng& rng) const;
  /// Adversarial conforming trace: maximal early/late displacement pattern
  /// (front-loaded bursts) that stresses the upper curve.
  TimestampTrace generate_adversarial(EventCount n) const;
};

/// Sporadic stream: inter-arrival times drawn from [t_min, t_max].
struct SporadicModel {
  TimeSec t_min = 1.0;
  TimeSec t_max = 2.0;

  curve::PwlCurve upper_curve() const;  ///< ⌊Δ/t_min⌋ + 1
  curve::PwlCurve lower_curve() const;  ///< ⌊Δ/t_max⌋

  TimestampTrace generate(EventCount n, common::Rng& rng) const;
  /// Back-to-back at t_min — the exact worst case of the upper curve.
  TimestampTrace generate_adversarial(EventCount n) const;
};

}  // namespace wlc::trace
