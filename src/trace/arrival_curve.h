// Empirical event-arrival curves ᾱ(Δ) extracted from timestamp traces.
//
// ᾱᵘ(Δ) bounds from above the number of events seen in any closed window
// [t, t+Δ] of the observed trace; ᾱˡ(Δ) bounds it from below for windows
// inside the observation interval. Values are exact integers; between the
// extraction grid's breakpoints the curve steps conservatively (up for the
// upper bound, down for the lower bound), so the object is sound for the
// trace it was extracted from at every Δ — the paper's §2 caveat that
// trace-derived curves certify that trace (or trace family) only, not the
// open environment, applies unchanged.
#pragma once

#include <utility>
#include <vector>

#include "common/types.h"

namespace wlc::trace {

class EmpiricalArrivalCurve {
 public:
  enum class Bound { Upper, Lower };

  /// Breakpoints (Δᵢ, kᵢ): Δ strictly increasing starting at 0, k
  /// non-decreasing. eval uses floor semantics: the value at the largest
  /// breakpoint with Δᵢ <= Δ; beyond the last breakpoint the curve is flat
  /// (sound for an observed trace: Upper saturates at the trace length,
  /// Lower simply stops growing).
  EmpiricalArrivalCurve(Bound bound, std::vector<std::pair<TimeSec, EventCount>> points);

  EventCount eval(TimeSec delta) const;

  Bound bound() const { return bound_; }
  const std::vector<std::pair<TimeSec, EventCount>>& points() const { return points_; }
  /// Largest breakpoint position (the curve is flat after it).
  TimeSec last_breakpoint() const { return points_.back().first; }
  /// Largest value (reached at/after the last breakpoint).
  EventCount max_events() const { return points_.back().second; }
  /// max_events / last_breakpoint — the observed long-run event rate.
  double long_run_rate() const;

  /// Pointwise max of two upper curves (resp. min of two lower curves) —
  /// the cross-trace combination used by the paper's case study ("taking
  /// maximum over all respective curves of individual video clips").
  static EmpiricalArrivalCurve combine(const EmpiricalArrivalCurve& a,
                                       const EmpiricalArrivalCurve& b);

 private:
  Bound bound_;
  std::vector<std::pair<TimeSec, EventCount>> points_;
};

}  // namespace wlc::trace
