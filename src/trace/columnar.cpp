#include "trace/columnar.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/atomic_file.h"
#include "common/crc32.h"
#include "common/error.h"
#include "obs/obs.h"

namespace wlc::trace {

namespace {

/// Little-endian scalar append/fetch. The fetches go through memcpy so the
/// decoder is alignment-safe on any byte buffer (the fuzz matrix runs it
/// over arbitrarily sliced strings under UBSan); on little-endian hosts the
/// compiler lowers each to a plain load.
static_assert(std::endian::native == std::endian::little,
              "the columnar trace format is little-endian on disk and this "
              "reader assumes a little-endian host");

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get(std::string_view bytes, std::size_t offset) {
  T v;
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

[[noreturn]] void fail(const std::string& name, const std::string& message,
                       std::string offending = "") {
  throw ParseError((name.empty() ? "columnar trace" : name) + ": " + message,
                   std::move(offending), 0, 0, __FILE__, __LINE__);
}

/// Structural + checksum + semantic validation; returns the row count.
/// Every fault names the byte offset it was detected at, so a corruption
/// report points into the file, not just at it.
std::uint64_t validate(std::string_view bytes, const std::string& name) {
  if (bytes.size() < kColumnarHeaderBytes)
    fail(name, "truncated header at offset " + std::to_string(bytes.size()) +
                   ": the header needs " + std::to_string(kColumnarHeaderBytes) + " bytes");
  if (bytes.substr(0, kColumnarMagic.size()) != kColumnarMagic)
    fail(name, "bad magic at offset 0 (not a WLCCOL columnar trace)");
  const auto version = get<std::uint32_t>(bytes, 8);
  if (version != kColumnarVersion)
    fail(name,
         "unsupported version " + std::to_string(version) + " at offset 8 (this reader knows " +
             std::to_string(kColumnarVersion) + ")",
         std::to_string(version));
  const auto rows = get<std::uint64_t>(bytes, 16);
  // Exact-size check before anything touches the payload: it subsumes both
  // truncation (too short) and trailing garbage (too long), and a hostile
  // row count can neither over-allocate nor drive reads past the buffer.
  // Guard the multiply: rows is attacker-controlled.
  const std::uint64_t payload = bytes.size() - kColumnarHeaderBytes;
  if (rows > payload / kColumnarRowBytes || rows * kColumnarRowBytes != payload)
    fail(name,
         "size mismatch at offset 16: " + std::to_string(rows) + " rows require " +
             std::to_string(kColumnarHeaderBytes) + "+" + std::to_string(kColumnarRowBytes) +
             "*rows bytes, file has " + std::to_string(bytes.size()),
         std::to_string(rows));
  const auto want_crc = get<std::uint32_t>(bytes, 12);
  const auto got_crc = common::crc32(bytes.substr(kColumnarHeaderBytes));
  if (want_crc != got_crc)
    fail(name, "payload checksum mismatch at offset 12: header says " +
                   std::to_string(want_crc) + ", payload hashes to " + std::to_string(got_crc));
  // Semantic validation behind the checksum, mirroring strict CSV
  // ingestion: finite non-decreasing times, non-negative demands.
  double prev = -std::numeric_limits<double>::infinity();
  for (std::uint64_t r = 0; r < rows; ++r) {
    const std::size_t off = kColumnarHeaderBytes + r * sizeof(double);
    const auto t = get<double>(bytes, off);
    if (!std::isfinite(t))
      fail(name, "non-finite time in row " + std::to_string(r + 1) + " at offset " +
                     std::to_string(off));
    if (t < prev)
      fail(name, "timestamps decrease in row " + std::to_string(r + 1) + " at offset " +
                     std::to_string(off));
    prev = t;
  }
  for (std::uint64_t r = 0; r < rows; ++r) {
    const std::size_t off = kColumnarHeaderBytes + rows * sizeof(double) + r * sizeof(Cycles);
    const auto d = get<Cycles>(bytes, off);
    if (d < 0)
      fail(name,
           "negative demand in row " + std::to_string(r + 1) + " at offset " +
               std::to_string(off),
           std::to_string(d));
  }
  return rows;
}

}  // namespace

std::string encode_columnar(const EventTrace& events) {
  const auto n = static_cast<std::uint64_t>(events.size());
  std::string out;
  out.reserve(kColumnarHeaderBytes + events.size() * kColumnarRowBytes);
  out.append(kColumnarMagic);
  put<std::uint32_t>(out, kColumnarVersion);
  put<std::uint32_t>(out, 0);  // CRC patched below, once the payload exists
  put<std::uint64_t>(out, n);
  for (const auto& e : events) put<double>(out, e.time);
  for (const auto& e : events) put<std::int64_t>(out, e.demand);
  for (const auto& e : events) put<std::int32_t>(out, static_cast<std::int32_t>(e.type));
  const std::uint32_t crc =
      common::crc32(std::string_view(out).substr(kColumnarHeaderBytes));
  std::memcpy(out.data() + 12, &crc, sizeof crc);
  return out;
}

EventTrace decode_columnar(std::string_view bytes, const std::string& source_name) {
  WLC_TRACE_SPAN("trace.decode_columnar");
  const std::uint64_t rows = validate(bytes, source_name);
  EventTrace events(static_cast<std::size_t>(rows));
  const std::size_t times = kColumnarHeaderBytes;
  const std::size_t demands = times + rows * sizeof(double);
  const std::size_t types = demands + rows * sizeof(Cycles);
  for (std::uint64_t r = 0; r < rows; ++r) {
    events[r].time = get<double>(bytes, times + r * sizeof(double));
    events[r].demand = get<Cycles>(bytes, demands + r * sizeof(Cycles));
    events[r].type = get<std::int32_t>(bytes, types + r * sizeof(std::int32_t));
  }
  WLC_COUNTER_ADD("trace.columnar_rows_read", static_cast<std::int64_t>(rows));
  return events;
}

bool write_columnar_file(const std::string& path, const EventTrace& events,
                         std::string* error) {
  return common::atomic_write_file(path, encode_columnar(events), error);
}

bool sniff_columnar(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[8] = {};
  in.read(head, sizeof head);
  return in.gcount() == static_cast<std::streamsize>(kColumnarMagic.size()) &&
         std::string_view(head, sizeof head) == kColumnarMagic;
}

ColumnarTraceView ColumnarTraceView::open(const std::string& path) {
  WLC_TRACE_SPAN("trace.columnar_open");
  ColumnarTraceView view;
  std::string error;
  if (!common::MappedFile::open(path, &view.map_, &error))
    throw DomainError("cannot open columnar trace", error, __FILE__, __LINE__);
  view.rows_ = static_cast<std::size_t>(validate(view.map_.view(), path));
  WLC_COUNTER_ADD("trace.columnar_rows_read", static_cast<std::int64_t>(view.rows_));
  return view;
}

std::span<const TimeSec> ColumnarTraceView::times() const {
  // The mapping base is page-aligned and the time column starts at offset
  // 24, so the reinterpreted pointers below are correctly aligned for every
  // column (see the layout table in the header).
  const char* base = map_.view().data();
  return {reinterpret_cast<const TimeSec*>(base + kColumnarHeaderBytes), rows_};
}

std::span<const Cycles> ColumnarTraceView::demands() const {
  const char* base = map_.view().data();
  return {reinterpret_cast<const Cycles*>(base + kColumnarHeaderBytes + rows_ * sizeof(TimeSec)),
          rows_};
}

std::span<const std::int32_t> ColumnarTraceView::types() const {
  const char* base = map_.view().data();
  return {reinterpret_cast<const std::int32_t*>(base + kColumnarHeaderBytes +
                                                rows_ * (sizeof(TimeSec) + sizeof(Cycles))),
          rows_};
}

EventTrace ColumnarTraceView::to_events(std::size_t max_rows) const {
  const std::size_t n = std::min(rows_, max_rows);
  EventTrace events(n);
  const auto t = times();
  const auto d = demands();
  const auto y = types();
  for (std::size_t r = 0; r < n; ++r) events[r] = {t[r], y[r], d[r]};
  return events;
}

namespace {

/// Row budget, mirroring read_event_trace_csv: Fail throws at the first
/// row past the budget, Degrade keeps the leading rows and records the
/// kept/seen split (the surviving prefix is still a well-formed trace —
/// times stay ordered under truncation). Returns the rows to keep.
std::size_t budgeted_rows(std::size_t rows, const ReadOptions& options, const std::string& name) {
  std::size_t keep = rows;
  const auto* policy = options.policy;
  if (policy && policy->budget.max_trace_rows > 0 &&
      static_cast<std::int64_t>(rows) > policy->budget.max_trace_rows) {
    if (policy->on_budget == runtime::OnBudget::Fail)
      throw BudgetExceededError("trace_rows",
                                name + " has " + std::to_string(rows) +
                                    " rows but the budget allows " +
                                    std::to_string(policy->budget.max_trace_rows),
                                std::to_string(rows), __FILE__, __LINE__);
    keep = static_cast<std::size_t>(policy->budget.max_trace_rows);
    WLC_COUNTER_ADD("runtime.degradations", 1);
    WLC_COUNTER_ADD("runtime.shed_rows", static_cast<std::int64_t>(rows - keep));
    if (options.degradation) {
      options.degradation->rows_requested += static_cast<std::int64_t>(rows);
      options.degradation->rows_used += static_cast<std::int64_t>(keep);
      options.degradation->note("row budget kept the first " + std::to_string(keep) + " of " +
                                std::to_string(rows) + " rows of " + name +
                                " (bounds certify the analyzed prefix only)");
    }
  }
  return keep;
}

}  // namespace

EventTrace read_columnar_trace(const std::string& path, const ReadOptions& options) {
  const std::string& name = options.source_name.empty() ? path : options.source_name;
  if (options.policy) options.policy->checkpoint("columnar trace ingestion");
  ColumnarTraceView view = ColumnarTraceView::open(path);
  const std::size_t keep = budgeted_rows(view.rows(), options, name);
  if (options.policy) options.policy->checkpoint("columnar trace ingestion");
  return view.to_events(keep);
}

std::size_t read_columnar_columns(const std::string& path, const ReadOptions& options,
                                  DemandTrace* demands, TimestampTrace* times) {
  const std::string& name = options.source_name.empty() ? path : options.source_name;
  if (options.policy) options.policy->checkpoint("columnar trace ingestion");
  ColumnarTraceView view = ColumnarTraceView::open(path);
  const std::size_t keep = budgeted_rows(view.rows(), options, name);
  if (options.policy) options.policy->checkpoint("columnar trace ingestion");
  if (demands) {
    const auto d = view.demands();
    demands->assign(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  if (times) {
    const auto t = view.times();
    times->assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  return keep;
}

}  // namespace wlc::trace
