#include "sim/components.h"

#include <algorithm>

#include "common/assert.h"

namespace wlc::sim {

Fifo::Fifo(std::int64_t capacity) : capacity_(capacity) {
  WLC_REQUIRE(capacity >= 0, "capacity must be non-negative (0 = unbounded)");
}

bool Fifo::push(const Item& item) {
  if (capacity_ > 0 && size() >= capacity_) {
    ++overflows_;
    return false;
  }
  items_.push_back(item);
  max_backlog_ = std::max(max_backlog_, size());
  return true;
}

Item Fifo::pop() {
  WLC_REQUIRE(!items_.empty(), "pop from empty FIFO");
  Item item = items_.front();
  items_.pop_front();
  return item;
}

TraceSource::TraceSource(Simulator& sim, Fifo& out, std::function<void()> on_arrival)
    : sim_(sim), out_(out), on_arrival_(std::move(on_arrival)) {}

void TraceSource::load(const trace::EventTrace& events) {
  WLC_REQUIRE(trace::is_time_ordered(events), "trace must be time-ordered");
  for (const auto& e : events) {
    WLC_REQUIRE(e.demand >= 0, "demands must be non-negative");
    sim_.schedule(e.time, [this, e] {
      out_.push(Item{e.time, e.demand});
      if (on_arrival_) on_arrival_();
    });
  }
}

PeServer::PeServer(Simulator& sim, Fifo& in, Hertz frequency)
    : sim_(sim), in_(in), frequency_(frequency) {
  WLC_REQUIRE(frequency > 0.0, "PE frequency must be positive");
}

void PeServer::set_dvs_policy(DvsPolicy policy) {
  WLC_REQUIRE(policy != nullptr, "policy must be callable");
  dvs_ = std::move(policy);
}

void PeServer::kick() {
  if (!busy_) start_next();
}

void PeServer::start_next() {
  if (in_.empty()) {
    busy_ = false;
    return;
  }
  // The policy sees the backlog before the pop (the item it will serve plus
  // everything queued behind it).
  const Hertz f = dvs_ ? dvs_(in_.size()) : frequency_;
  WLC_REQUIRE(f > 0.0, "DVS policy returned a non-positive clock");
  const Item item = in_.pop();
  busy_ = true;
  const TimeSec service = static_cast<double>(item.demand) / f;
  busy_time_ += service;
  energy_ += static_cast<double>(item.demand) * f * f;  // κ=1, cubic power law
  sim_.schedule_in(service, [this, item] {
    ++completed_;
    max_latency_ = std::max(max_latency_, sim_.now() - item.arrival);
    start_next();
  });
}

namespace {

PipelineStats run_pipeline(const trace::EventTrace& events, Hertz frequency,
                           PeServer::DvsPolicy policy, std::int64_t capacity) {
  Simulator sim;
  Fifo fifo(capacity);
  PeServer server(sim, fifo, frequency);
  if (policy) server.set_dvs_policy(std::move(policy));
  TraceSource source(sim, fifo, [&server] { server.kick(); });
  source.load(events);
  sim.run();

  PipelineStats stats;
  stats.max_backlog = fifo.max_backlog();
  stats.overflows = fifo.overflows();
  stats.completed = server.completed();
  stats.makespan = sim.now();
  stats.max_latency = server.max_latency();
  stats.utilization = stats.makespan > 0.0 ? server.busy_time() / stats.makespan : 0.0;
  stats.energy = server.energy();
  return stats;
}

}  // namespace

PipelineStats run_fifo_pipeline(const trace::EventTrace& events, Hertz frequency,
                                std::int64_t capacity) {
  return run_pipeline(events, frequency, nullptr, capacity);
}

PipelineStats run_dvs_pipeline(const trace::EventTrace& events, PeServer::DvsPolicy policy,
                               std::int64_t capacity) {
  WLC_REQUIRE(policy != nullptr, "DVS pipeline needs a policy");
  return run_pipeline(events, 1.0, std::move(policy), capacity);
}

PipelineStats queue_recursion_pipeline(const trace::EventTrace& events, Hertz frequency) {
  WLC_REQUIRE(frequency > 0.0, "PE frequency must be positive");
  WLC_REQUIRE(trace::is_time_ordered(events), "trace must be time-ordered");
  const std::size_t n = events.size();
  PipelineStats stats;
  if (n == 0) return stats;

  std::vector<TimeSec> start(n);
  std::vector<TimeSec> finish(n);
  TimeSec prev_finish = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    start[i] = std::max(events[i].time, prev_finish);
    finish[i] = start[i] + static_cast<double>(events[i].demand) / frequency;
    prev_finish = finish[i];
    stats.max_latency = std::max(stats.max_latency, finish[i] - events[i].time);
  }
  stats.completed = static_cast<std::int64_t>(n);
  stats.makespan = finish.back();
  double busy = 0.0;
  for (const auto& e : events) {
    busy += static_cast<double>(e.demand) / frequency;
    stats.energy += static_cast<double>(e.demand) * frequency * frequency;
  }
  stats.utilization = stats.makespan > 0.0 ? busy / stats.makespan : 0.0;

  // Backlog high-water mark at arrival instants, reproducing the event-driven
  // ordering: when item i is pushed, every earlier item that *started* before
  // t_i has left the FIFO, as has any same-instant earlier arrival that went
  // straight into service; a queued item whose service starts exactly at t_i
  // leaves only after the push (completion events are processed after
  // same-time arrivals).
  std::int64_t popped = 0;  // two-pointer over the non-decreasing start[]
  for (std::size_t i = 0; i < n; ++i) {
    while (static_cast<std::size_t>(popped) < i &&
           (start[static_cast<std::size_t>(popped)] < events[i].time ||
            (start[static_cast<std::size_t>(popped)] == events[i].time &&
             events[static_cast<std::size_t>(popped)].time == events[i].time)))
      ++popped;
    const std::int64_t backlog = static_cast<std::int64_t>(i) + 1 - popped;
    stats.max_backlog = std::max(stats.max_backlog, backlog);
  }
  return stats;
}

}  // namespace wlc::sim
