// Transaction-level components for streaming-architecture simulation:
// trace-driven source → FIFO → frequency-scaled PE server. Together they
// model the paper's Fig. 5 right half (the FIFO in front of PE2 and PE2
// itself) and measure the backlogs of Fig. 7.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>

#include "common/types.h"
#include "sim/kernel.h"
#include "trace/traces.h"

namespace wlc::sim {

/// Work item flowing through the pipeline (a macroblock in the case study).
struct Item {
  TimeSec arrival = 0.0;
  Cycles demand = 0;
};

/// Bounded FIFO with a high-water mark. capacity == 0 means unbounded (used
/// to observe how far a backlog *would* grow).
class Fifo {
 public:
  explicit Fifo(std::int64_t capacity = 0);

  /// Returns false (and counts an overflow) if the buffer is full.
  bool push(const Item& item);
  bool empty() const { return items_.empty(); }
  std::int64_t size() const { return static_cast<std::int64_t>(items_.size()); }
  Item pop();

  std::int64_t capacity() const { return capacity_; }
  std::int64_t max_backlog() const { return max_backlog_; }
  std::int64_t overflows() const { return overflows_; }

 private:
  std::int64_t capacity_;
  std::deque<Item> items_;
  std::int64_t max_backlog_ = 0;
  std::int64_t overflows_ = 0;
};

/// Emits a fixed item sequence into a FIFO at the items' arrival times and
/// pokes the server on every arrival.
class TraceSource {
 public:
  TraceSource(Simulator& sim, Fifo& out, std::function<void()> on_arrival);

  /// Schedules the whole trace (arrival times must be non-decreasing).
  void load(const trace::EventTrace& events);

 private:
  Simulator& sim_;
  Fifo& out_;
  std::function<void()> on_arrival_;
};

/// Work-conserving PE: whenever idle and the FIFO is non-empty, pops one
/// item and busies itself for demand/frequency seconds.
///
/// Optionally frequency-scaled: a DvsPolicy picks the clock for each item
/// from the backlog it sees at service start (a threshold policy models the
/// usual two-mode DVS governor). Energy is accounted per item as
/// demand · f^(e-1) (normalized κ = 1, e = 3; see rtc/energy.h) so constant-
/// clock and DVS runs can be compared directly.
class PeServer {
 public:
  /// Clock chosen per item from the FIFO backlog at service start.
  using DvsPolicy = std::function<Hertz(std::int64_t backlog)>;

  PeServer(Simulator& sim, Fifo& in, Hertz frequency);

  /// Replaces the fixed clock by a DVS policy.
  void set_dvs_policy(DvsPolicy policy);

  /// Call when new work may be available (TraceSource's on_arrival).
  void kick();

  std::int64_t completed() const { return completed_; }
  TimeSec busy_time() const { return busy_time_; }
  /// Worst item sojourn (pop-to-done plus queueing) observed so far.
  TimeSec max_latency() const { return max_latency_; }
  /// Normalized energy consumed so far (κ = 1, cubic power law).
  double energy() const { return energy_; }

 private:
  void start_next();

  Simulator& sim_;
  Fifo& in_;
  Hertz frequency_;
  DvsPolicy dvs_;
  bool busy_ = false;
  std::int64_t completed_ = 0;
  TimeSec busy_time_ = 0.0;
  TimeSec max_latency_ = 0.0;
  double energy_ = 0.0;
};

/// One-call pipeline: plays `events` into a FIFO of `capacity` (0 =
/// unbounded) served by a PE at `frequency`; runs to drain.
struct PipelineStats {
  std::int64_t max_backlog = 0;   ///< items, high-water mark
  std::int64_t overflows = 0;     ///< items dropped (bounded FIFO only)
  std::int64_t completed = 0;
  TimeSec makespan = 0.0;         ///< last completion time
  TimeSec max_latency = 0.0;      ///< worst arrival-to-completion time
  double utilization = 0.0;       ///< busy / makespan
  double energy = 0.0;            ///< normalized (κ=1, cubic power law)
};

PipelineStats run_fifo_pipeline(const trace::EventTrace& events, Hertz frequency,
                                std::int64_t capacity = 0);

/// Frequency-scaled variant: the PE picks its clock per item via `policy`
/// (see PeServer::DvsPolicy).
PipelineStats run_dvs_pipeline(const trace::EventTrace& events, PeServer::DvsPolicy policy,
                               std::int64_t capacity = 0);

/// Analytic cross-check of run_fifo_pipeline for the unbounded FIFO: the
/// classic single-server queue recursion
///   finish_i = max(arrival_i, finish_{i-1}) + demand_i/frequency,
/// with the backlog high-water mark evaluated at arrival instants.
/// Tests assert it agrees with the event-driven simulation exactly.
PipelineStats queue_recursion_pipeline(const trace::EventTrace& events, Hertz frequency);

}  // namespace wlc::sim
