#include "sim/kernel.h"

#include "common/assert.h"

namespace wlc::sim {

void Simulator::schedule(TimeSec t, Handler fn) {
  WLC_REQUIRE(t >= now_, "cannot schedule into the past");
  WLC_REQUIRE(fn != nullptr, "handler must be callable");
  queue_.push(Entry{t, next_seq_++, std::move(fn)});
}

std::int64_t Simulator::run(TimeSec until) {
  std::int64_t executed = 0;
  while (!queue_.empty() && queue_.top().t <= until) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the handler (cheap relative to simulated work).
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.t;
    e.fn();
    ++executed;
  }
  if (!queue_.empty() && now_ < until) now_ = until;
  return executed;
}

}  // namespace wlc::sim
