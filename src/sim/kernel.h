// Minimal discrete-event simulation kernel.
//
// A time-ordered event queue with deterministic tie-breaking (insertion
// order at equal timestamps). Components (see components.h) schedule
// closures against it — the transaction-level stand-in for the paper's
// SystemC/SimpleScalar platform model, sufficient because the case study
// only needs event ordering and cycle-accurate service times, not
// microarchitecture.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace wlc::sim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void schedule(TimeSec t, Handler fn);
  /// Schedules `fn` `dt` seconds from now.
  void schedule_in(TimeSec dt, Handler fn) { schedule(now_ + dt, std::move(fn)); }

  /// Runs events in time order until the queue drains or the next event is
  /// past `until`. Returns the number of events executed.
  std::int64_t run(TimeSec until = 1e300);

  TimeSec now() const { return now_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Entry {
    TimeSec t;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  TimeSec now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace wlc::sim
