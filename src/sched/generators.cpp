#include "sched/generators.h"

#include "common/assert.h"
#include "workload/extract.h"

namespace wlc::sched {

FixedDemand::FixedDemand(Cycles c) : c_(c) { WLC_REQUIRE(c >= 0, "demand must be non-negative"); }

CyclicDemand::CyclicDemand(std::vector<Cycles> pattern, std::size_t phase)
    : pattern_(std::move(pattern)), phase_(phase % std::max<std::size_t>(pattern_.size(), 1)),
      pos_(phase_) {
  WLC_REQUIRE(!pattern_.empty(), "pattern must be non-empty");
  for (Cycles c : pattern_) WLC_REQUIRE(c >= 0, "demands must be non-negative");
}

Cycles CyclicDemand::next() {
  const Cycles c = pattern_[pos_];
  pos_ = (pos_ + 1) % pattern_.size();
  return c;
}

namespace {
/// Windows of the infinite repetition of `p` up to length k_max are covered
/// by windows of p repeated enough times: unroll to length k_max + |p|.
std::vector<Cycles> unroll(const std::vector<Cycles>& p, EventCount k_max) {
  std::vector<Cycles> out;
  const auto len = static_cast<EventCount>(p.size());
  const EventCount total = k_max + len;
  out.reserve(static_cast<std::size_t>(total));
  for (EventCount i = 0; i < total; ++i)
    out.push_back(p[static_cast<std::size_t>(i % len)]);
  return out;
}
}  // namespace

workload::WorkloadCurve CyclicDemand::upper_curve(EventCount k_max) const {
  return workload::extract_upper_dense(unroll(pattern_, k_max), k_max);
}

workload::WorkloadCurve CyclicDemand::lower_curve(EventCount k_max) const {
  return workload::extract_lower_dense(unroll(pattern_, k_max), k_max);
}

UniformRandomDemand::UniformRandomDemand(Cycles lo, Cycles hi, std::uint64_t seed)
    : lo_(lo), hi_(hi), seed_(seed), rng_(seed) {
  WLC_REQUIRE(0 <= lo && lo <= hi, "need 0 <= lo <= hi");
}

Cycles UniformRandomDemand::next() { return rng_.uniform_int(lo_, hi_); }

void UniformRandomDemand::reset() { rng_ = common::Rng(seed_); }

}  // namespace wlc::sched
