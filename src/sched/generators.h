// Per-job execution-demand generators for the scheduling simulator, each
// paired with the exact workload curve of the sequences it emits — so
// analysis (eq. (4)) and simulation can be cross-validated: a set the
// curve-based test accepts must never miss a deadline in simulation when
// demands come from these generators.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::sched {

/// Produces the demand of successive jobs of one task.
class DemandGenerator {
 public:
  virtual ~DemandGenerator() = default;
  virtual Cycles next() = 0;
  /// Restart from the first job.
  virtual void reset() = 0;
};

/// Every job costs the same.
class FixedDemand final : public DemandGenerator {
 public:
  explicit FixedDemand(Cycles c);
  Cycles next() override { return c_; }
  void reset() override {}

 private:
  Cycles c_;
};

/// Jobs cycle deterministically through a pattern (e.g. the per-frame-type
/// demands of an MPEG GOP: I, B, B, P, …). Its exact workload curves are the
/// sliding-window extrema over the infinite repetition.
class CyclicDemand final : public DemandGenerator {
 public:
  /// `phase` rotates the starting position (still covered by the curves,
  /// which bound every window of the infinite repetition).
  explicit CyclicDemand(std::vector<Cycles> pattern, std::size_t phase = 0);

  Cycles next() override;
  void reset() override { pos_ = phase_; }

  /// Exact γᵘ/γˡ of the infinite repetition, for k = 0..k_max.
  workload::WorkloadCurve upper_curve(EventCount k_max) const;
  workload::WorkloadCurve lower_curve(EventCount k_max) const;

  const std::vector<Cycles>& pattern() const { return pattern_; }

 private:
  std::vector<Cycles> pattern_;
  std::size_t phase_;
  std::size_t pos_;
};

/// Independent uniform demands in [lo, hi] (seeded, reproducible). Its only
/// guaranteed workload curves are the WCET/BCET cones.
class UniformRandomDemand final : public DemandGenerator {
 public:
  UniformRandomDemand(Cycles lo, Cycles hi, std::uint64_t seed);
  Cycles next() override;
  void reset() override;

 private:
  Cycles lo_;
  Cycles hi_;
  std::uint64_t seed_;
  common::Rng rng_;
};

}  // namespace wlc::sched
