// Periodic task model for the fixed-priority analyses of the paper's §3.1.
//
// Demands are in processor cycles; the analyses take the processor clock
// frequency separately so the same task set can be sized across clocks
// (matching the paper's frequency-sizing theme). A task optionally carries
// an upper workload curve γᵘ refining its per-job WCET; eq. (4) uses it,
// eq. (3) ignores it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::sched {

struct PeriodicTask {
  std::string name;
  TimeSec period = 0.0;
  TimeSec deadline = 0.0;  ///< relative; the Lehoczky test assumes == period
  Cycles wcet = 0;         ///< per-job worst case (γᵘ(1) if a curve is given)
  std::optional<workload::WorkloadCurve> gamma_u;  ///< optional refinement

  /// Worst-case cycles of any m consecutive jobs: γᵘ(m) when a curve is
  /// attached, m·WCET otherwise.
  Cycles demand(EventCount m) const {
    if (gamma_u) return gamma_u->value(m);
    return m * wcet;
  }
};

using TaskSet = std::vector<PeriodicTask>;

/// Rate-monotonic priority order: ascending period (stable). Index 0 ends up
/// the highest-priority task, matching the paper's labelling T1 <= ... <= Tn.
TaskSet rate_monotonic_order(TaskSet tasks);

/// Σ wcet_i / (period_i · f) — classical utilization at clock f.
double utilization_wcet(const TaskSet& tasks, Hertz f);

/// Long-run utilization using each curve's demand growth over its exact
/// range (equals utilization_wcet when no curves are attached).
double utilization_longrun(const TaskSet& tasks, Hertz f);

}  // namespace wlc::sched
