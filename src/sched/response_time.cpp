#include "sched/response_time.h"

#include <cmath>

#include "common/assert.h"

namespace wlc::sched {

namespace {

/// Demand (cycles) of m jobs of task j under the chosen model.
Cycles jobs_demand(const PeriodicTask& t, EventCount m, bool use_curve) {
  return use_curve ? t.demand(m) : m * t.wcet;
}

/// Smallest t >= lower with f·t >= own + Σ_{j<i} demand_j(⌈t/T_j⌉).
/// Standard fixed-point iteration; nullopt if it exceeds `limit`.
std::optional<TimeSec> fixed_point(const TaskSet& tasks, std::size_t i, Cycles own, Hertz f,
                                   TimeSec lower, TimeSec limit, bool use_curve) {
  TimeSec t = std::max(lower, static_cast<double>(own) / f);
  for (int iter = 0; iter < 100000; ++iter) {
    Cycles demand = own;
    for (std::size_t j = 0; j < i; ++j) {
      const auto m = static_cast<EventCount>(std::ceil(t / tasks[j].period - 1e-12));
      demand += jobs_demand(tasks[j], std::max<EventCount>(m, 1), use_curve);
    }
    const TimeSec next = static_cast<double>(demand) / f;
    if (next > limit) return std::nullopt;
    if (next <= t + 1e-15) return std::max(t, next);
    t = next;
  }
  return std::nullopt;
}

std::optional<ResponseTimes> analyze(const TaskSet& input, Hertz f, int horizon_periods,
                                     bool use_curve) {
  WLC_REQUIRE(!input.empty(), "need at least one task");
  WLC_REQUIRE(f > 0.0, "clock frequency must be positive");
  const TaskSet tasks = rate_monotonic_order(input);
  ResponseTimes out;
  out.per_task.reserve(tasks.size());
  out.schedulable = true;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TimeSec limit = static_cast<double>(horizon_periods) * tasks[i].period;
    TimeSec worst = 0.0;
    // Walk the level-i busy period job by job.
    for (EventCount q = 0;; ++q) {
      const Cycles own = jobs_demand(tasks[i], q + 1, use_curve);
      const TimeSec release = static_cast<double>(q) * tasks[i].period;
      const auto finish = fixed_point(tasks, i, own, f, release, limit, use_curve);
      if (!finish) return std::nullopt;  // saturated: busy period never closes
      worst = std::max(worst, *finish - release);
      if (*finish <= static_cast<double>(q + 1) * tasks[i].period + 1e-15) break;
    }
    out.per_task.push_back(worst);
    if (worst > tasks[i].deadline + 1e-12) out.schedulable = false;
  }
  return out;
}

}  // namespace

std::optional<ResponseTimes> response_times_wcet(const TaskSet& tasks, Hertz f,
                                                 int horizon_periods) {
  return analyze(tasks, f, horizon_periods, /*use_curve=*/false);
}

std::optional<ResponseTimes> response_times_curve(const TaskSet& tasks, Hertz f,
                                                  int horizon_periods) {
  return analyze(tasks, f, horizon_periods, /*use_curve=*/true);
}

}  // namespace wlc::sched
