// Fixed-priority preemptive scheduling simulator.
//
// Event-driven execution of a periodic task set on one processor at a given
// clock: jobs release periodically, the highest-priority pending job runs,
// releases preempt lower-priority work. Per-job demands come from pluggable
// DemandGenerators, so simulated workloads can match (or violate) a task's
// workload curve on purpose. Used to validate the analyses of rms.h /
// response_time.h: an accepted task set must show zero deadline misses for
// every demand sequence consistent with its curves.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sched/generators.h"
#include "sched/task.h"

namespace wlc::sched {

struct SimTask {
  std::string name;
  TimeSec period = 0.0;
  TimeSec deadline = 0.0;  ///< relative deadline
  std::shared_ptr<DemandGenerator> demand;
};

struct SimTaskStats {
  std::string name;
  std::int64_t jobs_released = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t deadline_misses = 0;
  common::RunningStats response_time;  ///< of completed jobs, seconds
};

struct SimResult {
  std::vector<SimTaskStats> tasks;  ///< priority order (ascending period)
  double busy_time = 0.0;           ///< processor busy seconds
  double horizon = 0.0;
  /// Times the processor was taken from a started-but-incomplete job by a
  /// different job (context switches that are not completions).
  std::int64_t preemptions = 0;
  /// Jobs still pending at the horizon whose absolute deadline lies at or
  /// beyond it: their outcome (completion or miss) was simply not observed.
  /// A nonzero value means "total_misses() is a lower bound over [0,
  /// horizon)", not "the task set is schedulable" — callers comparing the
  /// simulation against an analysis verdict must check truncated() first.
  std::int64_t unresolved_jobs = 0;
  std::int64_t total_misses() const;
  bool truncated() const { return unresolved_jobs > 0; }
  double utilization() const { return horizon > 0.0 ? busy_time / horizon : 0.0; }
};

/// Simulates [0, horizon) at clock `f`. Priorities are rate-monotonic
/// (ascending period, ties by input order). Jobs past their deadline keep
/// running to completion (miss counted once, at its deadline or at
/// completion, whichever the simulator observes first); an unfinished job at
/// the horizon counts as neither completed nor missed unless its absolute
/// deadline already passed — such cut-off jobs are tallied in
/// SimResult::unresolved_jobs instead.
SimResult simulate_fixed_priority(const std::vector<SimTask>& tasks, Hertz f, TimeSec horizon);

/// Same engine under preemptive earliest-deadline-first: at every scheduling
/// point the pending job with the earliest absolute deadline runs (ties by
/// rate-monotonic task order). Result tasks are reported in the same
/// (ascending-period) order as simulate_fixed_priority.
SimResult simulate_edf(const std::vector<SimTask>& tasks, Hertz f, TimeSec horizon);

}  // namespace wlc::sched
