#include "sched/task.h"

#include <algorithm>

#include "common/assert.h"

namespace wlc::sched {

TaskSet rate_monotonic_order(TaskSet tasks) {
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const PeriodicTask& a, const PeriodicTask& b) { return a.period < b.period; });
  return tasks;
}

double utilization_wcet(const TaskSet& tasks, Hertz f) {
  WLC_REQUIRE(f > 0.0, "clock frequency must be positive");
  double u = 0.0;
  for (const auto& t : tasks) {
    WLC_REQUIRE(t.period > 0.0, "task periods must be positive");
    u += static_cast<double>(t.wcet) / (t.period * f);
  }
  return u;
}

double utilization_longrun(const TaskSet& tasks, Hertz f) {
  WLC_REQUIRE(f > 0.0, "clock frequency must be positive");
  double u = 0.0;
  for (const auto& t : tasks) {
    WLC_REQUIRE(t.period > 0.0, "task periods must be positive");
    const double per_job =
        t.gamma_u ? t.gamma_u->long_run_demand() : static_cast<double>(t.wcet);
    u += per_job / (t.period * f);
  }
  return u;
}

}  // namespace wlc::sched
