#include "sched/edf.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace wlc::sched {

namespace {

/// Long-run cycles per job under the chosen model.
double job_slope(const PeriodicTask& t, DemandModel model) {
  if (model == DemandModel::WorkloadCurve && t.gamma_u) return t.gamma_u->long_run_demand();
  return static_cast<double>(t.wcet);
}

/// Smallest C0 with demand(m) <= slope·m + C0 for every m >= 0.
double affine_offset(const PeriodicTask& t, DemandModel model, double slope) {
  if (!(model == DemandModel::WorkloadCurve && t.gamma_u)) return 0.0;  // m·C is exact
  const auto& pts = t.gamma_u->points();
  double worst = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    // Upper-curve semantics: value(k) = c_i on (k_{i-1}, k_i]; the deviation
    // peaks at the left edge of each step.
    const auto k_left = static_cast<double>(pts[i - 1].first + 1);
    worst = std::max(worst, static_cast<double>(pts[i].second) - slope * k_left);
  }
  return worst;
}

}  // namespace

Cycles demand_bound(const PeriodicTask& task, TimeSec t, DemandModel model) {
  WLC_REQUIRE(task.period > 0.0 && task.deadline > 0.0, "task timing must be positive");
  WLC_REQUIRE(task.deadline <= task.period + 1e-12,
              "the demand-bound test here assumes constrained deadlines");
  if (t < task.deadline) return 0;
  const auto m =
      static_cast<EventCount>(std::floor((t - task.deadline) / task.period + 1e-12)) + 1;
  if (model == DemandModel::WorkloadCurve) return task.demand(m);
  return m * task.wcet;
}

EdfResult edf_test(const TaskSet& tasks, Hertz f, DemandModel model) {
  WLC_REQUIRE(!tasks.empty(), "need at least one task");
  WLC_REQUIRE(f > 0.0, "clock frequency must be positive");

  EdfResult out;
  // Long-run saturation check and the affine test-point horizon.
  double rate = 0.0;    // cycles per second demanded asymptotically
  double offset = 0.0;  // Σ (C0_i + s_i)
  for (const auto& t : tasks) {
    const double s = job_slope(t, model);
    rate += s / t.period;
    offset += affine_offset(t, model, s) + s;
  }
  if (rate >= f) {
    out.schedulable = false;
    out.max_load = rate / f;
    return out;
  }
  const TimeSec t_max = offset / (f - rate);
  out.horizon = t_max;

  // Every absolute deadline up to t_max is a test point.
  std::vector<TimeSec> points;
  double estimated = 0.0;
  for (const auto& t : tasks) estimated += std::max(0.0, t_max / t.period) + 1.0;
  WLC_REQUIRE(estimated < 2e6,
              "demand-bound horizon too long (clock too close to saturation)");
  for (const auto& t : tasks)
    for (TimeSec d = t.deadline; d <= t_max; d += t.period) points.push_back(d);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  out.schedulable = true;
  for (TimeSec t : points) {
    double demand = 0.0;
    for (const auto& task : tasks) demand += static_cast<double>(demand_bound(task, t, model));
    const double load = demand / (f * t);
    if (load > out.max_load) {
      out.max_load = load;
      out.critical_t = t;
    }
    if (load > 1.0) out.schedulable = false;
  }
  return out;
}

Hertz min_edf_frequency(const TaskSet& tasks, DemandModel model, Hertz f_lo, Hertz f_hi) {
  WLC_REQUIRE(0.0 < f_lo && f_lo < f_hi, "need a valid frequency bracket");
  WLC_REQUIRE(edf_test(tasks, f_hi, model).schedulable,
              "task set unschedulable even at the upper frequency bracket");
  auto passes = [&](Hertz f) {
    try {
      return edf_test(tasks, f, model).schedulable;
    } catch (const std::invalid_argument&) {
      return false;  // horizon blew up: f is too close to saturation
    }
  };
  Hertz lo = f_lo;
  Hertz hi = f_hi;
  if (passes(lo)) return lo;
  for (int i = 0; i < 100 && hi - lo > 1e-6 * hi; ++i) {
    const Hertz mid = 0.5 * (lo + hi);
    (passes(mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace wlc::sched
