// Worst-case response-time analysis for fixed-priority preemptive
// scheduling — classical iteration (Joseph & Pandya) and a workload-curve
// refinement over the level-i busy period.
//
// Classical (every job at WCET):
//   R_i = C_i + Σ_{j<i} ⌈R_i/T_j⌉ · C_j   (smallest fixed point), C = wcet/f.
//
// Workload-curve variant: within one level-i busy period the q-th job of
// task i (q = 0, 1, …) finishes at the smallest t with
//
//   f·t = γᵘ_i(q+1) + Σ_{j<i} γᵘ_j(⌈t/T_j⌉),
//
// and R_i = max_q ( finish(q) − q·T_i ), the busy period ending at the first
// q with finish(q) <= (q+1)·T_i. Demand correlation is kept both across the
// interfering tasks' jobs and across task i's own successive jobs — the same
// mechanism that tightens eq. (4) against eq. (3).
#pragma once

#include <optional>

#include "sched/task.h"

namespace wlc::sched {

struct ResponseTimes {
  std::vector<TimeSec> per_task;  ///< worst-case response time, priority order
  bool schedulable = false;       ///< every response time <= its deadline
};

/// Classical RTA at clock f. Returns nullopt for task sets that saturate the
/// processor (the iteration diverges past `horizon_periods`·T_i).
std::optional<ResponseTimes> response_times_wcet(const TaskSet& tasks, Hertz f,
                                                 int horizon_periods = 1000);

/// Workload-curve RTA at clock f (falls back to WCET for curve-less tasks).
std::optional<ResponseTimes> response_times_curve(const TaskSet& tasks, Hertz f,
                                                  int horizon_periods = 1000);

}  // namespace wlc::sched
