#include "sched/simulator.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::sched {

namespace {

struct Job {
  TimeSec release = 0.0;
  TimeSec abs_deadline = 0.0;
  double remaining = 0.0;   ///< cycles
  std::int64_t serial = 0;  ///< unique per released job; preemption detection
};

struct TaskState {
  SimTask spec;
  TimeSec next_release = 0.0;
  std::deque<Job> pending;
};

}  // namespace

std::int64_t SimResult::total_misses() const {
  std::int64_t n = 0;
  for (const auto& t : tasks) n += t.deadline_misses;
  return n;
}

namespace {
enum class Policy { FixedPriority, Edf };

SimResult simulate(const std::vector<SimTask>& input, Hertz f, TimeSec horizon, Policy policy) {
  WLC_TRACE_SPAN("sched.simulate");
  WLC_REQUIRE(!input.empty(), "need at least one task");
  WLC_REQUIRE(f > 0.0, "clock frequency must be positive");
  WLC_REQUIRE(horizon > 0.0, "simulation horizon must be positive");

  std::vector<TaskState> ts;
  ts.reserve(input.size());
  for (const auto& t : input) {
    WLC_REQUIRE(t.period > 0.0, "task periods must be positive");
    WLC_REQUIRE(t.deadline > 0.0, "task deadlines must be positive");
    WLC_REQUIRE(t.demand != nullptr, "task needs a demand generator");
    t.demand->reset();
    ts.push_back(TaskState{t, 0.0, {}});
  }
  std::stable_sort(ts.begin(), ts.end(), [](const TaskState& a, const TaskState& b) {
    return a.spec.period < b.spec.period;
  });

  SimResult result;
  result.horizon = horizon;
  result.tasks.resize(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) result.tasks[i].name = ts[i].spec.name;

  TimeSec now = 0.0;
  std::int64_t next_serial = 1;
  std::int64_t running_serial = 0;  ///< 0 = nothing started-and-incomplete
  while (now < horizon) {
    // Release every job due at or before `now`.
    for (std::size_t i = 0; i < ts.size(); ++i) {
      auto& t = ts[i];
      while (t.next_release <= now && t.next_release < horizon) {
        const double cycles = static_cast<double>(t.spec.demand->next());
        t.pending.push_back(
            Job{t.next_release, t.next_release + t.spec.deadline, cycles, next_serial++});
        ++result.tasks[i].jobs_released;
        t.next_release += t.spec.period;
      }
    }

    // Select the job to run: static priority order, or earliest absolute
    // deadline among the per-task FIFO heads (a task's own jobs have
    // monotone deadlines, so the head is its earliest).
    std::size_t running = ts.size();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].pending.empty()) continue;
      if (policy == Policy::FixedPriority) {
        running = i;
        break;
      }
      if (running == ts.size() ||
          ts[i].pending.front().abs_deadline < ts[running].pending.front().abs_deadline)
        running = i;
    }

    // Next release anywhere (the only possible preemption point).
    TimeSec next_release = std::numeric_limits<TimeSec>::infinity();
    for (const auto& t : ts) next_release = std::min(next_release, t.next_release);

    if (running == ts.size()) {
      // Idle until the next release or the horizon.
      now = std::min(next_release, horizon);
      continue;
    }

    Job& job = ts[running].pending.front();
    // A different job taking over from a started-but-incomplete one is a
    // preemption (completions reset running_serial and don't count).
    if (running_serial != 0 && running_serial != job.serial) ++result.preemptions;
    const TimeSec completion = now + job.remaining / f;
    const TimeSec until = std::min({completion, next_release, horizon});
    job.remaining -= (until - now) * f;
    result.busy_time += until - now;
    now = until;

    if (job.remaining <= 1e-9 * f) {  // sub-nanosecond residue: done
      auto& stats = result.tasks[running];
      ++stats.jobs_completed;
      stats.response_time.add(now - job.release);
      if (now > job.abs_deadline + 1e-12) ++stats.deadline_misses;
      ts[running].pending.pop_front();
      running_serial = 0;
    } else {
      running_serial = job.serial;
    }
  }

  // Jobs still pending whose deadline already passed are misses too; the
  // rest were cut off by the horizon with their outcome undecided, which
  // the result reports as truncation rather than silently dropping.
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (const auto& job : ts[i].pending) {
      if (job.abs_deadline < horizon)
        ++result.tasks[i].deadline_misses;
      else
        ++result.unresolved_jobs;
    }

  std::int64_t released = 0;
  std::int64_t completed = 0;
  for (const auto& t : result.tasks) {
    released += t.jobs_released;
    completed += t.jobs_completed;
  }
  WLC_COUNTER_ADD("sched.jobs_released", released);
  WLC_COUNTER_ADD("sched.jobs_completed", completed);
  WLC_COUNTER_ADD("sched.deadline_misses", result.total_misses());
  WLC_COUNTER_ADD("sched.preemptions", result.preemptions);
  WLC_COUNTER_ADD("sched.unresolved_jobs", result.unresolved_jobs);

  return result;
}

}  // namespace

SimResult simulate_fixed_priority(const std::vector<SimTask>& input, Hertz f, TimeSec horizon) {
  return simulate(input, f, horizon, Policy::FixedPriority);
}

SimResult simulate_edf(const std::vector<SimTask>& input, Hertz f, TimeSec horizon) {
  return simulate(input, f, horizon, Policy::Edf);
}

}  // namespace wlc::sched
