// Earliest-deadline-first schedulability via the processor-demand criterion,
// with demand-bound functions in the classical WCET form and the
// workload-curve form.
//
// Baruah's demand-bound function (the paper's related work [2]) counts the
// cycles of all jobs that both arrive and have their deadline inside a
// window of length t:
//
//   dbf_i(t) = (⌊(t − D_i)/T_i⌋ + 1) · C_i          for t >= D_i   (classic)
//   dbf'_i(t) = γᵘ_i( ⌊(t − D_i)/T_i⌋ + 1 )                        (curves)
//
// EDF schedules the set on a clock f iff Σ_i dbf_i(t) <= f·t for all t > 0;
// it suffices to check t at absolute deadlines up to a bounded horizon: past
//
//   t_max = Σ_i (C0_i + s_i) / (f − Σ_i s_i/T_i)
//
// the affine over-approximation dbf_i(t) <= s_i·(t/T_i) + (C0_i + s_i)
// (s_i the curve's long-run demand per job, C0_i its maximal deviation
// above that slope) stays below the supply line, so no further test points
// are needed. dbf' <= dbf pointwise (γᵘ(m) <= m·C), hence the curve test
// admits every set the classical test admits — eq. (5)'s analogue for EDF.
#pragma once

#include "sched/rms.h"
#include "sched/task.h"

namespace wlc::sched {

/// Demand-bound function of one task at window length t (cycles).
Cycles demand_bound(const PeriodicTask& task, TimeSec t, DemandModel model);

struct EdfResult {
  bool schedulable = false;
  double max_load = 0.0;      ///< max_t Σ dbf(t) / (f·t) over tested points
  TimeSec critical_t = 0.0;   ///< the t attaining max_load
  TimeSec horizon = 0.0;      ///< largest t that had to be tested
};

/// Processor-demand test at clock f. Tasks may have deadline <= period
/// (constrained deadlines). Returns schedulable == false with max_load > 1
/// when a violated test point exists, and also when long-run demand alone
/// saturates the clock.
EdfResult edf_test(const TaskSet& tasks, Hertz f, DemandModel model);

/// Smallest clock passing the test (bisection; the test is monotone in f).
Hertz min_edf_frequency(const TaskSet& tasks, DemandModel model, Hertz f_lo = 1.0,
                        Hertz f_hi = 1e12);

}  // namespace wlc::sched
