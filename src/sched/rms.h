// Rate-monotonic schedulability — the classical exact test of Lehoczky, Sha
// and Ding (paper eq. (3)) and the paper's workload-curve refinement
// (eq. (4)).
//
//   W_i(t)  = Σ_{j<=i} C_j · ⌈t/T_j⌉            (3)  — every job at WCET
//   W'_i(t) = Σ_{j<=i} γᵘ_j(⌈t/T_j⌉)            (4)  — demand correlation kept
//
//   L_i = min_{0<t<=T_i} W_i(t)/(f·t),  L = max_i L_i;  schedulable iff L <= 1.
//
// Because γᵘ_j(m) <= m·C_j by definition, W' <= W pointwise, so L' <= L
// (paper eq. (5)): the refined test never rejects a set the classical test
// accepts, and the benches show a band it alone accepts.
//
// The minimization over t is exact on the standard testing set
// S_i = { k·T_j : j <= i, k = 1..⌊T_i/T_j⌋ } ∪ { T_i } (scheduling points).
#pragma once

#include "sched/task.h"

namespace wlc::sched {

struct RmsLoad {
  std::vector<double> per_task;  ///< L_i, indexed like the priority-ordered set
  double overall = 0.0;          ///< L = max_i L_i
  bool schedulable = false;      ///< L <= 1
};

enum class DemandModel {
  WcetOnly,       ///< eq. (3)
  WorkloadCurve,  ///< eq. (4); falls back to WCET for tasks without a curve
};

/// Runs the exact test at clock `f`. Tasks are re-sorted rate-monotonically;
/// requires deadline == period for every task.
RmsLoad lehoczky_test(const TaskSet& tasks, Hertz f, DemandModel model);

/// Liu & Layland sufficient utilization bound n(2^{1/n} − 1) for n tasks.
double liu_layland_bound(std::size_t n);

/// Smallest clock frequency at which the set passes the exact test (binary
/// search over f; the test is monotone in f).
Hertz min_schedulable_frequency(const TaskSet& tasks, DemandModel model, Hertz f_lo = 1.0,
                                Hertz f_hi = 1e12);

}  // namespace wlc::sched
