#include "sched/rms.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/assert.h"

namespace wlc::sched {

namespace {

/// Cumulative demand of tasks 0..i in [0, t] under the chosen model.
double cumulative_demand(const TaskSet& tasks, std::size_t i, TimeSec t, DemandModel model) {
  double w = 0.0;
  for (std::size_t j = 0; j <= i; ++j) {
    const auto arrivals = static_cast<EventCount>(std::ceil(t / tasks[j].period - 1e-12));
    if (model == DemandModel::WorkloadCurve)
      w += static_cast<double>(tasks[j].demand(arrivals));
    else
      w += static_cast<double>(arrivals * tasks[j].wcet);
  }
  return w;
}

}  // namespace

RmsLoad lehoczky_test(const TaskSet& input, Hertz f, DemandModel model) {
  WLC_REQUIRE(!input.empty(), "need at least one task");
  WLC_REQUIRE(f > 0.0, "clock frequency must be positive");
  const TaskSet tasks = rate_monotonic_order(input);
  for (const auto& t : tasks) {
    WLC_REQUIRE(t.period > 0.0, "task periods must be positive");
    WLC_REQUIRE(t.deadline == t.period, "the Lehoczky test assumes deadline == period");
  }

  RmsLoad out;
  out.per_task.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    // Scheduling points: multiples of the periods of tasks 0..i up to T_i.
    std::set<TimeSec> points;
    for (std::size_t j = 0; j <= i; ++j)
      for (TimeSec t = tasks[j].period; t <= tasks[i].period * (1.0 + 1e-12);
           t += tasks[j].period)
        points.insert(std::min(t, tasks[i].period));
    double li = std::numeric_limits<double>::infinity();
    for (TimeSec t : points)
      li = std::min(li, cumulative_demand(tasks, i, t, model) / (f * t));
    out.per_task.push_back(li);
    out.overall = std::max(out.overall, li);
  }
  out.schedulable = out.overall <= 1.0;
  return out;
}

double liu_layland_bound(std::size_t n) {
  WLC_REQUIRE(n >= 1, "need at least one task");
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

Hertz min_schedulable_frequency(const TaskSet& tasks, DemandModel model, Hertz f_lo, Hertz f_hi) {
  WLC_REQUIRE(0.0 < f_lo && f_lo < f_hi, "need a valid frequency bracket");
  WLC_REQUIRE(lehoczky_test(tasks, f_hi, model).schedulable,
              "task set unschedulable even at the upper frequency bracket");
  Hertz lo = f_lo;
  Hertz hi = f_hi;
  if (lehoczky_test(tasks, lo, model).schedulable) return lo;
  for (int i = 0; i < 200 && hi - lo > 1e-9 * hi; ++i) {
    const Hertz mid = 0.5 * (lo + hi);
    (lehoczky_test(tasks, mid, model).schedulable ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace wlc::sched
