#include "rtc/energy.h"

#include <cmath>

#include "common/assert.h"

namespace wlc::rtc {

double EnergyModel::power(Hertz f) const {
  WLC_REQUIRE(f >= 0.0, "frequency must be non-negative");
  WLC_REQUIRE(exponent >= 1, "power law exponent must be >= 1");
  return kappa * std::pow(f, exponent);
}

double EnergyModel::energy(double cycles, Hertz f) const {
  WLC_REQUIRE(cycles >= 0.0, "cycle count must be non-negative");
  if (f <= 0.0) return 0.0;
  return cycles / f * power(f);
}

double EnergyModel::ratio(Hertz f_a, Hertz f_b) const {
  WLC_REQUIRE(f_a > 0.0 && f_b > 0.0, "frequencies must be positive");
  return std::pow(f_a / f_b, exponent - 1);
}

}  // namespace wlc::rtc
