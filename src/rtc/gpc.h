// Greedy Processing Component (GPC) — the abstract processing-node model of
// the Chakraborty/Künzli/Thiele framework the paper plugs its workload
// curves into ([4] in the paper; equations as consolidated in later RTC
// literature).
//
// A GPC greedily serves an input stream bounded by arrival curves (αᵘ, αˡ)
// with a resource bounded by service curves (βᵘ, βˡ), all in common units
// (use workload/convert.h to move between events and cycles). Outputs:
//
//   αᵘ' = min{ (αᵘ ⊗ βᵘ) ⊘ βˡ , βᵘ }         outgoing stream, upper
//   αˡ' = min{ (αˡ ⊘ βᵘ) ⊗ βˡ , βˡ }         outgoing stream, lower
//   βˡ'(Δ) = sup_{0<=λ<=Δ} (βˡ − αᵘ)(λ)⁺      remaining resource, lower
//   βᵘ'(Δ) = inf_{μ>=Δ} (βᵘ − αˡ)(μ)⁺         remaining resource, upper
//
// plus the node-local backlog (eq. (6)) and delay bounds. Chaining GPCs
// models a pipeline of PEs (the paper's Fig. 5 architecture) or, by feeding
// the remaining service to the next task, fixed-priority scheduling on a
// shared PE.
//
// All curves are finite-horizon DiscreteCurves; deconvolution-based outputs
// inherit the horizon caveats documented in discrete_curve.h.
#pragma once

#include <vector>

#include "curve/discrete_curve.h"

namespace wlc::rtc {

struct StreamBounds {
  curve::DiscreteCurve upper;
  curve::DiscreteCurve lower;
};

struct ResourceBounds {
  curve::DiscreteCurve upper;
  curve::DiscreteCurve lower;
};

struct GpcResult {
  StreamBounds output;      ///< arrival curves of the processed stream
  ResourceBounds remaining; ///< service left for lower-priority consumers
  double backlog;           ///< eq. (6): sup(αᵘ − βˡ), in the common unit
  double delay;             ///< horizontal deviation of αᵘ under βˡ (seconds)
};

/// Analyzes one greedy processing component.
GpcResult analyze_gpc(const StreamBounds& input, const ResourceBounds& resource);

/// Chains `n` components: stage i consumes the output stream of stage i-1
/// with its own resource. Returns per-stage results.
std::vector<GpcResult> analyze_chain(const StreamBounds& input,
                                     const std::vector<ResourceBounds>& resources);

/// Fixed-priority sharing: tasks in priority order consume one resource;
/// task i gets the remaining service of task i-1. Returns per-task results.
std::vector<GpcResult> analyze_fixed_priority(const std::vector<StreamBounds>& inputs,
                                              const ResourceBounds& resource);

}  // namespace wlc::rtc
