#include "rtc/tdma.h"

#include "common/assert.h"

namespace wlc::rtc {

namespace {
void validate(const TdmaSlot& t) {
  WLC_REQUIRE(t.cycle > 0.0, "TDMA cycle must be positive");
  WLC_REQUIRE(t.slot > 0.0 && t.slot <= t.cycle, "need 0 < slot <= cycle");
  WLC_REQUIRE(t.bandwidth > 0.0, "bandwidth must be positive");
}
}  // namespace

curve::PwlCurve tdma_service_lower(const TdmaSlot& t) {
  validate(t);
  if (t.slot == t.cycle) return curve::PwlCurve::affine(0.0, t.bandwidth);
  // Worst alignment: wait out the foreign part of the cycle, then serve.
  std::vector<curve::Segment> segs{{0.0, 0.0, 0.0}, {t.cycle - t.slot, 0.0, t.bandwidth}};
  return curve::PwlCurve(std::move(segs), /*pstart=*/t.cycle, /*period=*/t.cycle,
                         /*height=*/t.bandwidth * t.slot);
}

curve::PwlCurve tdma_service_upper(const TdmaSlot& t) {
  validate(t);
  if (t.slot == t.cycle) return curve::PwlCurve::affine(0.0, t.bandwidth);
  // Best alignment: the window opens exactly when the slot does.
  std::vector<curve::Segment> segs{{0.0, 0.0, t.bandwidth},
                                   {t.slot, t.bandwidth * t.slot, 0.0}};
  return curve::PwlCurve(std::move(segs), /*pstart=*/t.cycle, /*period=*/t.cycle,
                         /*height=*/t.bandwidth * t.slot);
}

}  // namespace wlc::rtc
