#include "rtc/sizing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::rtc {

namespace {

constexpr Hertz kInf = std::numeric_limits<Hertz>::infinity();

/// Shared core of eqs. (9)/(10): max over breakpoints of demand(Δ)/Δ, where
/// demand(Δ) = γ(max(0, ᾱ(Δ) − b)). ᾱ is a right-continuous step function
/// and γ is non-decreasing, so between breakpoints the numerator is constant
/// while Δ grows — the supremum sits exactly on the breakpoints.
template <typename DemandFn>
Hertz min_frequency(const trace::EmpiricalArrivalCurve& arrivals, EventCount buffer_events,
                    DemandFn&& demand_of_excess) {
  WLC_REQUIRE(arrivals.bound() == trace::EmpiricalArrivalCurve::Bound::Upper,
              "sizing needs an upper arrival curve");
  WLC_REQUIRE(buffer_events >= 0, "buffer size must be non-negative");
  Hertz best = 0.0;
  for (const auto& [delta, events] : arrivals.points()) {
    const EventCount excess = std::max<EventCount>(0, events - buffer_events);
    const double demand = demand_of_excess(excess);
    if (delta <= 0.0) {
      // An instantaneous burst beyond the buffer is un-servable at any clock.
      if (demand > 0.0) return kInf;
      continue;
    }
    best = std::max(best, demand / delta);
  }
  return best;
}

}  // namespace

Hertz min_frequency_workload(const trace::EmpiricalArrivalCurve& arrivals,
                             const workload::WorkloadCurve& gamma_u, EventCount buffer_events,
                             const runtime::RunPolicy* policy) {
  WLC_REQUIRE(gamma_u.bound() == workload::Bound::Upper, "sizing needs γᵘ");
  if (policy) policy->checkpoint("frequency sizing");
  return min_frequency(arrivals, buffer_events, [&](EventCount k) {
    return static_cast<double>(gamma_u.value(k));
  });
}

Hertz min_frequency_wcet(const trace::EmpiricalArrivalCurve& arrivals, Cycles wcet,
                         EventCount buffer_events) {
  WLC_REQUIRE(wcet >= 0, "WCET must be non-negative");
  return min_frequency(arrivals, buffer_events, [&](EventCount k) {
    return static_cast<double>(wcet) * static_cast<double>(k);
  });
}

curve::DiscreteCurve required_service_floor(const trace::EmpiricalArrivalCurve& arrivals,
                                            const workload::WorkloadCurve& gamma_u,
                                            EventCount buffer_events, double dt, std::size_t n) {
  WLC_REQUIRE(gamma_u.bound() == workload::Bound::Upper, "eq. (8) needs γᵘ");
  WLC_REQUIRE(dt > 0.0 && n > 0, "need a non-empty grid");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const EventCount excess =
        std::max<EventCount>(0, arrivals.eval(dt * static_cast<double>(i)) - buffer_events);
    v[i] = static_cast<double>(gamma_u.value(excess));
  }
  return curve::DiscreteCurve(std::move(v), dt);
}

bool service_satisfies_buffer(const curve::DiscreteCurve& beta,
                              const trace::EmpiricalArrivalCurve& arrivals,
                              const workload::WorkloadCurve& gamma_u, EventCount buffer_events) {
  const curve::DiscreteCurve floor_curve =
      required_service_floor(arrivals, gamma_u, buffer_events, beta.dt(), beta.size());
  for (std::size_t i = 0; i < beta.size(); ++i)
    if (beta[i] < floor_curve[i]) return false;
  return true;
}

Hertz min_frequency_for_delay(const trace::EmpiricalArrivalCurve& arrivals,
                              const workload::WorkloadCurve& gamma_u, TimeSec max_delay) {
  WLC_REQUIRE(arrivals.bound() == trace::EmpiricalArrivalCurve::Bound::Upper,
              "sizing needs an upper arrival curve");
  WLC_REQUIRE(gamma_u.bound() == workload::Bound::Upper, "sizing needs γᵘ");
  WLC_REQUIRE(max_delay > 0.0, "need a positive deadline");
  Hertz best = 0.0;
  // γᵘ(ᾱ(Δ)) only rises at breakpoints while Δ + D grows in between, so the
  // supremum sits on the breakpoints.
  for (const auto& [delta, events] : arrivals.points())
    best = std::max(best, static_cast<double>(gamma_u.value(events)) / (delta + max_delay));
  return best;
}

TimeSec min_playout_delay(const trace::EmpiricalArrivalCurve& lower_arrivals, double rate) {
  WLC_REQUIRE(lower_arrivals.bound() == trace::EmpiricalArrivalCurve::Bound::Lower,
              "playout analysis needs a lower arrival curve");
  WLC_REQUIRE(rate > 0.0, "consumption rate must be positive");
  const auto& pts = lower_arrivals.points();
  const TimeSec horizon = lower_arrivals.last_breakpoint();
  if (static_cast<double>(lower_arrivals.max_events()) < rate * horizon)
    return std::numeric_limits<TimeSec>::infinity();  // unsustainable drain rate
  // Δ − ᾱˡ(Δ)/rate grows while ᾱˡ is flat, so the supremum sits just before
  // each jump: evaluate at every breakpoint with the *previous* step value.
  TimeSec worst = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const TimeSec candidate = pts[i].first - static_cast<double>(pts[i - 1].second) / rate;
    worst = std::max(worst, candidate);
  }
  return worst;
}

std::vector<std::pair<EventCount, Hertz>> buffer_frequency_tradeoff(
    const trace::EmpiricalArrivalCurve& arrivals, const workload::WorkloadCurve& gamma_u,
    const std::vector<EventCount>& buffer_sizes, const runtime::RunPolicy* policy) {
  WLC_TRACE_SPAN("rtc.sizing.tradeoff");
  std::vector<std::pair<EventCount, Hertz>> out;
  out.reserve(buffer_sizes.size());
  for (EventCount b : buffer_sizes)
    out.emplace_back(b, min_frequency_workload(arrivals, gamma_u, b, policy));
  WLC_COUNTER_ADD("rtc.sizing_candidates", static_cast<std::int64_t>(buffer_sizes.size()));
  return out;
}

}  // namespace wlc::rtc
