#include "rtc/mpa.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/error.h"
#include "obs/obs.h"
#include "rtc/gpc.h"

namespace wlc::rtc {

void SystemModel::add_resource(const std::string& name, Hertz frequency) {
  WLC_REQUIRE(frequency > 0.0, "resource frequency must be positive");
  WLC_REQUIRE(!resources_.count(name), "duplicate resource name");
  resources_[name] = ResourceDecl{frequency, std::nullopt};
}

void SystemModel::add_resource(const std::string& name, const TdmaSlot& slot) {
  WLC_REQUIRE(!resources_.count(name), "duplicate resource name");
  tdma_service_lower(slot);  // validates the slot parameters
  resources_[name] = ResourceDecl{std::nullopt, slot};
}

void SystemModel::add_stream(const std::string& name, const curve::PwlCurve& alpha_upper,
                             const curve::PwlCurve& alpha_lower) {
  WLC_REQUIRE(!streams_.count(name), "duplicate stream name");
  StreamDecl s;
  s.upper_pwl = alpha_upper;
  s.lower_pwl = alpha_lower;
  streams_[name] = std::move(s);
}

void SystemModel::add_stream(const std::string& name, const trace::EmpiricalArrivalCurve& upper,
                             const trace::EmpiricalArrivalCurve& lower) {
  WLC_REQUIRE(!streams_.count(name), "duplicate stream name");
  WLC_REQUIRE(upper.bound() == trace::EmpiricalArrivalCurve::Bound::Upper &&
                  lower.bound() == trace::EmpiricalArrivalCurve::Bound::Lower,
              "stream needs an (upper, lower) curve pair");
  StreamDecl s;
  s.upper_emp = upper;
  s.lower_emp = lower;
  streams_[name] = std::move(s);
}

void SystemModel::add_task(const std::string& name, const std::string& input,
                           const std::string& resource, const workload::WorkloadCurve& gamma_u,
                           const workload::WorkloadCurve& gamma_l) {
  WLC_REQUIRE(gamma_u.bound() == workload::Bound::Upper, "γᵘ must be an Upper curve");
  WLC_REQUIRE(gamma_l.bound() == workload::Bound::Lower, "γˡ must be a Lower curve");
  WLC_REQUIRE(resources_.count(resource), "unknown resource");
  WLC_REQUIRE(!streams_.count(name), "task name collides with a stream");
  for (const auto& t : tasks_) WLC_REQUIRE(t.name != name, "duplicate task name");
  const bool from_stream = streams_.count(input) > 0;
  const bool from_task =
      std::any_of(tasks_.begin(), tasks_.end(), [&](const TaskDecl& t) { return t.name == input; });
  WLC_REQUIRE(from_stream || from_task,
              "task input must be a stream or an already-declared task");
  tasks_.push_back(TaskDecl{name, input, resource, gamma_u, gamma_l});
}

namespace {

/// Shift a sampled upper event curve left in Δ by `d` seconds: α'(Δ) =
/// α(Δ+d), clamping at the horizon (flat extension — the usual finite-
/// horizon caveat).
curve::DiscreteCurve shift_upper(const curve::DiscreteCurve& a, TimeSec d) {
  const auto steps = static_cast<std::size_t>(std::ceil(d / a.dt() - 1e-12));
  std::vector<double> v(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) v[i] = a[std::min(a.size() - 1, i + steps)];
  return curve::DiscreteCurve(std::move(v), a.dt());
}

/// α'(Δ) = α(max(0, Δ-d)) for the lower curve.
curve::DiscreteCurve shift_lower(const curve::DiscreteCurve& a, TimeSec d) {
  const auto steps = static_cast<std::size_t>(std::ceil(d / a.dt() - 1e-12));
  std::vector<double> v(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) v[i] = a[i >= steps ? i - steps : 0];
  return curve::DiscreteCurve(std::move(v), a.dt());
}

}  // namespace

const SystemModel::TaskReport& SystemModel::Report::task(const std::string& name) const {
  for (const auto& t : tasks)
    if (t.name == name) return t;
  throw std::invalid_argument("unknown task: " + name);
}

SystemModel::Report SystemModel::analyze(double dt, TimeSec horizon,
                                         const runtime::RunPolicy* policy) const {
  WLC_TRACE_SPAN("rtc.mpa.analyze");
  WLC_REQUIRE(dt > 0.0 && horizon > dt, "need a valid sampling grid");
  const auto n = static_cast<std::size_t>(std::floor(horizon / dt)) + 1;
  if (policy && !policy->grid_within_budget(static_cast<std::int64_t>(n)))
    throw BudgetExceededError("grid_points",
                              "system analysis grid exceeds the grid budget",
                              std::to_string(n) + " points");

  // Live resource service bounds (consumed top-down in priority order).
  std::map<std::string, ResourceBounds> service;
  for (const auto& [name, decl] : resources_) {
    if (decl.frequency) {
      const auto beta =
          curve::DiscreteCurve::sample(curve::PwlCurve::affine(0.0, *decl.frequency), dt, n);
      service.emplace(name, ResourceBounds{beta, beta});
    } else {
      service.emplace(name,
                      ResourceBounds{curve::DiscreteCurve::sample(tdma_service_upper(*decl.tdma),
                                                                  dt, n),
                                     curve::DiscreteCurve::sample(tdma_service_lower(*decl.tdma),
                                                                  dt, n)});
    }
  }

  // Event-domain curves of every stream / processed stream, keyed by name.
  std::map<std::string, StreamBounds> events;
  for (const auto& [name, decl] : streams_) {
    std::vector<double> up(n);
    std::vector<double> lo(n);
    for (std::size_t i = 0; i < n; ++i) {
      const TimeSec x = dt * static_cast<double>(i);
      up[i] = decl.upper_pwl ? decl.upper_pwl->eval(x)
                             : static_cast<double>(decl.upper_emp->eval(x));
      lo[i] = decl.lower_pwl ? decl.lower_pwl->eval(x)
                             : static_cast<double>(decl.lower_emp->eval(x));
    }
    events.emplace(name, StreamBounds{curve::DiscreteCurve(std::move(up), dt),
                                      curve::DiscreteCurve(std::move(lo), dt)});
  }

  Report report;
  std::map<std::string, std::string> parent;
  std::map<std::string, TimeSec> task_delay;
  for (const auto& task : tasks_) {
    if (policy) policy->checkpoint("system analysis");
    const auto in = events.find(task.input);
    WLC_ASSERT(in != events.end());
    if (parent.count(task.input))  // consuming an upstream task's output
      WLC_REQUIRE(std::isfinite(task_delay.at(task.input)),
                  "upstream task has an unbounded delay; downstream analysis is meaningless");

    // Event → cycle conversion (Fig. 4) on the grid.
    const StreamBounds& ev = in->second;
    std::vector<double> up_c(n);
    std::vector<double> lo_c(n);
    for (std::size_t i = 0; i < n; ++i) {
      up_c[i] = static_cast<double>(
          task.gamma_u.value(static_cast<EventCount>(std::ceil(ev.upper[i] - 1e-9))));
      lo_c[i] = static_cast<double>(
          task.gamma_l.value(static_cast<EventCount>(std::floor(ev.lower[i] + 1e-9))));
    }
    const StreamBounds cycles{curve::DiscreteCurve(std::move(up_c), dt),
                              curve::DiscreteCurve(std::move(lo_c), dt)};

    auto res = service.find(task.resource);
    WLC_ASSERT(res != service.end());
    const GpcResult gpc = analyze_gpc(cycles, res->second);

    // Event-domain backlog, eq. (7).
    EventCount backlog_events = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto served = task.gamma_u.inverse(
          static_cast<Cycles>(std::floor(std::max(0.0, res->second.lower[i]))));
      backlog_events = std::max(
          backlog_events, static_cast<EventCount>(std::ceil(ev.upper[i] - 1e-9)) - served);
    }

    TaskReport tr;
    tr.name = task.name;
    tr.backlog_cycles = std::max(0.0, gpc.backlog);
    tr.backlog_events = std::max<EventCount>(0, backlog_events);
    tr.delay = gpc.delay;
    const double demand_rate = cycles.upper[n - 1] / horizon;
    const double service_rate = res->second.lower[n - 1] / horizon;
    tr.utilization = service_rate > 0.0 ? demand_rate / service_rate
                                        : std::numeric_limits<double>::infinity();
    report.tasks.push_back(tr);

    // Jitter propagation to the processed stream; resource keeps what's left.
    const TimeSec d = std::isfinite(gpc.delay) ? gpc.delay : horizon;
    events.emplace(task.name, StreamBounds{shift_upper(ev.upper, d), shift_lower(ev.lower, d)});
    res->second = gpc.remaining;
    parent[task.name] = task.input;
    task_delay[task.name] = gpc.delay;
  }

  // chain_delay support: stash the parent chain inside the report closure.
  report.parents_ = std::move(parent);
  report.delays_ = std::move(task_delay);
  return report;
}

TimeSec SystemModel::Report::chain_delay(const std::string& task) const {
  TimeSec total = 0.0;
  std::string cur = task;
  while (true) {
    const auto d = delays_.find(cur);
    if (d == delays_.end()) {
      WLC_REQUIRE(cur != task, "unknown task");
      break;
    }
    total += d->second;
    const auto p = parents_.find(cur);
    if (p == parents_.end()) break;
    cur = p->second;
  }
  return total;
}

}  // namespace wlc::rtc
