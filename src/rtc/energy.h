// Energy model for frequency sizing — the cost side of the paper's
// motivation ("minimization of cost and power consumption"). A lower
// admissible clock buys super-linear energy savings because supply voltage
// scales with frequency: dynamic power ≈ κ·f^e (e ≈ 3 with ideal voltage
// scaling), so the energy *per cycle* is κ·f^(e-1).
#pragma once

#include "common/types.h"

namespace wlc::rtc {

struct EnergyModel {
  double kappa = 1.0;  ///< technology constant (cancels in ratios)
  int exponent = 3;    ///< power ∝ f^exponent (3 = ideal voltage scaling)

  /// Power drawn while executing at clock f.
  double power(Hertz f) const;
  /// Energy to retire `cycles` at clock f: cycles/f · power(f).
  double energy(double cycles, Hertz f) const;
  /// Energy ratio of running the same work at f_a vs f_b: (f_a/f_b)^(e-1).
  double ratio(Hertz f_a, Hertz f_b) const;
};

}  // namespace wlc::rtc
