// Resource sizing under a buffer constraint — eqs. (8)–(10) of the paper.
//
// Given the macroblock (event) arrival curve ᾱ at the input of a PE, a FIFO
// of b events, and the PE task's upper workload curve γᵘ, the FIFO never
// overflows iff the PE's cycle service curve dominates the buffer-relaxed
// demand:
//
//   β(Δ) >= γᵘ(ᾱ(Δ) − b)  for all Δ >= 0.                      (8)
//
// For a dedicated PE (β(Δ) = F·Δ) the minimum admissible clock follows:
//
//   F^γ_min = max_{Δ>0} γᵘ(ᾱ(Δ) − b)/Δ                          (9)
//   F^w_min = max_{Δ>0} w·(ᾱ(Δ) − b)/Δ    (WCET-only baseline)  (10)
//
// The case study's headline result is the gap between (9) and (10):
// ≈ 340 MHz vs ≈ 710 MHz for the MPEG-2 IDCT/MC stage — over 50 % savings.
// Run policy. The sweep entry points take an optional runtime::RunPolicy*
// and poll its cancel token/deadline once per swept point (per buffer size
// in buffer_frequency_tradeoff, per breakpoint batch in
// min_frequency_workload) — individual eq. (9) evaluations are cheap, so
// the checkpoint granularity is the sweep step.
#pragma once

#include <utility>
#include <vector>

#include "curve/discrete_curve.h"
#include "runtime/runtime.h"
#include "trace/arrival_curve.h"
#include "workload/workload_curve.h"

namespace wlc::rtc {

/// eq. (9). Returns +inf if the instantaneous burst ᾱ(0) already exceeds the
/// buffer (no finite clock can help). Exact for step arrival curves: the
/// ratio is maximized at arrival-curve breakpoints.
Hertz min_frequency_workload(const trace::EmpiricalArrivalCurve& arrivals,
                             const workload::WorkloadCurve& gamma_u, EventCount buffer_events,
                             const runtime::RunPolicy* policy = nullptr);

/// eq. (10): the WCET-only baseline with w = γᵘ(1).
Hertz min_frequency_wcet(const trace::EmpiricalArrivalCurve& arrivals, Cycles wcet,
                         EventCount buffer_events);

/// eq. (8): the required cycle-service floor γᵘ(max(0, ᾱ(Δ) − b)) sampled on
/// n points of spacing dt — useful for plotting/feasibility checks against an
/// arbitrary (non-dedicated) service curve.
curve::DiscreteCurve required_service_floor(const trace::EmpiricalArrivalCurve& arrivals,
                                            const workload::WorkloadCurve& gamma_u,
                                            EventCount buffer_events, double dt, std::size_t n);

/// True iff `beta` dominates the eq. (8) floor at every sampled point.
bool service_satisfies_buffer(const curve::DiscreteCurve& beta,
                              const trace::EmpiricalArrivalCurve& arrivals,
                              const workload::WorkloadCurve& gamma_u, EventCount buffer_events);

/// Frequency/buffer trade-off: eq. (9) swept over buffer sizes (ablation of
/// DESIGN.md §5(4)). Returns (b, F^γ_min(b)) pairs.
std::vector<std::pair<EventCount, Hertz>> buffer_frequency_tradeoff(
    const trace::EmpiricalArrivalCurve& arrivals, const workload::WorkloadCurve& gamma_u,
    const std::vector<EventCount>& buffer_sizes, const runtime::RunPolicy* policy = nullptr);

/// Deadline-driven sizing (the delay analogue of eq. (9)): the smallest
/// dedicated clock such that every event finishes within `max_delay` of its
/// arrival:  F = max_Δ γᵘ(ᾱ(Δ)) / (Δ + D). Exact for step arrival curves.
Hertz min_frequency_for_delay(const trace::EmpiricalArrivalCurve& arrivals,
                              const workload::WorkloadCurve& gamma_u, TimeSec max_delay);

/// Consumer-side (playout) analysis: a sink drains the processed stream at
/// a constant `rate` (events/second) starting `delay` seconds after the
/// first production. The stream never underflows the sink iff
/// ᾱˡ(Δ) >= rate·(Δ − delay) for all Δ, so the minimum safe playout delay is
///
///   d_min = sup_Δ ( Δ − ᾱˡ(Δ)/rate ).
///
/// Evaluated over the characterized horizon of the (trace-derived) lower
/// curve; requires the long-run production rate to sustain `rate` over that
/// horizon, otherwise no finite delay helps and +inf is returned.
TimeSec min_playout_delay(const trace::EmpiricalArrivalCurve& lower_arrivals, double rate);

}  // namespace wlc::rtc
