// Modular performance analysis of multi-PE streaming systems — the
// "platform-based design" front-end the paper's §3.2 framework (its
// reference [4]) is built for, with workload curves doing every
// event↔cycle conversion.
//
// Users declare
//   * resources    — processing elements: dedicated clock or a TDMA share,
//   * streams      — external event sources bounded by arrival curves,
//   * tasks        — (stream or upstream task) × resource × workload curves,
// and analyze() propagates bounds through the system:
//
//   per task:   cycle demand α = γᵘ(ᾱᵘ) / γˡ(ᾱˡ); a greedy-processing-
//               component step against the resource's remaining service
//               yields the task's backlog (cycles & events, eq. (6)/(7)),
//               its delay bound, and the resource service left for
//               lower-priority tasks (declaration order = fixed priority);
//   downstream: the processed stream leaves with its jitter widened by the
//               delay bound d: ᾱᵘ'(Δ) = ᾱᵘ(Δ+d), ᾱˡ'(Δ) = ᾱˡ(max(0, Δ−d))
//               — the standard, sound event-domain propagation.
//
// Everything is finite-horizon: analyze(dt, horizon) fixes the sampling
// grid, and the usual trace/horizon caveats of discrete_curve.h apply.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "curve/discrete_curve.h"
#include "curve/pwl_curve.h"
#include "rtc/tdma.h"
#include "runtime/runtime.h"
#include "trace/arrival_curve.h"
#include "workload/workload_curve.h"

namespace wlc::rtc {

class SystemModel {
 public:
  /// A PE fully dedicated to this system at `frequency`.
  void add_resource(const std::string& name, Hertz frequency);
  /// A TDMA share of a PE (slot/cycle at `slot.bandwidth` cycles/s).
  void add_resource(const std::string& name, const TdmaSlot& slot);

  /// External stream bounded by closed-form event curves.
  void add_stream(const std::string& name, const curve::PwlCurve& alpha_upper,
                  const curve::PwlCurve& alpha_lower);
  /// External stream bounded by trace-derived curves.
  void add_stream(const std::string& name, const trace::EmpiricalArrivalCurve& upper,
                  const trace::EmpiricalArrivalCurve& lower);

  /// Task consuming `input` (a stream name or an upstream task name) on
  /// `resource`. Tasks bound to the same resource are served in fixed
  /// priority order of declaration. The workload curves convert between the
  /// task's events and its cycle demand.
  void add_task(const std::string& name, const std::string& input, const std::string& resource,
                const workload::WorkloadCurve& gamma_u, const workload::WorkloadCurve& gamma_l);

  struct TaskReport {
    std::string name;
    double backlog_cycles = 0.0;   ///< eq. (6)
    EventCount backlog_events = 0; ///< eq. (7)
    TimeSec delay = 0.0;           ///< horizontal deviation (+inf if unserved)
    double utilization = 0.0;      ///< long-run demand / long-run service
  };

  struct Report {
    std::vector<TaskReport> tasks;  ///< in declaration order
    /// End-to-end delay along the chain ending at `task` (sums the chain).
    TimeSec chain_delay(const std::string& task) const;
    const TaskReport& task(const std::string& name) const;

   private:
    friend class SystemModel;
    std::map<std::string, std::string> parents_;  ///< task -> its input
    std::map<std::string, TimeSec> delays_;       ///< task -> delay bound
  };

  /// Propagates bounds through every task. Tasks must form a forest (each
  /// input is an external stream or an already-declared task). The optional
  /// RunPolicy is polled before each task's GPC step (one curve-algebra
  /// bundle each), so cancellation/deadlines take effect at task
  /// granularity; Budget::max_grid_points rejects grids the budget cannot
  /// hold (there is no sound way to coarsen a declared system grid
  /// mid-analysis, so degrade mode does not apply here).
  Report analyze(double dt, TimeSec horizon,
                 const runtime::RunPolicy* policy = nullptr) const;

 private:
  struct ResourceDecl {
    std::optional<Hertz> frequency;  ///< dedicated
    std::optional<TdmaSlot> tdma;    ///< or a TDMA share
  };
  struct StreamDecl {
    std::optional<curve::PwlCurve> upper_pwl, lower_pwl;
    std::optional<trace::EmpiricalArrivalCurve> upper_emp, lower_emp;
  };
  struct TaskDecl {
    std::string name, input, resource;
    workload::WorkloadCurve gamma_u, gamma_l;
  };

  std::map<std::string, ResourceDecl> resources_;
  std::map<std::string, StreamDecl> streams_;
  std::vector<TaskDecl> tasks_;
};

}  // namespace wlc::rtc
