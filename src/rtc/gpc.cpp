#include "rtc/gpc.h"

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::rtc {

using curve::DiscreteCurve;

// The six curve-algebra applications below all route through the shape-aware
// engine (curve/engine.h): the zero curves built for the remaining-service
// bounds are Constant, so βˡ'/βᵘ' always take an O(n) fast path, and chain /
// fixed-priority analyses that revisit operand pairs hit the OpCache.
GpcResult analyze_gpc(const StreamBounds& input, const ResourceBounds& resource) {
  WLC_TRACE_SPAN("rtc.gpc");
  const DiscreteCurve& au = input.upper;
  const DiscreteCurve& al = input.lower;
  const DiscreteCurve& bu = resource.upper;
  const DiscreteCurve& bl = resource.lower;

  DiscreteCurve au_out = DiscreteCurve::pointwise_min(
      DiscreteCurve::min_plus_deconv(DiscreteCurve::min_plus_conv(au, bu), bl), bu);
  DiscreteCurve al_out = DiscreteCurve::pointwise_min(
      DiscreteCurve::min_plus_conv(DiscreteCurve::min_plus_deconv(al, bu), bl), bl);

  // βˡ' = sup_{0<=λ<=Δ}(βˡ − αᵘ)(λ), clamped at 0: max-plus convolution of
  // (βˡ − αᵘ) with the zero curve.
  const DiscreteCurve zero = DiscreteCurve::zeros(std::min(bl.size(), au.size()), bl.dt());
  DiscreteCurve bl_rem = DiscreteCurve::max_plus_conv(bl - au, zero).clamp_floor(0.0);
  // βᵘ' = inf_{μ>=Δ}(βᵘ − αˡ)(μ), clamped at 0: max-plus deconvolution with 0.
  const DiscreteCurve zero_u = DiscreteCurve::zeros(std::min(bu.size(), al.size()), bu.dt());
  DiscreteCurve bu_rem = DiscreteCurve::max_plus_deconv(bu - al, zero_u).clamp_floor(0.0);

  const double backlog = DiscreteCurve::sup_diff(au, bl);
  const double delay = DiscreteCurve::horizontal_deviation(au, bl.non_decreasing_closure());

  return GpcResult{StreamBounds{std::move(au_out), std::move(al_out)},
                   ResourceBounds{std::move(bu_rem), std::move(bl_rem)}, backlog, delay};
}

std::vector<GpcResult> analyze_chain(const StreamBounds& input,
                                     const std::vector<ResourceBounds>& resources) {
  WLC_REQUIRE(!resources.empty(), "chain needs at least one stage");
  std::vector<GpcResult> out;
  out.reserve(resources.size());
  const StreamBounds* stream = &input;
  for (const auto& res : resources) {
    out.push_back(analyze_gpc(*stream, res));
    stream = &out.back().output;
  }
  return out;
}

std::vector<GpcResult> analyze_fixed_priority(const std::vector<StreamBounds>& inputs,
                                              const ResourceBounds& resource) {
  WLC_REQUIRE(!inputs.empty(), "need at least one task");
  std::vector<GpcResult> out;
  out.reserve(inputs.size());
  const ResourceBounds* res = &resource;
  for (const auto& stream : inputs) {
    out.push_back(analyze_gpc(stream, *res));
    res = &out.back().remaining;
  }
  return out;
}

}  // namespace wlc::rtc
