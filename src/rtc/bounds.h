// Backlog and delay bounds for a stream processed by one node — eq. (6) of
// the paper (classical Network Calculus) and its workload-curve refinement
// eq. (7).
//
//   cycles:  B  <= sup_{Δ>=0} { α(Δ) − β(Δ) }                        (6)
//   events:  B̄ <= sup_{Δ>=0} { ᾱ(Δ) − γᵘ⁻¹(β(Δ)) }                 (7)
//
// with α a cycle-based arrival curve, β the cycle-based service curve, ᾱ the
// event-based arrival curve and γᵘ the workload curve of the processing task.
#pragma once

#include <functional>

#include "curve/discrete_curve.h"
#include "trace/arrival_curve.h"
#include "workload/workload_curve.h"

namespace wlc::rtc {

/// A cycle-based service curve as a callable β(Δ); the common full-processor
/// case β(Δ) = F·Δ is `constant_rate_service(F)`.
using ServiceFn = std::function<double(TimeSec)>;

/// β(Δ) = frequency·Δ — a PE fully dedicated to the task.
ServiceFn constant_rate_service(Hertz frequency);
/// β(Δ) = max(0, rate·(Δ − latency)).
ServiceFn rate_latency_service(Hertz rate, TimeSec latency);

/// eq. (6) on sampled curves: sup(α − β).
double backlog_cycles(const curve::DiscreteCurve& alpha, const curve::DiscreteCurve& beta);

/// eq. (7): maximum backlog in *events* in front of the node. Exact for step
/// arrival curves: the supremum is evaluated at every arrival-curve
/// breakpoint (between breakpoints ᾱ is constant while service grows, so the
/// expression only falls).
EventCount backlog_events(const trace::EmpiricalArrivalCurve& arrivals,
                          const workload::WorkloadCurve& gamma_u, const ServiceFn& beta);

/// WCET-only variant of eq. (7) (γᵘ(k) = w·k) for comparison studies.
EventCount backlog_events_wcet(const trace::EmpiricalArrivalCurve& arrivals, Cycles wcet,
                               const ServiceFn& beta);

/// Delay bound: the horizontal deviation between the cycle-based arrival
/// curve γᵘ(ᾱ(Δ)) and β, searched on the arrival curve's breakpoints;
/// returns +inf if the service never catches up within `horizon`.
TimeSec delay_bound(const trace::EmpiricalArrivalCurve& arrivals,
                    const workload::WorkloadCurve& gamma_u, const ServiceFn& beta,
                    TimeSec horizon);

}  // namespace wlc::rtc
