// Greedy traffic shapers (Network Calculus; the companion line of work to
// the paper applies them between processing elements to reduce downstream
// buffer requirements).
//
// A greedy shaper with shaping curve σ delays events of a stream just enough
// that its output is σ-bounded. Classical results implemented here, all on
// finite-horizon DiscreteCurves:
//
//   output arrival:  αᵘ_out = αᵘ ⊗ σ         (σ-bounded, tighter than αᵘ)
//   shaper backlog:  B ≤ sup(αᵘ − σ)
//   shaper delay:    D ≤ h(αᵘ, σ)             (horizontal deviation)
//   "shaping is free": a σ-shaper in front of a node with service β adds no
//   end-to-end delay beyond h(αᵘ, σ ⊗ β) — tested, not just asserted.
#pragma once

#include "curve/discrete_curve.h"

namespace wlc::rtc {

struct ShaperResult {
  curve::DiscreteCurve output;  ///< arrival curve of the shaped stream
  double backlog = 0.0;         ///< worst buffering inside the shaper
  double delay = 0.0;           ///< worst delay added by the shaper
};

/// Analyzes a greedy shaper with shaping curve σ applied to a stream bounded
/// by αᵘ. σ must be non-decreasing; for a meaningful shaper σ(0+) bounds the
/// admissible burst.
ShaperResult analyze_shaper(const curve::DiscreteCurve& alpha_u,
                            const curve::DiscreteCurve& sigma);

}  // namespace wlc::rtc
