#include "rtc/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::rtc {

ServiceFn constant_rate_service(Hertz frequency) {
  WLC_REQUIRE(frequency >= 0.0, "frequency must be non-negative");
  return [frequency](TimeSec d) { return frequency * d; };
}

ServiceFn rate_latency_service(Hertz rate, TimeSec latency) {
  WLC_REQUIRE(rate >= 0.0 && latency >= 0.0, "rate-latency parameters must be non-negative");
  return [rate, latency](TimeSec d) { return std::max(0.0, rate * (d - latency)); };
}

double backlog_cycles(const curve::DiscreteCurve& alpha, const curve::DiscreteCurve& beta) {
  return curve::DiscreteCurve::sup_diff(alpha, beta);
}

namespace {

EventCount events_completable(const workload::WorkloadCurve& gamma_u, double cycles) {
  return gamma_u.inverse(static_cast<Cycles>(std::floor(std::max(0.0, cycles))));
}

}  // namespace

EventCount backlog_events(const trace::EmpiricalArrivalCurve& arrivals,
                          const workload::WorkloadCurve& gamma_u, const ServiceFn& beta) {
  WLC_TRACE_SPAN("rtc.backlog_events");
  WLC_REQUIRE(arrivals.bound() == trace::EmpiricalArrivalCurve::Bound::Upper,
              "backlog bound needs an upper arrival curve");
  WLC_REQUIRE(gamma_u.bound() == workload::Bound::Upper, "backlog bound needs γᵘ");
  WLC_COUNTER_ADD("rtc.sup_iterations", static_cast<std::int64_t>(arrivals.points().size()));
  // ᾱ is a right-continuous step function, so ᾱ(Δ) − γᵘ⁻¹(β(Δ)) attains its
  // supremum at an arrival breakpoint: ᾱ only rises there while γᵘ⁻¹(β) is
  // non-decreasing everywhere.
  EventCount worst = 0;
  for (const auto& [delta, events] : arrivals.points())
    worst = std::max(worst, events - events_completable(gamma_u, beta(delta)));
  return worst;
}

EventCount backlog_events_wcet(const trace::EmpiricalArrivalCurve& arrivals, Cycles wcet,
                               const ServiceFn& beta) {
  WLC_TRACE_SPAN("rtc.backlog_events_wcet");
  WLC_REQUIRE(wcet > 0, "WCET must be positive");
  WLC_COUNTER_ADD("rtc.sup_iterations", static_cast<std::int64_t>(arrivals.points().size()));
  EventCount worst = 0;
  for (const auto& [delta, events] : arrivals.points()) {
    const auto done = static_cast<EventCount>(
        std::floor(std::max(0.0, beta(delta)) / static_cast<double>(wcet)));
    worst = std::max(worst, events - done);
  }
  return worst;
}

TimeSec delay_bound(const trace::EmpiricalArrivalCurve& arrivals,
                    const workload::WorkloadCurve& gamma_u, const ServiceFn& beta,
                    TimeSec horizon) {
  WLC_TRACE_SPAN("rtc.delay_bound");
  WLC_REQUIRE(horizon > 0.0, "need a positive search horizon");
  WLC_REQUIRE(gamma_u.bound() == workload::Bound::Upper, "delay bound needs γᵘ");
  WLC_COUNTER_ADD("rtc.sup_iterations", static_cast<std::int64_t>(arrivals.points().size()));
  std::int64_t bisect_iters = 0;
  TimeSec worst = 0.0;
  for (const auto& [delta, events] : arrivals.points()) {
    const auto demand = static_cast<double>(gamma_u.value(events));
    if (beta(delta + horizon) < demand) return std::numeric_limits<TimeSec>::infinity();
    // Smallest catch-up d with β(Δ+d) >= demand (β non-decreasing).
    TimeSec lo = 0.0;
    TimeSec hi = horizon;
    for (int iter = 0; iter < 100 && hi - lo > 1e-12 * std::max(1.0, hi); ++iter) {
      const TimeSec mid = 0.5 * (lo + hi);
      (beta(delta + mid) >= demand ? hi : lo) = mid;
      ++bisect_iters;
    }
    worst = std::max(worst, hi);
  }
  WLC_COUNTER_ADD("rtc.bisect_iterations", bisect_iters);
  return worst;
}

}  // namespace wlc::rtc
