#include "rtc/shaper.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::rtc {

ShaperResult analyze_shaper(const curve::DiscreteCurve& alpha_u,
                            const curve::DiscreteCurve& sigma) {
  WLC_TRACE_SPAN("rtc.shaper");
  WLC_REQUIRE(sigma.is_non_decreasing(), "shaping curves must be non-decreasing");
  // The classical α' = α ⊗ σ holds in the zero-origin convention
  // (f(0) = 0); our closed-window curves carry their burst at Δ = 0, so zero
  // the origins before convolving — the k = 0 / k = Δ split points then give
  // α' <= min(α, σ) as expected.
  const curve::DiscreteCurve za = alpha_u.with_origin(-alpha_u[0]);
  const curve::DiscreteCurve zs = sigma.with_origin(-sigma[0]);
  curve::DiscreteCurve out = curve::DiscreteCurve::min_plus_conv(za, zs);
  // Restore the closed-window origin: an instantaneous output burst is
  // bounded by the shaping curve (backlogged events may be released
  // together, so the input burst is no bound), and trivially by any
  // larger-window value.
  std::vector<double> v = out.values();
  v[0] = v.size() > 1 ? std::min(sigma[0], v[1]) : sigma[0];
  out = curve::DiscreteCurve(std::move(v), out.dt());

  ShaperResult r{std::move(out), curve::DiscreteCurve::sup_diff(alpha_u, sigma),
                 curve::DiscreteCurve::horizontal_deviation(alpha_u, sigma)};
  if (r.backlog < 0.0) r.backlog = 0.0;
  return r;
}

}  // namespace wlc::rtc
