// TDMA resource models — the standard way a shared bus or a time-sliced
// processor shows up as a service curve in modular performance analysis
// (the framework the paper plugs workload curves into).
//
// A component owning one slot of length `slot` in every TDMA cycle of length
// `cycle` on a resource of bandwidth B (cycles/second) is guaranteed, in any
// window Δ, at least
//
//   βˡ(Δ) = B · ( ⌊Δ/c⌋·s + max(0, Δ mod c − (c − s)) )
//
// (worst alignment: the window opens right after the slot closes) and at most
//
//   βᵘ(Δ) = B · ( ⌊Δ/c⌋·s + min(Δ mod c, s) )
//
// (best alignment: the window opens with the slot). Both are exact, expressed
// as piecewise-linear curves with a periodic tail — evaluation is O(1) at any
// horizon.
#pragma once

#include "curve/pwl_curve.h"
#include "common/types.h"

namespace wlc::rtc {

struct TdmaSlot {
  TimeSec slot = 0.0;   ///< owned slot length per cycle (0 < slot <= cycle)
  TimeSec cycle = 0.0;  ///< TDMA cycle length
  Hertz bandwidth = 0.0;///< resource capacity while the slot is active
};

/// Guaranteed (lower) TDMA service curve βˡ.
curve::PwlCurve tdma_service_lower(const TdmaSlot& t);

/// Best-case (upper) TDMA service curve βᵘ.
curve::PwlCurve tdma_service_upper(const TdmaSlot& t);

}  // namespace wlc::rtc
