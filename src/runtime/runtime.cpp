#include "runtime/runtime.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::runtime {

CancelToken CancelToken::make() { return CancelToken(std::make_shared<State>()); }

CancelToken CancelToken::child() const {
  WLC_REQUIRE(armed(), "child() needs an armed parent token");
  auto state = std::make_shared<State>();
  state->parent = state_;
  return CancelToken(std::move(state));
}

void CancelToken::cancel() const {
  WLC_REQUIRE(armed(), "cancel() needs an armed token");
  state_->flag.store(true, std::memory_order_relaxed);
}

Deadline Deadline::after(Clock::duration d) { return at(Clock::now() + d); }

Deadline Deadline::at(Clock::time_point tp) {
  Deadline dl;
  dl.when_ = tp;
  dl.armed_ = true;
  return dl;
}

double Deadline::remaining_seconds() const {
  if (!armed_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

void RunPolicy::checkpoint(const char* where) const {
  WLC_COUNTER_ADD("runtime.checkpoints", 1);
  if (token.cancelled()) {
    WLC_COUNTER_ADD("runtime.cancel_trips", 1);
    throw CancelledError(CancelledError::Reason::Token,
                         std::string("operation cancelled during ") + where, "", __FILE__,
                         __LINE__);
  }
  if (deadline.expired()) {
    WLC_COUNTER_ADD("runtime.deadline_trips", 1);
    throw CancelledError(CancelledError::Reason::Deadline,
                         std::string("deadline expired during ") + where, "", __FILE__, __LINE__);
  }
}

bool DegradationReport::degraded() const {
  return grid_points_used < grid_points_requested || rows_used < rows_requested ||
         events_analyzed < events_requested || !aborted.empty();
}

void DegradationReport::note(std::string action) {
  static constexpr std::size_t kMaxActions = 16;
  if (actions.size() < kMaxActions) actions.push_back(std::move(action));
}

void DegradationReport::merge(const DegradationReport& other) {
  grid_points_requested += other.grid_points_requested;
  grid_points_used += other.grid_points_used;
  rows_requested += other.rows_requested;
  rows_used += other.rows_used;
  events_requested += other.events_requested;
  events_analyzed += other.events_analyzed;
  if (aborted.empty()) aborted = other.aborted;
  for (const auto& a : other.actions) note(a);
}

std::string DegradationReport::to_string() const {
  if (!degraded()) return "no degradation";
  std::ostringstream os;
  const char* sep = "";
  if (grid_points_used < grid_points_requested) {
    os << sep << "k-grid coarsened to " << grid_points_used << " of " << grid_points_requested
       << " points";
    sep = "; ";
  }
  if (rows_used < rows_requested) {
    os << sep << "kept first " << rows_used << " of " << rows_requested << " trace rows";
    sep = "; ";
  }
  if (events_analyzed < events_requested) {
    os << sep << "analyzed first " << events_analyzed << " of " << events_requested << " events";
    sep = "; ";
  }
  if (!aborted.empty()) {
    os << sep << "run aborted (" << aborted << ")";
    sep = "; ";
  }
  os << " — bounds stay conservative for the analyzed work";
  return os.str();
}

namespace {

/// Minimal JSON string escaper (actions are library-authored, but a trace
/// path quoted inside one could carry quotes or backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DegradationReport::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"degraded\": " << (degraded() ? "true" : "false") << ",\n"
     << "  \"aborted\": \"" << json_escape(aborted) << "\",\n"
     << "  \"grid_points\": {\"requested\": " << grid_points_requested
     << ", \"used\": " << grid_points_used << "},\n"
     << "  \"rows\": {\"requested\": " << rows_requested << ", \"used\": " << rows_used << "},\n"
     << "  \"events\": {\"requested\": " << events_requested
     << ", \"analyzed\": " << events_analyzed << "},\n"
     << "  \"actions\": [";
  for (std::size_t i = 0; i < actions.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(actions[i]) << "\"";
  os << "]\n}\n";
  return os.str();
}

std::vector<std::int64_t> coarsen_grid(std::span<const std::int64_t> ks,
                                       std::int64_t max_points) {
  std::vector<std::int64_t> out(ks.begin(), ks.end());
  if (max_points <= 0 || static_cast<std::int64_t>(out.size()) <= max_points) return out;
  WLC_ASSERT(std::is_sorted(out.begin(), out.end()));
  const std::size_t n = out.size();
  const std::size_t m = static_cast<std::size_t>(std::max<std::int64_t>(2, max_points));
  std::vector<std::int64_t> kept;
  kept.reserve(m);
  // Evenly spaced indices with both endpoints pinned; rounding can repeat an
  // index, so dedup keeps the result strictly increasing.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t idx = (i * (n - 1) + (m - 1) / 2) / (m - 1);
    if (kept.empty() || out[idx] != kept.back()) kept.push_back(out[idx]);
  }
  return kept;
}

std::vector<std::int64_t> apply_grid_budget(std::vector<std::int64_t> ks,
                                            const RunPolicy* policy,
                                            DegradationReport* degradation,
                                            const std::string& what) {
  if (!policy || policy->grid_within_budget(static_cast<std::int64_t>(ks.size()))) return ks;
  if (policy->on_budget == OnBudget::Fail)
    throw BudgetExceededError(
        "grid_points",
        what + " needs " + std::to_string(ks.size()) +
            " k-grid points but the budget allows " +
            std::to_string(policy->budget.max_grid_points),
        std::to_string(ks.size()), __FILE__, __LINE__);
  const auto requested = static_cast<std::int64_t>(ks.size());
  std::vector<std::int64_t> coarse = coarsen_grid(ks, policy->budget.max_grid_points);
  WLC_COUNTER_ADD("runtime.degradations", 1);
  WLC_COUNTER_ADD("runtime.shed_grid_points",
                  requested - static_cast<std::int64_t>(coarse.size()));
  if (degradation) {
    degradation->grid_points_requested += requested;
    degradation->grid_points_used += static_cast<std::int64_t>(coarse.size());
    degradation->note(std::string("coarsened ") + what + " k-grid from " +
                      std::to_string(requested) + " to " + std::to_string(coarse.size()) +
                      " points (bounds stay conservative, merely less tight)");
  }
  return coarse;
}

}  // namespace wlc::runtime
