// wlc::runtime — cooperative cancellation, deadlines and work/memory budgets
// for the long-running entry points, with soundness-preserving graceful
// degradation.
//
// Every expensive pipeline stage (trace ingestion, workload/arrival curve
// extraction, batched clip analysis, the eq. (9) sizing sweeps) accepts an
// optional RunPolicy and polls it at bounded intervals:
//
//   runtime::CancelToken token = runtime::CancelToken::make();
//   runtime::RunPolicy policy{
//       .token = token.child(),
//       .deadline = runtime::Deadline::after(std::chrono::seconds(2)),
//       .budget = {.max_grid_points = 256, .max_trace_rows = 1'000'000},
//       .on_budget = runtime::OnBudget::Degrade};
//   runtime::DegradationReport shed;
//   auto gu = workload::extract_upper(demands, ks, &stats, &policy, &shed);
//
// Cancellation is *cooperative*: nothing is killed, checkpoints throw
// wlc::CancelledError at chunk boundaries and the work unwinds through the
// normal exception contracts (ThreadPool stays usable, first-error-wins is
// preserved). The cost discipline matches WLC_TRACE_SPAN: an unarmed token
// is a null-pointer test, an unarmed deadline never reads the clock, and an
// armed checkpoint is one relaxed atomic load per hierarchy level plus one
// steady-clock read.
//
// Budgets bound *work* rather than time: k-grid points, ingested trace rows
// and resident buffer bytes. On a would-exceed, OnBudget::Fail throws
// wlc::BudgetExceededError; OnBudget::Degrade sheds work instead and records
// exactly what was shed in a DegradationReport. Degradation never silently
// weakens a guarantee:
//
//   * Coarsening the k-grid keeps γᵘ a valid upper bound and γˡ a valid
//     lower bound — between the surviving breakpoints the curve objects
//     interpolate conservatively (step up / hold down), so the degraded γᵘ
//     dominates the full-grid γᵘ at every k and the degraded γˡ is
//     dominated. Everything derived from them (F^γ_min, backlog bounds)
//     moves to the conservative side; tightness is lost, soundness is not.
//   * Shedding trace rows / truncating the analyzed window shrinks the
//     *certificate scope* (the bounds certify the analyzed prefix only, as
//     with lenient ingestion); the report states the kept/requested counts
//     so the caller can decide whether the partial certificate suffices.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace wlc::runtime {

/// Hierarchical cancellation flag. A default-constructed token is *unarmed*:
/// it can never become cancelled and costs a null-pointer test to poll.
/// make() arms a fresh root; child() derives a token that observes its own
/// cancel() *and* every ancestor's, while cancelling a child never affects
/// the parent — the shape needed to hang one request's sub-operations off a
/// server-wide shutdown flag.
class CancelToken {
 public:
  CancelToken() = default;  ///< unarmed: never cancelled, zero-cost polls

  /// A fresh, armed, not-yet-cancelled root token.
  static CancelToken make();

  /// An armed token observing this token and all its ancestors. Requires an
  /// armed parent (a child of the unarmed token would be unobservable).
  CancelToken child() const;

  /// Requests cancellation: every holder of this token or a descendant
  /// observes cancelled() == true from now on. Idempotent, thread-safe.
  /// Requires an armed token.
  void cancel() const;

  /// True once this token or any ancestor was cancelled. One relaxed atomic
  /// load per hierarchy level when armed; no atomics at all when unarmed.
  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
      if (s->flag.load(std::memory_order_relaxed)) return true;
    return false;
  }

  bool armed() const { return state_ != nullptr; }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<const State> parent;
  };

  explicit CancelToken(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Monotonic-clock deadline. Default-constructed = unarmed (never expires,
/// never reads the clock). Built on steady_clock so wall-clock adjustments
/// cannot spuriously cancel or extend a run.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unarmed: expired() is constant false

  /// Expires `d` after now. Non-positive durations are already expired.
  static Deadline after(Clock::duration d);

  /// Expires at the given steady-clock instant.
  static Deadline at(Clock::time_point tp);

  bool armed() const { return armed_; }

  /// True once the deadline passed. Reads the clock only when armed.
  bool expired() const { return armed_ && Clock::now() >= when_; }

  /// Seconds until expiry (negative once past); +inf when unarmed.
  double remaining_seconds() const;

 private:
  Clock::time_point when_{};
  bool armed_ = false;
};

/// Work/memory ceilings. 0 on any axis = unlimited.
struct Budget {
  std::int64_t max_grid_points = 0;     ///< k-grid entries per extraction
  std::int64_t max_trace_rows = 0;      ///< data rows kept by trace ingestion
  std::int64_t max_resident_bytes = 0;  ///< prefix-sum / curve working buffers

  bool unlimited() const {
    return max_grid_points <= 0 && max_trace_rows <= 0 && max_resident_bytes <= 0;
  }
};

/// What to do when a Budget axis would be exceeded.
enum class OnBudget {
  Fail,     ///< throw wlc::BudgetExceededError
  Degrade,  ///< shed work (coarsen grid / truncate rows) and report it
};

/// Exactly what a degraded run shed, so "less tight" is never silent.
/// Counters accumulate across the pipeline stages that share one report;
/// `actions` holds human-readable one-liners (capped — the counters stay
/// exact even when the narration saturates).
struct DegradationReport {
  std::int64_t grid_points_requested = 0;  ///< grid entries before coarsening
  std::int64_t grid_points_used = 0;       ///< entries actually evaluated
  std::int64_t rows_requested = 0;         ///< data rows seen by ingestion
  std::int64_t rows_used = 0;              ///< rows kept under the row budget
  std::int64_t events_requested = 0;       ///< trace events offered to extraction
  std::int64_t events_analyzed = 0;        ///< events fitting the byte budget
  /// Empty while the run is alive/completed; set to the trip reason
  /// ("deadline", "cancelled") when the run was aborted mid-degradation.
  std::string aborted;
  std::vector<std::string> actions;

  /// True iff anything was shed (or the run was aborted).
  bool degraded() const;

  /// Appends one narration line (drops it once the cap is reached).
  void note(std::string action);

  /// Accumulates another report (summed counters, appended actions). Used
  /// by batched extraction to fold per-trace reports into one.
  void merge(const DegradationReport& other);

  /// One human-readable line per shed axis; "no degradation" when clean.
  std::string to_string() const;

  /// Stable JSON object for machine consumers (CI asserts on it):
  /// {"degraded": bool, "aborted": str, "grid_points": {...}, ...}.
  std::string to_json() const;
};

/// Everything a long-running call needs to be interruptible and boundable:
/// who may cancel it, when it must stop, how much work it may do, and
/// whether exceeding the budget fails or degrades. Passed by pointer with
/// nullptr meaning "run unboundedly" (the historical behavior).
struct RunPolicy {
  CancelToken token;
  Deadline deadline;
  Budget budget;
  OnBudget on_budget = OnBudget::Fail;

  /// True iff checkpoint() can ever throw (saves clock reads on hot paths).
  bool interruptible() const { return token.armed() || deadline.armed(); }

  /// Poll point: throws wlc::CancelledError when the token was cancelled or
  /// the deadline passed; otherwise returns. `where` names the stage for
  /// the error message ("workload extraction"). Called between work chunks
  /// — never holds locks, safe from any thread.
  void checkpoint(const char* where) const;

  /// True when `points` k-grid entries fit max_grid_points.
  bool grid_within_budget(std::int64_t points) const {
    return budget.max_grid_points <= 0 || points <= budget.max_grid_points;
  }

  /// True when a working set of `bytes` fits max_resident_bytes. Extraction
  /// uses this twice: once for the mandatory prefix-sum buffer (exceeding
  /// it degrades or fails, see extract.h) and once for the shared index's
  /// optional auxiliary memory (exceeding that merely steers engine choice
  /// to the streaming kernel — identical output, never an error).
  bool bytes_within_budget(std::int64_t bytes) const {
    return budget.max_resident_bytes <= 0 || bytes <= budget.max_resident_bytes;
  }
};

/// Uniformly subsamples a sorted k-grid down to at most max(2, max_points)
/// entries, always keeping the first and last (so the exact range and the
/// k = 1 / WCET anchor survive). The result is a subsequence of `ks`:
/// every surviving entry is still computed exactly, and the curve objects'
/// conservative interpolation between them preserves the bound direction.
std::vector<std::int64_t> coarsen_grid(std::span<const std::int64_t> ks,
                                       std::int64_t max_points);

/// Applies `policy`'s grid budget to `ks`: returns it unchanged when within
/// budget (or policy is null), coarsens under OnBudget::Degrade (recording
/// requested/used counts and a narration line tagged `what` in
/// `degradation`, when given), throws wlc::BudgetExceededError under
/// OnBudget::Fail.
std::vector<std::int64_t> apply_grid_budget(std::vector<std::int64_t> ks,
                                            const RunPolicy* policy,
                                            DegradationReport* degradation,
                                            const std::string& what);

}  // namespace wlc::runtime
