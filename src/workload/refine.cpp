#include "workload/refine.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"

namespace wlc::workload {

namespace {

std::vector<Cycles> densify(const WorkloadCurve& g) {
  WLC_REQUIRE(g.max_k() <= 8192, "closure is O(k² log k); refine curves before extending them");
  std::vector<Cycles> v(static_cast<std::size_t>(g.max_k()) + 1);
  for (EventCount k = 0; k <= g.max_k(); ++k) v[static_cast<std::size_t>(k)] = g.value(k);
  return v;
}

/// One (min,+) / (max,+) self-convolution step on integer-domain values.
std::vector<Cycles> self_combine(const std::vector<Cycles>& v, bool minimize) {
  std::vector<Cycles> out(v);
  for (std::size_t k = 0; k < v.size(); ++k)
    for (std::size_t j = 1; j < k; ++j) {
      const Cycles split = v[j] + v[k - j];
      if (minimize ? split < out[k] : split > out[k]) out[k] = split;
    }
  return out;
}

WorkloadCurve closure(const WorkloadCurve& g, bool minimize) {
  std::vector<Cycles> cur = densify(g);
  for (int iter = 0; iter < 64; ++iter) {
    std::vector<Cycles> next = self_combine(cur, minimize);
    if (next == cur) break;
    cur = std::move(next);
  }
  return WorkloadCurve::from_dense(g.bound(), cur);
}

}  // namespace

WorkloadCurve tighten_upper(const WorkloadCurve& gamma_u) {
  WLC_REQUIRE(gamma_u.bound() == Bound::Upper, "tighten_upper needs an Upper curve");
  return closure(gamma_u, /*minimize=*/true);
}

WorkloadCurve tighten_lower(const WorkloadCurve& gamma_l) {
  WLC_REQUIRE(gamma_l.bound() == Bound::Lower, "tighten_lower needs a Lower curve");
  return closure(gamma_l, /*minimize=*/false);
}

}  // namespace wlc::workload
