// The analytic workload-curve construction of the paper's Example 1 (§2.2).
//
// A task polls for an event every T time units. If an event is pending the
// activation costs e_p cycles, otherwise e_c (< e_p). The event stream has
// inter-arrival times in [θ_min, θ_max] with T < θ_min, so at most one event
// is pending per poll. Then, over any k consecutive activations,
//
//   n_max(k) = min(k, 1 + ⌊k·T/θ_min⌋)   events can be detected at most,
//   n_min(k) = ⌊k·T/θ_max⌋               events are detected at least,
//
// and the workload curves follow in closed form:
//
//   γᵘ(k) = n_max(k)·e_p + (k − n_max(k))·e_c ,
//   γˡ(k) = n_min(k)·e_p + (k − n_min(k))·e_c .
//
// This is the canonical example of curves obtained *analytically* from
// environment constraints — valid for hard real-time analysis, unlike
// trace-derived curves (paper Fig. 2 shows the gain over WCET/BCET cones).
#pragma once

#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

class PollingTaskModel {
 public:
  /// Requires 0 < T <= θ_min <= θ_max and 0 <= e_c <= e_p.
  PollingTaskModel(TimeSec poll_period, TimeSec theta_min, TimeSec theta_max, Cycles e_p,
                   Cycles e_c);

  /// Maximum events detectable in k consecutive polls.
  EventCount n_max(EventCount k) const;
  /// Minimum events detectable in k consecutive polls.
  EventCount n_min(EventCount k) const;

  /// Closed-form curve values.
  Cycles gamma_u(EventCount k) const;
  Cycles gamma_l(EventCount k) const;

  /// Materialized exact curves for k = 0..k_max.
  WorkloadCurve upper_curve(EventCount k_max) const;
  WorkloadCurve lower_curve(EventCount k_max) const;

  TimeSec poll_period() const { return poll_period_; }
  Cycles processing_cost() const { return e_p_; }
  Cycles check_cost() const { return e_c_; }

 private:
  TimeSec poll_period_;
  TimeSec theta_min_;
  TimeSec theta_max_;
  Cycles e_p_;
  Cycles e_c_;
};

}  // namespace wlc::workload
