// Analytic workload-curve construction from per-type occurrence bounds.
//
// When the environment constrains how often each event type can occur —
// e.g. "at most n_max(k) of any k consecutive polls detect an event" — the
// workload curves follow without any trace: among k consecutive events, pick
// the type mix that maximizes (minimizes) total demand subject to the
// occurrence bounds. With a linear objective and box constraints the optimum
// is greedy: fill mandatory minima first, then spend the remaining k on
// types in order of decreasing WCET (increasing BCET for γˡ).
//
// This generalizes the paper's polling example (two types) to arbitrary type
// sets and is the bridge from SPI-style mode models to workload curves.
#pragma once

#include <functional>
#include <span>

#include "workload/event_model.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Occurrence bounds of one event type: among any k consecutive events of
/// the stream, events of this type number at least min_count(k) and at most
/// max_count(k). Both must be non-decreasing with max_count(k) <= k.
struct TypeOccurrenceBounds {
  std::function<EventCount(EventCount)> min_count;
  std::function<EventCount(EventCount)> max_count;
};

/// γᵘ(k) for one k: the demand-maximizing feasible type mix.
/// Requires Σ min <= k <= Σ max (otherwise no k-window exists — throws).
Cycles max_demand_mix(const EventTypeTable& types, std::span<const TypeOccurrenceBounds> bounds,
                      EventCount k);

/// γˡ(k) analogue (demand-minimizing mix).
Cycles min_demand_mix(const EventTypeTable& types, std::span<const TypeOccurrenceBounds> bounds,
                      EventCount k);

/// Materialized curves for k = 0..k_max. `bounds[i]` pairs with type id i.
WorkloadCurve upper_from_type_bounds(const EventTypeTable& types,
                                     std::span<const TypeOccurrenceBounds> bounds,
                                     EventCount k_max);
WorkloadCurve lower_from_type_bounds(const EventTypeTable& types,
                                     std::span<const TypeOccurrenceBounds> bounds,
                                     EventCount k_max);

}  // namespace wlc::workload
