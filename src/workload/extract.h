// Workload-curve extraction from demand traces (the paper's §2, "another way
// to construct the workload curves is by analysis of event traces").
//
// Given the per-activation demand sequence d[0..n-1] of a task, the exact
// trace-restricted curves are sliding-window extrema of prefix sums:
//
//   γᵘ(k) = max_j Σ_{i=j}^{j+k-1} d_i ,   γˡ(k) = min_j Σ d_i .
//
// Both are computed exactly for every k on a KGrid; the WorkloadCurve object
// interpolates conservatively between grid entries, so the result is a
// guaranteed bound for the analyzed trace at every k. As the paper notes,
// such curves certify the analyzed trace (class of traces) only — for hard
// real-time guarantees construct curves analytically (see polling.h,
// type_bounds.h).
//
// Engines. The historical hot path rescans the prefix sums once per grid
// entry — O(n·|grid|). Those per-k scans are retained verbatim as the
// *_oracle kernels below; the default path now builds one shared
// common::SlidingExtrema index over the (contiguous, SIMD-friendly) prefix
// sums and answers every grid entry from it by block-bound pruning, with a
// single-pass streaming kernel as the budget-bounded fallback when the byte
// budget admits the prefix array but not the index's auxiliary memory.
// Every engine is bit-identical to the oracle on every input — same
// differential discipline the curve engine established — pinned by the
// rmq-labelled test suite across shapes × grids × threads × budgets. The
// trailing GapEngine parameter is a test/benchmark hook; leave it Auto.
//
// Parallel engine. Each grid entry's query/scan is independent given the
// shared prefix-sum array (and index), so the overloads taking a
// common::ThreadPool partition the k-grid across workers; results land in
// grid-indexed slots and every per-entry reduction runs in a single thread
// in ascending-j order, so parallel output is bit-identical to the serial
// path. extract_batch fans whole traces across the pool (each trace
// extracted serially inside its task — again bit-identical to individual
// serial calls).
//
// Run-policy contract. Every extractor takes an optional
// wlc::runtime::RunPolicy: checkpoints run between grid entries, every few
// thousand blocks inside an index build, and every few thousand events
// inside a streaming pass (and between traces in the batched API), so a
// cancel/deadline trip aborts within one bounded chunk; the grid-point
// budget coarsens the k-grid (OnBudget::Degrade — sound, merely less tight)
// or throws BudgetExceededError (Fail); the resident-byte budget bounds the
// prefix-sum buffer exactly as before — truncating the analyzed window
// under Degrade with the certificate scope recorded in the
// DegradationReport — and additionally steers Auto away from the index when
// its auxiliary memory would not fit (the streaming fallback, identical
// output, never an error). A null policy reproduces the historical
// unbounded behavior bit for bit.
#pragma once

#include <cstdint>
#include <span>

#include "common/rmq.h"
#include "common/thread_pool.h"
#include "runtime/runtime.h"
#include "trace/traces.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Side information about one extraction that the returned curve cannot
/// carry itself.
struct ExtractStats {
  /// Requested window sizes larger than the trace length. Each such k is
  /// clamped to n (the curve past n is served by block extension), which is
  /// sound but easy to misread: a caller asking for k = 10⁶ on a 10³-event
  /// trace gets a curve whose exact range ends at 10³. Non-zero means the
  /// grid did not cover the request exactly.
  std::int64_t clamped_ks = 0;
};

/// Exact γᵘ restricted to windows of `demands`, on window sizes `ks`
/// (each clamped to the trace length; the trace length is appended so the
/// curve's exact range covers whole-trace windows). Serial entry point.
/// `stats`, when given, reports grid clamping.
WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats = nullptr,
                            const runtime::RunPolicy* policy = nullptr,
                            runtime::DegradationReport* degradation = nullptr,
                            common::GapEngine engine = common::GapEngine::Auto);

/// Exact γˡ analogue.
WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats = nullptr,
                            const runtime::RunPolicy* policy = nullptr,
                            runtime::DegradationReport* degradation = nullptr,
                            common::GapEngine engine = common::GapEngine::Auto);

/// Parallel γᵘ: the k-grid is partitioned across `pool`. Bit-identical to
/// the serial overload on every input (checkpointed cancellation included —
/// both paths poll between grid entries).
WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats = nullptr,
                            const runtime::RunPolicy* policy = nullptr,
                            runtime::DegradationReport* degradation = nullptr,
                            common::GapEngine engine = common::GapEngine::Auto);

/// Parallel γˡ analogue.
WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats = nullptr,
                            const runtime::RunPolicy* policy = nullptr,
                            runtime::DegradationReport* degradation = nullptr,
                            common::GapEngine engine = common::GapEngine::Auto);

/// The retained O(n·|grid|) reference kernels: the plain per-k scans,
/// regardless of what Auto would pick. The rmq differential suite pins
/// every fast engine to these bit for bit; they also serve as the
/// before-side of BENCH_extraction.json.
WorkloadCurve extract_upper_oracle(const trace::DemandTrace& demands,
                                   std::span<const std::int64_t> ks,
                                   ExtractStats* stats = nullptr,
                                   const runtime::RunPolicy* policy = nullptr,
                                   runtime::DegradationReport* degradation = nullptr);
WorkloadCurve extract_lower_oracle(const trace::DemandTrace& demands,
                                   std::span<const std::int64_t> ks,
                                   ExtractStats* stats = nullptr,
                                   const runtime::RunPolicy* policy = nullptr,
                                   runtime::DegradationReport* degradation = nullptr);

/// Convenience: dense extraction of every k in [1, k_max] (k_max clamped to
/// the trace length) — exact; the dense grid is where the shared index pays
/// off most.
WorkloadCurve extract_upper_dense(const trace::DemandTrace& demands, EventCount k_max);
WorkloadCurve extract_lower_dense(const trace::DemandTrace& demands, EventCount k_max);

/// Both curves of one trace, as produced by the batched API.
struct CurveBundle {
  WorkloadCurve upper;
  WorkloadCurve lower;
  ExtractStats stats;
};

/// Batched extraction: fans `traces` across `pool`, one task per trace,
/// each extracting γᵘ and γˡ on the shared grid `ks`. out[i] matches
/// serial extract_upper/lower on traces[i] bit for bit; order preserved.
/// Under a policy, the shared grid budget is applied once up front and the
/// token/deadline is polled between traces and between grid entries;
/// per-trace degradation (byte-budget truncation) folds into `degradation`
/// in trace order.
std::vector<CurveBundle> extract_batch(const std::vector<trace::DemandTrace>& traces,
                                       std::span<const std::int64_t> ks,
                                       common::ThreadPool& pool,
                                       const runtime::RunPolicy* policy = nullptr,
                                       runtime::DegradationReport* degradation = nullptr,
                                       common::GapEngine engine = common::GapEngine::Auto);

}  // namespace wlc::workload
