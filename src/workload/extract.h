// Workload-curve extraction from demand traces (the paper's §2, "another way
// to construct the workload curves is by analysis of event traces").
//
// Given the per-activation demand sequence d[0..n-1] of a task, the exact
// trace-restricted curves are sliding-window extrema of prefix sums:
//
//   γᵘ(k) = max_j Σ_{i=j}^{j+k-1} d_i ,   γˡ(k) = min_j Σ d_i .
//
// Both are computed exactly for every k on a KGrid (O(n) per grid entry via
// prefix sums); the WorkloadCurve object interpolates conservatively between
// grid entries, so the result is a guaranteed bound for the analyzed trace at
// every k. As the paper notes, such curves certify the analyzed trace (class
// of traces) only — for hard real-time guarantees construct curves
// analytically (see polling.h, type_bounds.h).
#pragma once

#include <span>

#include "trace/traces.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Exact γᵘ restricted to windows of `demands`, on window sizes `ks`
/// (each clamped to the trace length; the trace length is appended so the
/// curve's exact range covers whole-trace windows).
WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks);

/// Exact γˡ analogue.
WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks);

/// Convenience: dense extraction of every k in [1, k_max] (k_max clamped to
/// the trace length) — exact but Θ(n·k_max); fine for short traces and tests.
WorkloadCurve extract_upper_dense(const trace::DemandTrace& demands, EventCount k_max);
WorkloadCurve extract_lower_dense(const trace::DemandTrace& demands, EventCount k_max);

}  // namespace wlc::workload
