#include "workload/extract.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "common/error.h"
#include "obs/obs.h"

namespace wlc::workload {

namespace {

std::vector<Cycles> prefix_sums(const trace::DemandTrace& d, std::size_t n) {
  std::vector<Cycles> p(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    WLC_REQUIRE(d[i] >= 0, "execution demands must be non-negative");
    if (__builtin_add_overflow(p[i], d[i], &p[i + 1]))
      throw OverflowError("cumulative trace demand exceeds the Cycles range",
                          "prefix sum at event " + std::to_string(i), __FILE__, __LINE__);
  }
  return p;
}

/// Applies the resident-byte budget to the trace length: the prefix-sum
/// buffer is the resident working set of one extraction ((n+1) Cycles
/// values; the breakpoint buffer is bounded by the grid budget). Under
/// Degrade the analyzed window shrinks to the longest prefix that fits —
/// the curves then certify that prefix only, which the report states.
/// (The shared index's auxiliary memory is NOT part of this contract: when
/// it would not also fit, Auto falls back to the streaming kernel instead
/// of shedding more events — identical output, see choose_engine.)
EventCount apply_byte_budget(EventCount n, const runtime::RunPolicy* policy,
                             runtime::DegradationReport* degradation) {
  if (!policy) return n;
  const std::int64_t need = (static_cast<std::int64_t>(n) + 1) *
                            static_cast<std::int64_t>(sizeof(Cycles));
  if (policy->bytes_within_budget(need)) return n;
  const EventCount fit =
      policy->budget.max_resident_bytes / static_cast<std::int64_t>(sizeof(Cycles)) - 1;
  if (policy->on_budget == runtime::OnBudget::Fail || fit < 1)
    throw BudgetExceededError("resident_bytes",
                              "extraction needs " + std::to_string(need) +
                                  " resident bytes for " + std::to_string(n) +
                                  " events but the budget allows " +
                                  std::to_string(policy->budget.max_resident_bytes),
                              std::to_string(need), __FILE__, __LINE__);
  WLC_COUNTER_ADD("runtime.degradations", 1);
  WLC_COUNTER_ADD("runtime.shed_events", n - fit);
  if (degradation) {
    degradation->events_requested += n;
    degradation->events_analyzed += fit;
    degradation->note("byte budget truncated the analyzed window from " + std::to_string(n) +
                      " to " + std::to_string(fit) +
                      " events (bounds certify the analyzed prefix only)");
  }
  return fit;
}

struct NormalizedGrid {
  std::vector<EventCount> ks;
  std::int64_t clamped = 0;  ///< requested entries with k > n (before dedup)
};

NormalizedGrid normalized_grid(std::span<const std::int64_t> ks, EventCount n) {
  NormalizedGrid g;
  g.ks.reserve(ks.size() + 1);
  for (std::int64_t k : ks) {
    WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
    if (k > n) ++g.clamped;
    g.ks.push_back(std::min<EventCount>(k, n));
  }
  g.ks.push_back(n);
  std::sort(g.ks.begin(), g.ks.end());
  g.ks.erase(std::unique(g.ks.begin(), g.ks.end()), g.ks.end());
  return g;
}

/// One grid entry's sliding-window extremum — the retained oracle kernel.
/// The scan order (j ascending) is the unit of determinism: serial and
/// parallel oracle paths both run this exact loop per k, and the fast
/// engines reduce the same candidate set, so results cannot differ.
Cycles scan_window(const std::vector<Cycles>& p, EventCount n, EventCount k, Bound bound) {
  Cycles best = bound == Bound::Upper ? std::numeric_limits<Cycles>::min()
                                      : std::numeric_limits<Cycles>::max();
  for (EventCount j = 0; j + k <= n; ++j) {
    const Cycles w = p[static_cast<std::size_t>(j + k)] - p[static_cast<std::size_t>(j)];
    best = bound == Bound::Upper ? std::max(best, w) : std::min(best, w);
  }
  return best;
}

WorkloadCurve extract(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                      Bound bound, common::ThreadPool* pool, ExtractStats* stats,
                      const runtime::RunPolicy* policy,
                      runtime::DegradationReport* degradation, common::GapEngine engine) {
  WLC_TRACE_SPAN(bound == Bound::Upper ? "extract.upper" : "extract.lower");
  if (policy) policy->checkpoint("workload extraction");
  WLC_REQUIRE(!demands.empty(), "demand trace must be non-empty");
  const EventCount n =
      apply_byte_budget(static_cast<EventCount>(demands.size()), policy, degradation);
  const std::vector<Cycles> p = prefix_sums(demands, static_cast<std::size_t>(n));
  NormalizedGrid grid = normalized_grid(ks, n);
  grid.ks = runtime::apply_grid_budget(std::move(grid.ks), policy, degradation,
                                       "workload extraction");
  WLC_COUNTER_ADD("extract.grid_entries", static_cast<std::int64_t>(grid.ks.size()));
  WLC_COUNTER_ADD("extract.clamped_ks", grid.clamped);
  if (stats) stats->clamped_ks = grid.clamped;
  std::vector<WorkloadCurve::Point> pts(grid.ks.size() + 1);
  pts[0] = {0, 0};
  // All engines poll with at least the oracle's cadence (before every grid
  // entry; the index build and the streaming pass add polls every few
  // thousand values), so a cancelled run aborts within one bounded chunk
  // regardless of threading or engine.
  const auto check = [&] {
    if (policy) policy->checkpoint("workload extraction");
  };
  const std::function<void()> checkpoint = check;
  const auto run_entries = [&](auto&& eval_entry) {
    if (pool) {
      common::parallel_for(*pool, grid.ks.size(), eval_entry, check);
    } else {
      for (std::size_t gi = 0; gi < grid.ks.size(); ++gi) {
        check();
        eval_entry(gi);
      }
    }
  };
  switch (common::choose_gap_engine<Cycles>(
      engine, n + 1, policy ? policy->budget.max_resident_bytes : 0)) {
    case common::GapEngine::Streaming: {
      WLC_COUNTER_ADD("extract.engine.streaming", 1);
      check();
      std::vector<Cycles> mx(grid.ks.size());
      std::vector<Cycles> mn(grid.ks.size());
      common::streaming_gaps<Cycles>(p, grid.ks, mx, mn, &checkpoint);
      std::int64_t windows = 0;
      for (std::size_t gi = 0; gi < grid.ks.size(); ++gi) {
        windows += n - grid.ks[gi] + 1;
        pts[gi + 1] = {grid.ks[gi], bound == Bound::Upper ? mx[gi] : mn[gi]};
      }
      WLC_COUNTER_ADD("extract.windows_scanned", windows);
      break;
    }
    case common::GapEngine::SharedIndex: {
      WLC_COUNTER_ADD("extract.engine.shared_index", 1);
      const common::SlidingExtrema<Cycles> index(p, &checkpoint);
      std::vector<std::int64_t> scanned(grid.ks.size(), 0);
      run_entries([&](std::size_t gi) {
        const EventCount k = grid.ks[gi];
        pts[gi + 1] = {k, bound == Bound::Upper ? index.max_gap(k, &scanned[gi])
                                                : index.min_gap(k, &scanned[gi])};
      });
      WLC_COUNTER_ADD("extract.windows_scanned",
                      std::accumulate(scanned.begin(), scanned.end(), std::int64_t{0}));
      break;
    }
    default: {
      WLC_COUNTER_ADD("extract.engine.oracle", 1);
      run_entries([&](std::size_t gi) {
        const EventCount k = grid.ks[gi];
        WLC_COUNTER_ADD("extract.windows_scanned", n - k + 1);
        pts[gi + 1] = {k, scan_window(p, n, k, bound)};
      });
      break;
    }
  }
  return WorkloadCurve(bound, std::move(pts));
}

}  // namespace

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats, const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation, common::GapEngine engine) {
  return extract(demands, ks, Bound::Upper, nullptr, stats, policy, degradation, engine);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats, const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation, common::GapEngine engine) {
  return extract(demands, ks, Bound::Lower, nullptr, stats, policy, degradation, engine);
}

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats,
                            const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation, common::GapEngine engine) {
  return extract(demands, ks, Bound::Upper, &pool, stats, policy, degradation, engine);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats,
                            const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation, common::GapEngine engine) {
  return extract(demands, ks, Bound::Lower, &pool, stats, policy, degradation, engine);
}

WorkloadCurve extract_upper_oracle(const trace::DemandTrace& demands,
                                   std::span<const std::int64_t> ks, ExtractStats* stats,
                                   const runtime::RunPolicy* policy,
                                   runtime::DegradationReport* degradation) {
  return extract(demands, ks, Bound::Upper, nullptr, stats, policy, degradation,
                 common::GapEngine::Oracle);
}

WorkloadCurve extract_lower_oracle(const trace::DemandTrace& demands,
                                   std::span<const std::int64_t> ks, ExtractStats* stats,
                                   const runtime::RunPolicy* policy,
                                   runtime::DegradationReport* degradation) {
  return extract(demands, ks, Bound::Lower, nullptr, stats, policy, degradation,
                 common::GapEngine::Oracle);
}

namespace {
std::vector<std::int64_t> every_k(EventCount k_max) {
  std::vector<std::int64_t> ks(static_cast<std::size_t>(k_max));
  std::iota(ks.begin(), ks.end(), 1);
  return ks;
}
}  // namespace

WorkloadCurve extract_upper_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_upper(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

WorkloadCurve extract_lower_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_lower(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

std::vector<CurveBundle> extract_batch(const std::vector<trace::DemandTrace>& traces,
                                       std::span<const std::int64_t> ks,
                                       common::ThreadPool& pool,
                                       const runtime::RunPolicy* policy,
                                       runtime::DegradationReport* degradation,
                                       common::GapEngine engine) {
  WLC_TRACE_SPAN("extract.batch");
  WLC_COUNTER_ADD("extract.batch_traces", static_cast<std::int64_t>(traces.size()));
  // The grid budget is applied once to the shared grid (recorded once);
  // the per-trace policy keeps the token/deadline/byte budget but drops the
  // already-satisfied grid axis so per-trace normalization cannot re-shed.
  std::vector<std::int64_t> shared_ks(ks.begin(), ks.end());
  runtime::RunPolicy per_trace;
  const runtime::RunPolicy* pp = nullptr;
  if (policy) {
    shared_ks =
        runtime::apply_grid_budget(std::move(shared_ks), policy, degradation, "batched");
    per_trace = *policy;
    per_trace.budget.max_grid_points = 0;
    pp = &per_trace;
  }
  // Per-trace degradation lands in an indexed slot and is folded after the
  // join, so the combined report is deterministic in trace order no matter
  // how the pool schedules the tasks.
  std::vector<runtime::DegradationReport> local(traces.size());
  const auto check = [&] {
    if (pp) pp->checkpoint("batched extraction");
  };
  // Outer parallelism only: each task runs the serial per-trace extraction,
  // so every bundle is bit-identical to individual extract_upper/lower
  // calls regardless of how the pool schedules the traces.
  auto bundles = common::parallel_map(
      pool, traces,
      [&](const trace::DemandTrace& d) {
        const auto idx = static_cast<std::size_t>(&d - traces.data());
        auto* deg = degradation ? &local[idx] : nullptr;
        ExtractStats stats;
        WorkloadCurve upper = extract_upper(d, shared_ks, &stats, pp, deg, engine);
        WorkloadCurve lower = extract_lower(d, shared_ks, nullptr, pp, deg, engine);
        return CurveBundle{std::move(upper), std::move(lower), stats};
      },
      check);
  if (degradation)
    for (const auto& r : local) degradation->merge(r);
  return bundles;
}

}  // namespace wlc::workload
