#include "workload/extract.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "common/error.h"
#include "obs/obs.h"

namespace wlc::workload {

namespace {

std::vector<Cycles> prefix_sums(const trace::DemandTrace& d, std::size_t n) {
  std::vector<Cycles> p(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    WLC_REQUIRE(d[i] >= 0, "execution demands must be non-negative");
    if (__builtin_add_overflow(p[i], d[i], &p[i + 1]))
      throw OverflowError("cumulative trace demand exceeds the Cycles range",
                          "prefix sum at event " + std::to_string(i), __FILE__, __LINE__);
  }
  return p;
}

/// Applies the resident-byte budget to the trace length: the prefix-sum
/// buffer is the resident working set of one extraction ((n+1) Cycles
/// values; the breakpoint buffer is bounded by the grid budget). Under
/// Degrade the analyzed window shrinks to the longest prefix that fits —
/// the curves then certify that prefix only, which the report states.
EventCount apply_byte_budget(EventCount n, const runtime::RunPolicy* policy,
                             runtime::DegradationReport* degradation) {
  if (!policy || policy->budget.max_resident_bytes <= 0) return n;
  const std::int64_t need = (static_cast<std::int64_t>(n) + 1) *
                            static_cast<std::int64_t>(sizeof(Cycles));
  if (need <= policy->budget.max_resident_bytes) return n;
  const EventCount fit =
      policy->budget.max_resident_bytes / static_cast<std::int64_t>(sizeof(Cycles)) - 1;
  if (policy->on_budget == runtime::OnBudget::Fail || fit < 1)
    throw BudgetExceededError("resident_bytes",
                              "extraction needs " + std::to_string(need) +
                                  " resident bytes for " + std::to_string(n) +
                                  " events but the budget allows " +
                                  std::to_string(policy->budget.max_resident_bytes),
                              std::to_string(need), __FILE__, __LINE__);
  WLC_COUNTER_ADD("runtime.degradations", 1);
  WLC_COUNTER_ADD("runtime.shed_events", n - fit);
  if (degradation) {
    degradation->events_requested += n;
    degradation->events_analyzed += fit;
    degradation->note("byte budget truncated the analyzed window from " + std::to_string(n) +
                      " to " + std::to_string(fit) +
                      " events (bounds certify the analyzed prefix only)");
  }
  return fit;
}

struct NormalizedGrid {
  std::vector<EventCount> ks;
  std::int64_t clamped = 0;  ///< requested entries with k > n (before dedup)
};

NormalizedGrid normalized_grid(std::span<const std::int64_t> ks, EventCount n) {
  NormalizedGrid g;
  g.ks.reserve(ks.size() + 1);
  for (std::int64_t k : ks) {
    WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
    if (k > n) ++g.clamped;
    g.ks.push_back(std::min<EventCount>(k, n));
  }
  g.ks.push_back(n);
  std::sort(g.ks.begin(), g.ks.end());
  g.ks.erase(std::unique(g.ks.begin(), g.ks.end()), g.ks.end());
  return g;
}

/// One grid entry's sliding-window extremum. The scan order (j ascending)
/// is the unit of determinism: serial and parallel paths both run this
/// exact loop per k, so their results cannot differ.
Cycles scan_window(const std::vector<Cycles>& p, EventCount n, EventCount k, Bound bound) {
  Cycles best = bound == Bound::Upper ? std::numeric_limits<Cycles>::min()
                                      : std::numeric_limits<Cycles>::max();
  for (EventCount j = 0; j + k <= n; ++j) {
    const Cycles w = p[static_cast<std::size_t>(j + k)] - p[static_cast<std::size_t>(j)];
    best = bound == Bound::Upper ? std::max(best, w) : std::min(best, w);
  }
  return best;
}

WorkloadCurve extract(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                      Bound bound, common::ThreadPool* pool, ExtractStats* stats,
                      const runtime::RunPolicy* policy,
                      runtime::DegradationReport* degradation) {
  WLC_TRACE_SPAN(bound == Bound::Upper ? "extract.upper" : "extract.lower");
  if (policy) policy->checkpoint("workload extraction");
  WLC_REQUIRE(!demands.empty(), "demand trace must be non-empty");
  const EventCount n =
      apply_byte_budget(static_cast<EventCount>(demands.size()), policy, degradation);
  const std::vector<Cycles> p = prefix_sums(demands, static_cast<std::size_t>(n));
  NormalizedGrid grid = normalized_grid(ks, n);
  grid.ks = runtime::apply_grid_budget(std::move(grid.ks), policy, degradation,
                                       "workload extraction");
  WLC_COUNTER_ADD("extract.grid_entries", static_cast<std::int64_t>(grid.ks.size()));
  WLC_COUNTER_ADD("extract.clamped_ks", grid.clamped);
  if (stats) stats->clamped_ks = grid.clamped;
  std::vector<WorkloadCurve::Point> pts(grid.ks.size() + 1);
  pts[0] = {0, 0};
  const auto eval_entry = [&](std::size_t gi) {
    const EventCount k = grid.ks[gi];
    WLC_COUNTER_ADD("extract.windows_scanned", n - k + 1);
    pts[gi + 1] = {k, scan_window(p, n, k, bound)};
  };
  // Both paths poll with the same cadence (before every grid entry), so a
  // cancelled run aborts within one window scan regardless of threading.
  const auto check = [&] {
    if (policy) policy->checkpoint("workload extraction");
  };
  if (pool) {
    common::parallel_for(*pool, grid.ks.size(), eval_entry, check);
  } else {
    for (std::size_t gi = 0; gi < grid.ks.size(); ++gi) {
      check();
      eval_entry(gi);
    }
  }
  return WorkloadCurve(bound, std::move(pts));
}

}  // namespace

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats, const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation) {
  return extract(demands, ks, Bound::Upper, nullptr, stats, policy, degradation);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats, const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation) {
  return extract(demands, ks, Bound::Lower, nullptr, stats, policy, degradation);
}

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats,
                            const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation) {
  return extract(demands, ks, Bound::Upper, &pool, stats, policy, degradation);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats,
                            const runtime::RunPolicy* policy,
                            runtime::DegradationReport* degradation) {
  return extract(demands, ks, Bound::Lower, &pool, stats, policy, degradation);
}

namespace {
std::vector<std::int64_t> every_k(EventCount k_max) {
  std::vector<std::int64_t> ks(static_cast<std::size_t>(k_max));
  std::iota(ks.begin(), ks.end(), 1);
  return ks;
}
}  // namespace

WorkloadCurve extract_upper_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_upper(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

WorkloadCurve extract_lower_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_lower(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

std::vector<CurveBundle> extract_batch(const std::vector<trace::DemandTrace>& traces,
                                       std::span<const std::int64_t> ks,
                                       common::ThreadPool& pool,
                                       const runtime::RunPolicy* policy,
                                       runtime::DegradationReport* degradation) {
  WLC_TRACE_SPAN("extract.batch");
  WLC_COUNTER_ADD("extract.batch_traces", static_cast<std::int64_t>(traces.size()));
  // The grid budget is applied once to the shared grid (recorded once);
  // the per-trace policy keeps the token/deadline/byte budget but drops the
  // already-satisfied grid axis so per-trace normalization cannot re-shed.
  std::vector<std::int64_t> shared_ks(ks.begin(), ks.end());
  runtime::RunPolicy per_trace;
  const runtime::RunPolicy* pp = nullptr;
  if (policy) {
    shared_ks =
        runtime::apply_grid_budget(std::move(shared_ks), policy, degradation, "batched");
    per_trace = *policy;
    per_trace.budget.max_grid_points = 0;
    pp = &per_trace;
  }
  // Per-trace degradation lands in an indexed slot and is folded after the
  // join, so the combined report is deterministic in trace order no matter
  // how the pool schedules the tasks.
  std::vector<runtime::DegradationReport> local(traces.size());
  const auto check = [&] {
    if (pp) pp->checkpoint("batched extraction");
  };
  // Outer parallelism only: each task runs the serial per-trace extraction,
  // so every bundle is bit-identical to individual extract_upper/lower
  // calls regardless of how the pool schedules the traces.
  auto bundles = common::parallel_map(
      pool, traces,
      [&](const trace::DemandTrace& d) {
        const auto idx = static_cast<std::size_t>(&d - traces.data());
        auto* deg = degradation ? &local[idx] : nullptr;
        ExtractStats stats;
        WorkloadCurve upper = extract_upper(d, shared_ks, &stats, pp, deg);
        WorkloadCurve lower = extract_lower(d, shared_ks, nullptr, pp, deg);
        return CurveBundle{std::move(upper), std::move(lower), stats};
      },
      check);
  if (degradation)
    for (const auto& r : local) degradation->merge(r);
  return bundles;
}

}  // namespace wlc::workload
