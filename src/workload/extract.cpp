#include "workload/extract.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "common/error.h"

namespace wlc::workload {

namespace {

std::vector<Cycles> prefix_sums(const trace::DemandTrace& d) {
  std::vector<Cycles> p(d.size() + 1, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    WLC_REQUIRE(d[i] >= 0, "execution demands must be non-negative");
    if (__builtin_add_overflow(p[i], d[i], &p[i + 1]))
      throw OverflowError("cumulative trace demand exceeds the Cycles range",
                          "prefix sum at event " + std::to_string(i), __FILE__, __LINE__);
  }
  return p;
}

std::vector<EventCount> normalized_grid(std::span<const std::int64_t> ks, EventCount n) {
  std::vector<EventCount> grid;
  grid.reserve(ks.size() + 1);
  for (std::int64_t k : ks) {
    WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
    grid.push_back(std::min<EventCount>(k, n));
  }
  grid.push_back(n);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

WorkloadCurve extract(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                      Bound bound) {
  WLC_REQUIRE(!demands.empty(), "demand trace must be non-empty");
  const auto n = static_cast<EventCount>(demands.size());
  const std::vector<Cycles> p = prefix_sums(demands);
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  for (EventCount k : normalized_grid(ks, n)) {
    Cycles best = bound == Bound::Upper ? std::numeric_limits<Cycles>::min()
                                        : std::numeric_limits<Cycles>::max();
    for (EventCount j = 0; j + k <= n; ++j) {
      const Cycles w = p[static_cast<std::size_t>(j + k)] - p[static_cast<std::size_t>(j)];
      best = bound == Bound::Upper ? std::max(best, w) : std::min(best, w);
    }
    pts.emplace_back(k, best);
  }
  return WorkloadCurve(bound, std::move(pts));
}

}  // namespace

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks) {
  return extract(demands, ks, Bound::Upper);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks) {
  return extract(demands, ks, Bound::Lower);
}

namespace {
std::vector<std::int64_t> every_k(EventCount k_max) {
  std::vector<std::int64_t> ks(static_cast<std::size_t>(k_max));
  std::iota(ks.begin(), ks.end(), 1);
  return ks;
}
}  // namespace

WorkloadCurve extract_upper_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_upper(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

WorkloadCurve extract_lower_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_lower(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

}  // namespace wlc::workload
