#include "workload/extract.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "common/error.h"
#include "obs/obs.h"

namespace wlc::workload {

namespace {

std::vector<Cycles> prefix_sums(const trace::DemandTrace& d) {
  std::vector<Cycles> p(d.size() + 1, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    WLC_REQUIRE(d[i] >= 0, "execution demands must be non-negative");
    if (__builtin_add_overflow(p[i], d[i], &p[i + 1]))
      throw OverflowError("cumulative trace demand exceeds the Cycles range",
                          "prefix sum at event " + std::to_string(i), __FILE__, __LINE__);
  }
  return p;
}

struct NormalizedGrid {
  std::vector<EventCount> ks;
  std::int64_t clamped = 0;  ///< requested entries with k > n (before dedup)
};

NormalizedGrid normalized_grid(std::span<const std::int64_t> ks, EventCount n) {
  NormalizedGrid g;
  g.ks.reserve(ks.size() + 1);
  for (std::int64_t k : ks) {
    WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
    if (k > n) ++g.clamped;
    g.ks.push_back(std::min<EventCount>(k, n));
  }
  g.ks.push_back(n);
  std::sort(g.ks.begin(), g.ks.end());
  g.ks.erase(std::unique(g.ks.begin(), g.ks.end()), g.ks.end());
  return g;
}

/// One grid entry's sliding-window extremum. The scan order (j ascending)
/// is the unit of determinism: serial and parallel paths both run this
/// exact loop per k, so their results cannot differ.
Cycles scan_window(const std::vector<Cycles>& p, EventCount n, EventCount k, Bound bound) {
  Cycles best = bound == Bound::Upper ? std::numeric_limits<Cycles>::min()
                                      : std::numeric_limits<Cycles>::max();
  for (EventCount j = 0; j + k <= n; ++j) {
    const Cycles w = p[static_cast<std::size_t>(j + k)] - p[static_cast<std::size_t>(j)];
    best = bound == Bound::Upper ? std::max(best, w) : std::min(best, w);
  }
  return best;
}

WorkloadCurve extract(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                      Bound bound, common::ThreadPool* pool, ExtractStats* stats) {
  WLC_TRACE_SPAN(bound == Bound::Upper ? "extract.upper" : "extract.lower");
  WLC_REQUIRE(!demands.empty(), "demand trace must be non-empty");
  const auto n = static_cast<EventCount>(demands.size());
  const std::vector<Cycles> p = prefix_sums(demands);
  const NormalizedGrid grid = normalized_grid(ks, n);
  WLC_COUNTER_ADD("extract.grid_entries", static_cast<std::int64_t>(grid.ks.size()));
  WLC_COUNTER_ADD("extract.clamped_ks", grid.clamped);
  if (stats) stats->clamped_ks = grid.clamped;
  std::vector<WorkloadCurve::Point> pts(grid.ks.size() + 1);
  pts[0] = {0, 0};
  const auto eval_entry = [&](std::size_t gi) {
    const EventCount k = grid.ks[gi];
    WLC_COUNTER_ADD("extract.windows_scanned", n - k + 1);
    pts[gi + 1] = {k, scan_window(p, n, k, bound)};
  };
  if (pool)
    common::parallel_for(*pool, grid.ks.size(), eval_entry);
  else
    for (std::size_t gi = 0; gi < grid.ks.size(); ++gi) eval_entry(gi);
  return WorkloadCurve(bound, std::move(pts));
}

}  // namespace

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats) {
  return extract(demands, ks, Bound::Upper, nullptr, stats);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            ExtractStats* stats) {
  return extract(demands, ks, Bound::Lower, nullptr, stats);
}

WorkloadCurve extract_upper(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats) {
  return extract(demands, ks, Bound::Upper, &pool, stats);
}

WorkloadCurve extract_lower(const trace::DemandTrace& demands, std::span<const std::int64_t> ks,
                            common::ThreadPool& pool, ExtractStats* stats) {
  return extract(demands, ks, Bound::Lower, &pool, stats);
}

namespace {
std::vector<std::int64_t> every_k(EventCount k_max) {
  std::vector<std::int64_t> ks(static_cast<std::size_t>(k_max));
  std::iota(ks.begin(), ks.end(), 1);
  return ks;
}
}  // namespace

WorkloadCurve extract_upper_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_upper(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

WorkloadCurve extract_lower_dense(const trace::DemandTrace& demands, EventCount k_max) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  return extract_lower(demands, every_k(std::min<EventCount>(k_max, static_cast<EventCount>(demands.size()))));
}

std::vector<CurveBundle> extract_batch(const std::vector<trace::DemandTrace>& traces,
                                       std::span<const std::int64_t> ks,
                                       common::ThreadPool& pool) {
  WLC_TRACE_SPAN("extract.batch");
  WLC_COUNTER_ADD("extract.batch_traces", static_cast<std::int64_t>(traces.size()));
  // Outer parallelism only: each task runs the serial per-trace extraction,
  // so every bundle is bit-identical to individual extract_upper/lower
  // calls regardless of how the pool schedules the traces.
  return common::parallel_map(pool, traces, [&](const trace::DemandTrace& d) {
    ExtractStats stats;
    WorkloadCurve upper = extract_upper(d, ks, &stats);
    WorkloadCurve lower = extract_lower(d, ks);
    return CurveBundle{std::move(upper), std::move(lower), stats};
  });
}

}  // namespace wlc::workload
