// Workload curves — the paper's central abstraction (Definition 1).
//
//   γᵘ(k) = max_j γ_w(j, k)  — most cycles any k consecutive activations of a
//                              task can demand,
//   γˡ(k) = min_j γ_b(j, k)  — fewest cycles k consecutive activations can
//                              demand,
//
// with pseudo-inverses
//
//   γᵘ⁻¹(e) = max{ k : γᵘ(k) <= e }  — events guaranteed completable with e
//                                      cycles,
//   γˡ⁻¹(e) = min{ k : γˡ(k) >= e }.
//
// Representation. A WorkloadCurve is one bound (Upper or Lower) stored as
// exact integer breakpoints (kᵢ, cᵢ): strictly increasing kᵢ starting at
// (0, 0), non-decreasing cᵢ. Between breakpoints the curve takes the
// conservative side of its bound: an Upper curve steps up to the *next*
// breakpoint's value, a Lower curve holds the *previous* one. A curve whose
// breakpoints enumerate every k in [0, K] is exact on that range.
//
// Beyond the last breakpoint K the curve extends block-wise using the
// sub-additivity of γᵘ (γᵘ(a+b) <= γᵘ(a)+γᵘ(b), split any window in two) and
// the super-additivity of γˡ:
//
//   γᵘ(qK + r) <= q·γᵘ(K) + γᵘ(r),      γˡ(qK + r) >= q·γˡ(K) + γˡ(r),
//
// so evaluation is total on ℤ≥0 and stays a guaranteed bound.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace wlc::workload {

enum class Bound { Upper, Lower };

class WorkloadCurve {
 public:
  using Point = std::pair<EventCount, Cycles>;

  /// Breakpoints must start at (0,0), have strictly increasing k and
  /// non-decreasing cycles, and contain at least k = 1 (so WCET/BCET exist).
  WorkloadCurve(Bound bound, std::vector<Point> points);

  /// The degenerate single-value model: γ(k) = c·k (what a WCET- or
  /// BCET-only characterization can express). Exact for every k: with the
  /// breakpoints {(0,0), (1,c)} the block-wise extension reproduces the
  /// linear form verbatim.
  static WorkloadCurve from_constant_demand(Bound bound, Cycles c);

  /// Exact curve from a dense value vector v[0..K] with v[0] == 0.
  static WorkloadCurve from_dense(Bound bound, const std::vector<Cycles>& values);

  Bound bound() const { return bound_; }
  const std::vector<Point>& points() const { return points_; }
  /// Last exact breakpoint; beyond it evaluation uses block extension.
  EventCount max_k() const { return points_.back().first; }

  /// γ(k). Total on k >= 0 (block extension past max_k).
  Cycles value(EventCount k) const;

  /// Pseudo-inverse. Upper: γᵘ⁻¹(e) = max{k : value(k) <= e}; Lower:
  /// γˡ⁻¹(e) = min{k : value(k) >= e}. Exact w.r.t. value(); e >= 0.
  EventCount inverse(Cycles e) const;

  /// γᵘ(1) for an Upper curve — the classical WCET of the task.
  Cycles wcet() const;
  /// γˡ(1) for a Lower curve — the classical BCET.
  Cycles bcet() const;

  /// Long-run cycles per event over the exact range: value(max_k)/max_k.
  double long_run_demand() const;

  /// Sum of curves of the same bound — the demand of a task whose every
  /// activation runs both constituents (e.g. two pipeline stages fused onto
  /// one PE).
  static WorkloadCurve add(const WorkloadCurve& a, const WorkloadCurve& b);

  /// Cross-trace combination: pointwise max of Upper curves (resp. min of
  /// Lower curves), valid for the union of the underlying event sequences —
  /// the paper's "maximum over all respective curves of individual clips".
  static WorkloadCurve combine(const WorkloadCurve& a, const WorkloadCurve& b);

  /// Structural sanity: monotone breakpoints, (0,0) origin, and — on the
  /// exact range — no breakpoint exceeding k·value(1) for Upper curves
  /// (γᵘ(k) <= k·WCET always holds by definition).
  bool consistent_with_definition() const;

 private:
  Cycles value_in_range(EventCount k) const;  // k in [0, max_k]

  Bound bound_;
  std::vector<Point> points_;
};

}  // namespace wlc::workload
