#include "workload/event_model.h"

#include "common/assert.h"
#include "workload/extract.h"

namespace wlc::workload {

int EventTypeTable::add(std::string name, Cycles bcet, Cycles wcet) {
  WLC_REQUIRE(bcet >= 0 && bcet <= wcet, "need 0 <= bcet <= wcet");
  types_.push_back(EventType{std::move(name), bcet, wcet});
  return static_cast<int>(types_.size()) - 1;
}

const EventType& EventTypeTable::type(int id) const {
  WLC_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < types_.size(), "unknown event type");
  return types_[static_cast<std::size_t>(id)];
}

Cycles EventTypeTable::gamma_w(std::span<const int> seq, std::size_t j, std::size_t k) const {
  WLC_REQUIRE(j >= 1 && (k == 0 || j + k - 1 <= seq.size()),
              "window [j, j+k-1] must lie inside the sequence (1-based)");
  Cycles sum = 0;
  for (std::size_t i = j - 1; i < j - 1 + k; ++i) sum += type(seq[i]).wcet;
  return sum;
}

Cycles EventTypeTable::gamma_b(std::span<const int> seq, std::size_t j, std::size_t k) const {
  WLC_REQUIRE(j >= 1 && (k == 0 || j + k - 1 <= seq.size()),
              "window [j, j+k-1] must lie inside the sequence (1-based)");
  Cycles sum = 0;
  for (std::size_t i = j - 1; i < j - 1 + k; ++i) sum += type(seq[i]).bcet;
  return sum;
}

std::vector<Cycles> EventTypeTable::wcet_demands(std::span<const int> seq) const {
  std::vector<Cycles> out;
  out.reserve(seq.size());
  for (int id : seq) out.push_back(type(id).wcet);
  return out;
}

std::vector<Cycles> EventTypeTable::bcet_demands(std::span<const int> seq) const {
  std::vector<Cycles> out;
  out.reserve(seq.size());
  for (int id : seq) out.push_back(type(id).bcet);
  return out;
}

WorkloadCurve EventTypeTable::upper_curve(std::span<const int> seq, EventCount k_max) const {
  return extract_upper_dense(wcet_demands(seq), k_max);
}

WorkloadCurve EventTypeTable::lower_curve(std::span<const int> seq, EventCount k_max) const {
  return extract_lower_dense(bcet_demands(seq), k_max);
}

}  // namespace wlc::workload
