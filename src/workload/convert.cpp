#include "workload/convert.h"

#include <cmath>
#include <vector>

#include "common/assert.h"

namespace wlc::workload {

curve::DiscreteCurve cycle_arrival_upper(const trace::EmpiricalArrivalCurve& events,
                                         const WorkloadCurve& gamma_u, double dt, std::size_t n) {
  WLC_REQUIRE(events.bound() == trace::EmpiricalArrivalCurve::Bound::Upper,
              "composition needs an upper arrival curve");
  WLC_REQUIRE(gamma_u.bound() == Bound::Upper, "composition needs γᵘ");
  WLC_REQUIRE(n > 0 && dt > 0.0, "need a non-empty grid");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<double>(gamma_u.value(events.eval(dt * static_cast<double>(i))));
  return curve::DiscreteCurve(std::move(v), dt);
}

curve::DiscreteCurve cycle_arrival_lower(const trace::EmpiricalArrivalCurve& events,
                                         const WorkloadCurve& gamma_l, double dt, std::size_t n) {
  WLC_REQUIRE(events.bound() == trace::EmpiricalArrivalCurve::Bound::Lower,
              "composition needs a lower arrival curve");
  WLC_REQUIRE(gamma_l.bound() == Bound::Lower, "composition needs γˡ");
  WLC_REQUIRE(n > 0 && dt > 0.0, "need a non-empty grid");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<double>(gamma_l.value(events.eval(dt * static_cast<double>(i))));
  return curve::DiscreteCurve(std::move(v), dt);
}

curve::DiscreteCurve event_service_lower(const curve::DiscreteCurve& beta_cycles,
                                         const WorkloadCurve& gamma_u) {
  WLC_REQUIRE(gamma_u.bound() == Bound::Upper, "cycle→event service conversion needs γᵘ");
  std::vector<double> v(beta_cycles.size());
  for (std::size_t i = 0; i < beta_cycles.size(); ++i) {
    // Round the cycle budget down before inverting — fractional cycles can
    // never complete an extra event.
    const auto budget = static_cast<Cycles>(std::floor(std::max(0.0, beta_cycles[i])));
    v[i] = static_cast<double>(gamma_u.inverse(budget));
  }
  return curve::DiscreteCurve(std::move(v), beta_cycles.dt());
}

curve::DiscreteCurve event_service_upper(const curve::DiscreteCurve& beta_upper_cycles,
                                         const WorkloadCurve& gamma_l) {
  WLC_REQUIRE(gamma_l.bound() == Bound::Lower, "upper cycle→event conversion needs γˡ");
  std::vector<double> v(beta_upper_cycles.size());
  for (std::size_t i = 0; i < beta_upper_cycles.size(); ++i) {
    // max{k : γˡ(k) <= e} = min{k : γˡ(k) >= e+1} - 1 for integer demands:
    // completing k events costs at least γˡ(k), so the supplied budget caps k.
    const auto budget = static_cast<Cycles>(std::ceil(std::max(0.0, beta_upper_cycles[i])));
    v[i] = static_cast<double>(gamma_l.inverse(budget + 1) - 1);
  }
  return curve::DiscreteCurve(std::move(v), beta_upper_cycles.dt());
}

}  // namespace wlc::workload
