#include "workload/polling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace wlc::workload {

PollingTaskModel::PollingTaskModel(TimeSec poll_period, TimeSec theta_min, TimeSec theta_max,
                                   Cycles e_p, Cycles e_c)
    : poll_period_(poll_period), theta_min_(theta_min), theta_max_(theta_max), e_p_(e_p),
      e_c_(e_c) {
  WLC_REQUIRE(poll_period > 0.0, "poll period must be positive");
  WLC_REQUIRE(poll_period <= theta_min, "the paper assumes T <= θ_min (fast polling)");
  WLC_REQUIRE(theta_min <= theta_max, "need θ_min <= θ_max");
  WLC_REQUIRE(e_c >= 0 && e_c <= e_p, "need 0 <= e_c <= e_p");
}

EventCount PollingTaskModel::n_max(EventCount k) const {
  WLC_REQUIRE(k >= 0, "activation counts are non-negative");
  if (k == 0) return 0;
  const auto by_rate =
      1 + static_cast<EventCount>(std::floor(static_cast<double>(k) * poll_period_ / theta_min_));
  return std::min(k, by_rate);
}

EventCount PollingTaskModel::n_min(EventCount k) const {
  WLC_REQUIRE(k >= 0, "activation counts are non-negative");
  return static_cast<EventCount>(std::floor(static_cast<double>(k) * poll_period_ / theta_max_));
}

Cycles PollingTaskModel::gamma_u(EventCount k) const {
  const EventCount n = n_max(k);
  return n * e_p_ + (k - n) * e_c_;
}

Cycles PollingTaskModel::gamma_l(EventCount k) const {
  const EventCount n = n_min(k);
  return n * e_p_ + (k - n) * e_c_;
}

WorkloadCurve PollingTaskModel::upper_curve(EventCount k_max) const {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  std::vector<Cycles> values(static_cast<std::size_t>(k_max) + 1);
  for (EventCount k = 0; k <= k_max; ++k) values[static_cast<std::size_t>(k)] = gamma_u(k);
  return WorkloadCurve::from_dense(Bound::Upper, values);
}

WorkloadCurve PollingTaskModel::lower_curve(EventCount k_max) const {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  std::vector<Cycles> values(static_cast<std::size_t>(k_max) + 1);
  for (EventCount k = 0; k <= k_max; ++k) values[static_cast<std::size_t>(k)] = gamma_l(k);
  return WorkloadCurve::from_dense(Bound::Lower, values);
}

}  // namespace wlc::workload
