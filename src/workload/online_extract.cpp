#include "workload/online_extract.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace wlc::workload {

OnlineWorkloadExtractor::OnlineWorkloadExtractor(std::vector<EventCount> ks) : ks_(std::move(ks)) {
  WLC_REQUIRE(!ks_.empty(), "need at least one window size");
  for (EventCount k : ks_) WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
  ks_.push_back(1);  // k = 1 is always tracked (defines WCET/BCET)
  std::sort(ks_.begin(), ks_.end());
  ks_.erase(std::unique(ks_.begin(), ks_.end()), ks_.end());
  window_sum_.assign(ks_.size(), 0);
  max_sum_.assign(ks_.size(), std::numeric_limits<Cycles>::min());
  min_sum_.assign(ks_.size(), std::numeric_limits<Cycles>::max());
  ring_.assign(static_cast<std::size_t>(ks_.back()), 0);
}

void OnlineWorkloadExtractor::push(Cycles demand) {
  WLC_REQUIRE(demand >= 0, "execution demands must be non-negative");
  ++events_;
  // The ring holds the last max(ks) demands. Save the slot being overwritten
  // first — for k == ring size, that is exactly the element sliding out.
  const Cycles overwritten = ring_[ring_pos_];
  ring_[ring_pos_] = demand;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    const auto k = static_cast<std::size_t>(ks_[i]);
    window_sum_[i] += demand;
    if (events_ > ks_[i]) {
      const std::size_t out = (ring_pos_ + ring_.size() - k) % ring_.size();
      window_sum_[i] -= (out == ring_pos_) ? overwritten : ring_[out];
    }
    if (events_ >= ks_[i]) {
      max_sum_[i] = std::max(max_sum_[i], window_sum_[i]);
      min_sum_[i] = std::min(min_sum_[i], window_sum_[i]);
    }
  }
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
}

bool OnlineWorkloadExtractor::ready() const { return events_ >= ks_.front(); }

WorkloadCurve OnlineWorkloadExtractor::upper() const {
  WLC_REQUIRE(ready(), "no window has completed yet");
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (events_ < ks_[i]) break;
    pts.emplace_back(ks_[i], max_sum_[i]);
  }
  return WorkloadCurve(Bound::Upper, std::move(pts));
}

WorkloadCurve OnlineWorkloadExtractor::lower() const {
  WLC_REQUIRE(ready(), "no window has completed yet");
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (events_ < ks_[i]) break;
    pts.emplace_back(ks_[i], min_sum_[i]);
  }
  return WorkloadCurve(Bound::Lower, std::move(pts));
}

}  // namespace wlc::workload
