#include "workload/online_extract.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace wlc::workload {

namespace {

/// Saturating narrowing of a 128-bit extremum to the reported Cycles range.
/// Clamping at the Cycles maximum is sound in both directions: a clamped
/// γᵘ value is still >= nothing it bounds could exceed representably, and a
/// clamped γˡ value only moves the lower bound *down* (true window sums
/// beyond the clamp are larger).
Cycles clamp_to_cycles(__int128 v, bool& saturated) {
  constexpr __int128 kMax = std::numeric_limits<Cycles>::max();
  if (v > kMax) {
    saturated = true;
    return std::numeric_limits<Cycles>::max();
  }
  return static_cast<Cycles>(v);
}

}  // namespace

OnlineWorkloadExtractor::OnlineWorkloadExtractor(std::vector<EventCount> ks) : ks_(std::move(ks)) {
  WLC_REQUIRE(!ks_.empty(), "need at least one window size");
  for (EventCount k : ks_) WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
  ks_.push_back(1);  // k = 1 is always tracked (defines WCET/BCET)
  std::sort(ks_.begin(), ks_.end());
  ks_.erase(std::unique(ks_.begin(), ks_.end()), ks_.end());
  window_sum_.assign(ks_.size(), 0);
  max_sum_.assign(ks_.size(), std::numeric_limits<WideCycles>::min());
  min_sum_.assign(ks_.size(), std::numeric_limits<WideCycles>::max());
  window_seen_.assign(ks_.size(), false);
  ring_.assign(static_cast<std::size_t>(ks_.back()), 0);
}

void OnlineWorkloadExtractor::push(Cycles demand) {
  WLC_REQUIRE(demand >= 0, "execution demands must be non-negative");
  accept(demand);
}

bool OnlineWorkloadExtractor::try_push(Cycles demand) {
  if (demand < 0) {
    // Quarantine: count it and restart every in-flight window, so no
    // reported extremum joins demands from across the corrupted gap.
    ++quarantined_;
    if (clean_run_ > 0) {
      ++windows_reset_;
      std::fill(window_sum_.begin(), window_sum_.end(), 0);
      clean_run_ = 0;
    }
    return false;
  }
  accept(demand);
  return true;
}

void OnlineWorkloadExtractor::accept(Cycles demand) {
  ++events_;
  ++clean_run_;
  // The ring holds the last max(ks) accepted demands. Save the slot being
  // overwritten first — for k == ring size, that is exactly the element
  // sliding out.
  const Cycles overwritten = ring_[ring_pos_];
  ring_[ring_pos_] = demand;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    const auto k = static_cast<std::size_t>(ks_[i]);
    window_sum_[i] += demand;
    if (clean_run_ > ks_[i]) {
      const std::size_t out = (ring_pos_ + ring_.size() - k) % ring_.size();
      window_sum_[i] -= (out == ring_pos_) ? overwritten : ring_[out];
    }
    if (clean_run_ >= ks_[i]) {
      max_sum_[i] = std::max(max_sum_[i], window_sum_[i]);
      min_sum_[i] = std::min(min_sum_[i], window_sum_[i]);
      window_seen_[i] = true;
    }
  }
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
}

bool OnlineWorkloadExtractor::ready() const { return window_seen_.front(); }

ExtractorHealth OnlineWorkloadExtractor::health() const {
  ExtractorHealth h;
  h.accepted = events_;
  h.quarantined = quarantined_;
  h.windows_reset = windows_reset_;
  constexpr WideCycles kMax = std::numeric_limits<Cycles>::max();
  for (std::size_t i = 0; i < ks_.size(); ++i)
    if (window_seen_[i] && (max_sum_[i] > kMax || min_sum_[i] > kMax)) h.saturated = true;
  return h;
}

WorkloadCurve OnlineWorkloadExtractor::upper() const {
  WLC_REQUIRE(ready(), "no window has completed yet");
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  bool saturated = false;
  // Quarantine gaps can leave a larger window's extremum below a smaller
  // window's (the big window only closed in a different clean run); γᵘ is
  // definitionally non-decreasing, and raising a value keeps it an upper
  // bound, so materialize the running maximum.
  WideCycles running = 0;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (!window_seen_[i]) break;
    running = std::max(running, max_sum_[i]);
    pts.emplace_back(ks_[i], clamp_to_cycles(running, saturated));
  }
  return WorkloadCurve(Bound::Upper, std::move(pts));
}

WorkloadCurve OnlineWorkloadExtractor::lower() const {
  WLC_REQUIRE(ready(), "no window has completed yet");
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  bool saturated = false;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (!window_seen_[i]) break;
    pts.emplace_back(ks_[i], clamp_to_cycles(min_sum_[i], saturated));
  }
  return WorkloadCurve(Bound::Lower, std::move(pts));
}

}  // namespace wlc::workload
