#include "workload/online_extract.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace wlc::workload {

namespace {

/// Saturating narrowing of a 128-bit extremum to the reported Cycles range.
/// Clamping at the Cycles maximum is sound in both directions: a clamped
/// γᵘ value is still >= nothing it bounds could exceed representably, and a
/// clamped γˡ value only moves the lower bound *down* (true window sums
/// beyond the clamp are larger).
Cycles clamp_to_cycles(__int128 v, bool& saturated) {
  constexpr __int128 kMax = std::numeric_limits<Cycles>::max();
  if (v > kMax) {
    saturated = true;
    return std::numeric_limits<Cycles>::max();
  }
  return static_cast<Cycles>(v);
}

/// (hi, lo) halves ↔ __int128, the fixed wire layout of the accumulators.
OnlineExtractorState::Wide to_wide(__int128 v) {
  return {static_cast<std::int64_t>(v >> 64),
          static_cast<std::uint64_t>(static_cast<unsigned __int128>(v))};
}

__int128 from_wide(OnlineExtractorState::Wide w) {
  return (static_cast<__int128>(w.hi) << 64) |
         static_cast<__int128>(static_cast<unsigned __int128>(w.lo));
}

}  // namespace

OnlineWorkloadExtractor::OnlineWorkloadExtractor(std::vector<EventCount> ks) : ks_(std::move(ks)) {
  WLC_REQUIRE(!ks_.empty(), "need at least one window size");
  for (EventCount k : ks_) WLC_REQUIRE(k >= 1, "window sizes must be >= 1");
  ks_.push_back(1);  // k = 1 is always tracked (defines WCET/BCET)
  std::sort(ks_.begin(), ks_.end());
  ks_.erase(std::unique(ks_.begin(), ks_.end()), ks_.end());
  window_sum_.assign(ks_.size(), 0);
  max_sum_.assign(ks_.size(), std::numeric_limits<WideCycles>::min());
  min_sum_.assign(ks_.size(), std::numeric_limits<WideCycles>::max());
  window_seen_.assign(ks_.size(), false);
  ring_.assign(static_cast<std::size_t>(ks_.back()), 0);
}

void OnlineWorkloadExtractor::push(Cycles demand) {
  WLC_REQUIRE(demand >= 0, "execution demands must be non-negative");
  accept(demand);
}

bool OnlineWorkloadExtractor::try_push(Cycles demand) {
  if (demand < 0) {
    // Quarantine: count it and restart every in-flight window, so no
    // reported extremum joins demands from across the corrupted gap.
    ++quarantined_;
    if (clean_run_ > 0) {
      ++windows_reset_;
      std::fill(window_sum_.begin(), window_sum_.end(), 0);
      clean_run_ = 0;
    }
    return false;
  }
  accept(demand);
  return true;
}

EventCount OnlineWorkloadExtractor::try_push_all(std::span<const Cycles> demands) {
  EventCount accepted = 0;
  for (Cycles d : demands)
    if (try_push(d)) ++accepted;
  return accepted;
}

void OnlineWorkloadExtractor::push_all(std::span<const Cycles> demands) {
  for (Cycles d : demands) push(d);
}

void OnlineWorkloadExtractor::accept(Cycles demand) {
  ++events_;
  ++clean_run_;
  // The ring holds the last max(ks) accepted demands. Save the slot being
  // overwritten first — for k == ring size, that is exactly the element
  // sliding out.
  const Cycles overwritten = ring_[ring_pos_];
  ring_[ring_pos_] = demand;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    const auto k = static_cast<std::size_t>(ks_[i]);
    window_sum_[i] += demand;
    if (clean_run_ > ks_[i]) {
      const std::size_t out = (ring_pos_ + ring_.size() - k) % ring_.size();
      window_sum_[i] -= (out == ring_pos_) ? overwritten : ring_[out];
    }
    if (clean_run_ >= ks_[i]) {
      max_sum_[i] = std::max(max_sum_[i], window_sum_[i]);
      min_sum_[i] = std::min(min_sum_[i], window_sum_[i]);
      window_seen_[i] = true;
    }
  }
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
}

bool OnlineWorkloadExtractor::ready() const { return window_seen_.front(); }

ExtractorHealth OnlineWorkloadExtractor::health() const {
  ExtractorHealth h;
  h.accepted = events_;
  h.quarantined = quarantined_;
  h.windows_reset = windows_reset_;
  constexpr WideCycles kMax = std::numeric_limits<Cycles>::max();
  for (std::size_t i = 0; i < ks_.size(); ++i)
    if (window_seen_[i] && (max_sum_[i] > kMax || min_sum_[i] > kMax)) h.saturated = true;
  return h;
}

WorkloadCurve OnlineWorkloadExtractor::upper() const {
  WLC_REQUIRE(ready(), "no window has completed yet");
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  bool saturated = false;
  // Quarantine gaps can leave a larger window's extremum below a smaller
  // window's (the big window only closed in a different clean run); γᵘ is
  // definitionally non-decreasing, and raising a value keeps it an upper
  // bound, so materialize the running maximum.
  WideCycles running = 0;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (!window_seen_[i]) break;
    running = std::max(running, max_sum_[i]);
    pts.emplace_back(ks_[i], clamp_to_cycles(running, saturated));
  }
  return WorkloadCurve(Bound::Upper, std::move(pts));
}

OnlineExtractorState OnlineWorkloadExtractor::export_state() const {
  OnlineExtractorState s;
  s.ks = ks_;
  s.window_sum.reserve(ks_.size());
  s.max_sum.reserve(ks_.size());
  s.min_sum.reserve(ks_.size());
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    s.window_sum.push_back(to_wide(window_sum_[i]));
    s.max_sum.push_back(to_wide(max_sum_[i]));
    s.min_sum.push_back(to_wide(min_sum_[i]));
  }
  s.window_seen.assign(window_seen_.begin(), window_seen_.end());
  s.ring = ring_;
  s.ring_pos = ring_pos_;
  s.events = events_;
  s.clean_run = clean_run_;
  s.quarantined = quarantined_;
  s.windows_reset = windows_reset_;
  return s;
}

OnlineWorkloadExtractor OnlineWorkloadExtractor::from_state(const OnlineExtractorState& s) {
  const std::size_t n = s.ks.size();
  WLC_REQUIRE(n >= 1, "extractor state has no window sizes");
  WLC_REQUIRE(s.ks.front() == 1, "extractor state must track k = 1");
  for (std::size_t i = 1; i < n; ++i)
    WLC_REQUIRE(s.ks[i] > s.ks[i - 1], "extractor state window sizes must be strictly increasing");
  WLC_REQUIRE(s.window_sum.size() == n && s.max_sum.size() == n && s.min_sum.size() == n &&
                  s.window_seen.size() == n,
              "extractor state per-window vectors disagree in size");
  WLC_REQUIRE(s.ring.size() == static_cast<std::size_t>(s.ks.back()),
              "extractor state ring size must equal the largest window");
  WLC_REQUIRE(s.ring_pos < s.ring.size(), "extractor state ring position out of range");
  WLC_REQUIRE(s.events >= 0 && s.clean_run >= 0 && s.quarantined >= 0 && s.windows_reset >= 0,
              "extractor state counters must be non-negative");
  WLC_REQUIRE(s.clean_run <= s.events, "extractor state clean run exceeds accepted events");
  for (Cycles d : s.ring) WLC_REQUIRE(d >= 0, "extractor state ring holds a negative demand");
  for (std::size_t i = 0; i < n; ++i) {
    if (s.window_seen[i])
      WLC_REQUIRE(from_wide(s.max_sum[i]) >= from_wide(s.min_sum[i]),
                  "extractor state extrema are inverted");
  }

  OnlineWorkloadExtractor e;
  e.ks_ = s.ks;
  e.window_sum_.reserve(n);
  e.max_sum_.reserve(n);
  e.min_sum_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    e.window_sum_.push_back(from_wide(s.window_sum[i]));
    e.max_sum_.push_back(from_wide(s.max_sum[i]));
    e.min_sum_.push_back(from_wide(s.min_sum[i]));
  }
  e.window_seen_.assign(s.window_seen.begin(), s.window_seen.end());
  e.ring_ = s.ring;
  e.ring_pos_ = static_cast<std::size_t>(s.ring_pos);
  e.events_ = s.events;
  e.clean_run_ = s.clean_run;
  e.quarantined_ = s.quarantined;
  e.windows_reset_ = s.windows_reset;
  return e;
}

WorkloadCurve OnlineWorkloadExtractor::lower() const {
  WLC_REQUIRE(ready(), "no window has completed yet");
  std::vector<WorkloadCurve::Point> pts{{0, 0}};
  bool saturated = false;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (!window_seen_[i]) break;
    pts.emplace_back(ks_[i], clamp_to_cycles(min_sum_[i], saturated));
  }
  return WorkloadCurve(Bound::Lower, std::move(pts));
}

}  // namespace wlc::workload
