// The typed-event execution model of the paper's §2.1 (Fig. 1).
//
// A task τ is triggered by a sequence [E₁, E₂, …] of events; each event has a
// type t from a finite set T, and each type carries an execution-requirement
// interval [bcet(t), wcet(t)] (the SPI-style mode characterization the paper
// builds on). γ_w(j,k) / γ_b(j,k) sum the per-type WCET/BCET over the k
// events starting at position j; the workload curves of Definition 1 are the
// extrema of these over all j.
//
// This module implements those definitions literally (for specification-level
// sequences and tests) plus the exact workload-curve computation over a
// concrete finite type sequence.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Execution-requirement interval of one event type.
struct EventType {
  std::string name;
  Cycles bcet = 0;
  Cycles wcet = 0;
};

/// The finite type set T, indexed by small integers.
class EventTypeTable {
 public:
  /// Adds a type; returns its id. Requires 0 <= bcet <= wcet.
  int add(std::string name, Cycles bcet, Cycles wcet);

  const EventType& type(int id) const;
  std::size_t size() const { return types_.size(); }

  /// γ_w(j, k): worst-case cycles of the k events of `seq` starting at
  /// 1-based position j (paper notation). γ_w(j, 0) = 0.
  Cycles gamma_w(std::span<const int> seq, std::size_t j, std::size_t k) const;
  /// γ_b(j, k): best-case analogue.
  Cycles gamma_b(std::span<const int> seq, std::size_t j, std::size_t k) const;

  /// Exact workload curves of the concrete type sequence `seq` for all
  /// k = 0..k_max (Definition 1 restricted to the positions of `seq`).
  WorkloadCurve upper_curve(std::span<const int> seq, EventCount k_max) const;
  WorkloadCurve lower_curve(std::span<const int> seq, EventCount k_max) const;

  /// Per-activation WCET/BCET demand projections of a type sequence.
  std::vector<Cycles> wcet_demands(std::span<const int> seq) const;
  std::vector<Cycles> bcet_demands(std::span<const int> seq) const;

 private:
  std::vector<EventType> types_;
};

}  // namespace wlc::workload
