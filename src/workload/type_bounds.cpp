#include "workload/type_bounds.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/assert.h"

namespace wlc::workload {

namespace {

struct Mix {
  std::vector<EventCount> min_n;
  std::vector<EventCount> max_n;
};

Mix evaluate_bounds(const EventTypeTable& types, std::span<const TypeOccurrenceBounds> bounds,
                    EventCount k) {
  WLC_REQUIRE(bounds.size() == types.size(), "one occurrence bound per event type");
  Mix mix;
  mix.min_n.reserve(bounds.size());
  mix.max_n.reserve(bounds.size());
  EventCount sum_min = 0;
  EventCount sum_max = 0;
  for (const auto& b : bounds) {
    const EventCount lo = std::max<EventCount>(0, b.min_count(k));
    const EventCount hi = std::min<EventCount>(k, b.max_count(k));
    WLC_REQUIRE(lo <= hi, "type occurrence bounds are contradictory");
    mix.min_n.push_back(lo);
    mix.max_n.push_back(hi);
    sum_min += lo;
    sum_max += hi;
  }
  WLC_REQUIRE(sum_min <= k && k <= sum_max,
              "no feasible type mix for this window size (check the bounds)");
  return mix;
}

/// Greedy fill: mandatory minima, then the remaining events to types in the
/// order given by `priority` (indices sorted by demand).
Cycles greedy_mix(const EventTypeTable& types, const Mix& mix,
                  const std::vector<std::size_t>& priority, EventCount k, bool maximize) {
  EventCount rest = k - std::accumulate(mix.min_n.begin(), mix.min_n.end(), EventCount{0});
  Cycles total = 0;
  std::vector<EventCount> n = mix.min_n;
  for (std::size_t idx : priority) {
    const EventCount room = mix.max_n[idx] - n[idx];
    const EventCount take = std::min(room, rest);
    n[idx] += take;
    rest -= take;
  }
  WLC_ASSERT(rest == 0);
  for (std::size_t i = 0; i < n.size(); ++i) {
    const auto& t = types.type(static_cast<int>(i));
    total += n[i] * (maximize ? t.wcet : t.bcet);
  }
  return total;
}

std::vector<std::size_t> priority_order(const EventTypeTable& types, bool maximize) {
  std::vector<std::size_t> order(types.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Cycles da = maximize ? types.type(static_cast<int>(a)).wcet
                               : types.type(static_cast<int>(a)).bcet;
    const Cycles db = maximize ? types.type(static_cast<int>(b)).wcet
                               : types.type(static_cast<int>(b)).bcet;
    return maximize ? da > db : da < db;
  });
  return order;
}

}  // namespace

Cycles max_demand_mix(const EventTypeTable& types, std::span<const TypeOccurrenceBounds> bounds,
                      EventCount k) {
  WLC_REQUIRE(k >= 0, "window size must be non-negative");
  if (k == 0) return 0;
  return greedy_mix(types, evaluate_bounds(types, bounds, k), priority_order(types, true), k,
                    /*maximize=*/true);
}

Cycles min_demand_mix(const EventTypeTable& types, std::span<const TypeOccurrenceBounds> bounds,
                      EventCount k) {
  WLC_REQUIRE(k >= 0, "window size must be non-negative");
  if (k == 0) return 0;
  return greedy_mix(types, evaluate_bounds(types, bounds, k), priority_order(types, false), k,
                    /*maximize=*/false);
}

namespace {
WorkloadCurve materialize(const EventTypeTable& types, std::span<const TypeOccurrenceBounds> bounds,
                          EventCount k_max, Bound bound) {
  WLC_REQUIRE(k_max >= 1, "need k_max >= 1");
  std::vector<Cycles> values(static_cast<std::size_t>(k_max) + 1, 0);
  for (EventCount k = 1; k <= k_max; ++k)
    values[static_cast<std::size_t>(k)] = bound == Bound::Upper
                                              ? max_demand_mix(types, bounds, k)
                                              : min_demand_mix(types, bounds, k);
  return WorkloadCurve::from_dense(bound, values);
}
}  // namespace

WorkloadCurve upper_from_type_bounds(const EventTypeTable& types,
                                     std::span<const TypeOccurrenceBounds> bounds,
                                     EventCount k_max) {
  return materialize(types, bounds, k_max, Bound::Upper);
}

WorkloadCurve lower_from_type_bounds(const EventTypeTable& types,
                                     std::span<const TypeOccurrenceBounds> bounds,
                                     EventCount k_max) {
  return materialize(types, bounds, k_max, Bound::Lower);
}

}  // namespace wlc::workload
