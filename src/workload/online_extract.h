// Incremental workload-curve extraction for live systems.
//
// The batch extractor (extract.h) needs the whole demand trace; a deployed
// monitor (or a long-running simulation) instead observes one activation at
// a time and wants current γᵘ/γˡ estimates at any moment — e.g. to drive the
// admission or DVS policies built on the curves. This extractor maintains,
// for a fixed set of window sizes K, the exact sliding-window demand extrema
// over everything observed so far, in O(|K|) time per event and
// O(|K| + max K) memory, independent of the trace length.
//
// The curves it reports are exactly what the batch extractor would produce
// on the same prefix restricted to the tracked window sizes (tested), and
// they only ever widen as the prefix grows: the upper extrema are
// non-decreasing and the lower extrema non-increasing in the observed
// prefix, so curves reported at time t remain valid bounds for every
// earlier prefix (a bound, once certified, is never retracted).
//
// Robustness (deployed-monitor hardening):
//  * Window sums are accumulated in 128-bit integers, so no sequence of
//    valid Cycles demands can wrap them. If an extremum exceeds the Cycles
//    range, the *reported* value saturates in the sound direction (γᵘ
//    clamps up to the Cycles maximum — still an upper bound) and the
//    health report flags `saturated` instead of silently wrapping.
//  * `try_push` quarantines invalid demands (negative values) instead of
//    throwing: the event is counted in the health report and every
//    in-flight window is restarted, so no reported extremum ever spans a
//    corrupted observation. The curves then certify the contiguous clean
//    runs of the stream — exactly what the health report says they do.
//    `push` keeps the strict contract (throws wlc::DomainError).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Complete, serializable state of an OnlineWorkloadExtractor — the payload
/// of a serve-daemon session snapshot. An extractor restored from the state
/// exported at event t and then fed the same demands as the original from
/// t onward reports bit-identical curves and health (pinned by tests): the
/// state *is* the extractor, there is no hidden residue.
///
/// The 128-bit window accumulators are stored as explicit (hi, lo) halves so
/// the struct has a fixed, portable wire layout independent of __int128.
struct OnlineExtractorState {
  struct Wide {
    std::int64_t hi = 0;
    std::uint64_t lo = 0;
  };

  std::vector<EventCount> ks;          ///< tracked window sizes, sorted, incl. 1
  std::vector<Wide> window_sum;        ///< per-k running window sums
  std::vector<Wide> max_sum;           ///< per-k extrema over closed windows
  std::vector<Wide> min_sum;
  std::vector<std::uint8_t> window_seen;  ///< per-k "some window closed" flags
  std::vector<Cycles> ring;            ///< last max(ks) accepted demands
  std::uint64_t ring_pos = 0;
  EventCount events = 0;
  EventCount clean_run = 0;
  EventCount quarantined = 0;
  EventCount windows_reset = 0;
};

/// Quarantine-with-counters health of an OnlineWorkloadExtractor — how much
/// of the observed stream the reported curves actually certify.
struct ExtractorHealth {
  EventCount accepted = 0;     ///< demands folded into the extrema
  EventCount quarantined = 0;  ///< invalid demands rejected by try_push
  EventCount windows_reset = 0;///< quarantine gaps that restarted window fill
  bool saturated = false;      ///< some reported value clamped to the Cycles range

  /// True when the curves certify less than the full observed stream.
  bool degraded() const { return quarantined > 0 || saturated; }
};

class OnlineWorkloadExtractor {
 public:
  /// `ks`: window sizes to track (deduplicated, sorted internally; >= 1).
  explicit OnlineWorkloadExtractor(std::vector<EventCount> ks);

  /// Observe the demand of the next activation. Throws wlc::DomainError on
  /// a negative demand (strict contract; the extractor state is unchanged).
  void push(Cycles demand);

  /// Non-throwing observation for deployed monitors: a negative demand is
  /// quarantined (health().quarantined increments, in-flight windows
  /// restart) and false is returned; otherwise behaves like push().
  bool try_push(Cycles demand);

  /// Batch observation, exactly equivalent to try_push in stream order on
  /// every element (bit-identical state afterwards); returns how many were
  /// accepted (the rest were quarantined). The serve daemon feeds whole
  /// Push-request batches through this — one call per frame instead of one
  /// per demand.
  EventCount try_push_all(std::span<const Cycles> demands);

  /// Strict batch observation: push() on every element in order. Throws on
  /// the first negative demand with the preceding elements already applied.
  void push_all(std::span<const Cycles> demands);

  /// Accepted activations (quarantined ones excluded).
  EventCount events_seen() const { return events_; }

  /// Quarantine / saturation counters for the stream observed so far.
  ExtractorHealth health() const;

  /// True once at least min(ks) consecutive clean activations were observed
  /// (the smallest window closed), i.e. curves are available.
  bool ready() const;

  /// Current upper/lower curves over the tracked window sizes (plus the
  /// implicit exact k=1 point). Throws if !ready(). Values exceeding the
  /// Cycles range saturate conservatively (see header comment).
  WorkloadCurve upper() const;
  WorkloadCurve lower() const;

  /// Full internal state, suitable for crash-safe persistence. Restoring it
  /// with from_state() yields an extractor bit-identical to this one.
  OnlineExtractorState export_state() const;

  /// Rebuilds an extractor from an exported state. The state is validated
  /// structurally (consistent vector sizes, sorted window sizes, in-range
  /// ring position, coherent counters); an inconsistent state — e.g. from a
  /// corrupted or version-skewed snapshot that slipped past the outer
  /// checksum — throws wlc::DomainError rather than constructing an
  /// extractor that could report unsound bounds.
  static OnlineWorkloadExtractor from_state(const OnlineExtractorState& state);

 private:
  using WideCycles = __int128;  ///< overflow-proof window accumulators

  OnlineWorkloadExtractor() = default;  ///< for from_state only

  void accept(Cycles demand);

  std::vector<EventCount> ks_;
  std::vector<WideCycles> window_sum_;  ///< running sum of the last ks_[i] demands
  std::vector<WideCycles> max_sum_;     ///< extrema over all complete clean windows
  std::vector<WideCycles> min_sum_;
  std::vector<bool> window_seen_;       ///< extrema valid (some clean window closed)
  std::vector<Cycles> ring_;            ///< last max(ks_) demands
  std::size_t ring_pos_ = 0;
  EventCount events_ = 0;     ///< accepted demands
  EventCount clean_run_ = 0;  ///< accepted demands since the last quarantine
  EventCount quarantined_ = 0;
  EventCount windows_reset_ = 0;
};

}  // namespace wlc::workload
