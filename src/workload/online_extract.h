// Incremental workload-curve extraction for live systems.
//
// The batch extractor (extract.h) needs the whole demand trace; a deployed
// monitor (or a long-running simulation) instead observes one activation at
// a time and wants current γᵘ/γˡ estimates at any moment — e.g. to drive the
// admission or DVS policies built on the curves. This extractor maintains,
// for a fixed set of window sizes K, the exact sliding-window demand extrema
// over everything observed so far, in O(|K|) time per event and
// O(|K| + max K) memory, independent of the trace length.
//
// The curves it reports are exactly what the batch extractor would produce
// on the same prefix restricted to the tracked window sizes (tested), and
// they only ever grow tighter... wider: extrema are monotone in the prefix,
// so a bound certified at time t remains a bound for every earlier prefix.
#pragma once

#include <vector>

#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

class OnlineWorkloadExtractor {
 public:
  /// `ks`: window sizes to track (deduplicated, sorted internally; >= 1).
  explicit OnlineWorkloadExtractor(std::vector<EventCount> ks);

  /// Observe the demand of the next activation.
  void push(Cycles demand);

  EventCount events_seen() const { return events_; }

  /// True once at least min(ks) activations were observed (the smallest
  /// window closed), i.e. curves are available.
  bool ready() const;

  /// Current upper/lower curves over the tracked window sizes (plus the
  /// implicit exact k=1 point). Throws if !ready().
  WorkloadCurve upper() const;
  WorkloadCurve lower() const;

 private:
  std::vector<EventCount> ks_;
  std::vector<Cycles> window_sum_;  ///< running sum of the last ks_[i] demands
  std::vector<Cycles> max_sum_;     ///< extrema over all complete windows
  std::vector<Cycles> min_sum_;
  std::vector<Cycles> ring_;        ///< last max(ks_) demands
  std::size_t ring_pos_ = 0;
  EventCount events_ = 0;
};

}  // namespace wlc::workload
