// Incremental workload-curve extraction for live systems.
//
// The batch extractor (extract.h) needs the whole demand trace; a deployed
// monitor (or a long-running simulation) instead observes one activation at
// a time and wants current γᵘ/γˡ estimates at any moment — e.g. to drive the
// admission or DVS policies built on the curves. This extractor maintains,
// for a fixed set of window sizes K, the exact sliding-window demand extrema
// over everything observed so far, in O(|K|) time per event and
// O(|K| + max K) memory, independent of the trace length.
//
// The curves it reports are exactly what the batch extractor would produce
// on the same prefix restricted to the tracked window sizes (tested), and
// they only ever widen as the prefix grows: the upper extrema are
// non-decreasing and the lower extrema non-increasing in the observed
// prefix, so curves reported at time t remain valid bounds for every
// earlier prefix (a bound, once certified, is never retracted).
//
// Robustness (deployed-monitor hardening):
//  * Window sums are accumulated in 128-bit integers, so no sequence of
//    valid Cycles demands can wrap them. If an extremum exceeds the Cycles
//    range, the *reported* value saturates in the sound direction (γᵘ
//    clamps up to the Cycles maximum — still an upper bound) and the
//    health report flags `saturated` instead of silently wrapping.
//  * `try_push` quarantines invalid demands (negative values) instead of
//    throwing: the event is counted in the health report and every
//    in-flight window is restarted, so no reported extremum ever spans a
//    corrupted observation. The curves then certify the contiguous clean
//    runs of the stream — exactly what the health report says they do.
//    `push` keeps the strict contract (throws wlc::DomainError).
#pragma once

#include <vector>

#include "common/types.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Quarantine-with-counters health of an OnlineWorkloadExtractor — how much
/// of the observed stream the reported curves actually certify.
struct ExtractorHealth {
  EventCount accepted = 0;     ///< demands folded into the extrema
  EventCount quarantined = 0;  ///< invalid demands rejected by try_push
  EventCount windows_reset = 0;///< quarantine gaps that restarted window fill
  bool saturated = false;      ///< some reported value clamped to the Cycles range

  /// True when the curves certify less than the full observed stream.
  bool degraded() const { return quarantined > 0 || saturated; }
};

class OnlineWorkloadExtractor {
 public:
  /// `ks`: window sizes to track (deduplicated, sorted internally; >= 1).
  explicit OnlineWorkloadExtractor(std::vector<EventCount> ks);

  /// Observe the demand of the next activation. Throws wlc::DomainError on
  /// a negative demand (strict contract; the extractor state is unchanged).
  void push(Cycles demand);

  /// Non-throwing observation for deployed monitors: a negative demand is
  /// quarantined (health().quarantined increments, in-flight windows
  /// restart) and false is returned; otherwise behaves like push().
  bool try_push(Cycles demand);

  /// Accepted activations (quarantined ones excluded).
  EventCount events_seen() const { return events_; }

  /// Quarantine / saturation counters for the stream observed so far.
  ExtractorHealth health() const;

  /// True once at least min(ks) consecutive clean activations were observed
  /// (the smallest window closed), i.e. curves are available.
  bool ready() const;

  /// Current upper/lower curves over the tracked window sizes (plus the
  /// implicit exact k=1 point). Throws if !ready(). Values exceeding the
  /// Cycles range saturate conservatively (see header comment).
  WorkloadCurve upper() const;
  WorkloadCurve lower() const;

 private:
  using WideCycles = __int128;  ///< overflow-proof window accumulators

  void accept(Cycles demand);

  std::vector<EventCount> ks_;
  std::vector<WideCycles> window_sum_;  ///< running sum of the last ks_[i] demands
  std::vector<WideCycles> max_sum_;     ///< extrema over all complete clean windows
  std::vector<WideCycles> min_sum_;
  std::vector<bool> window_seen_;       ///< extrema valid (some clean window closed)
  std::vector<Cycles> ring_;            ///< last max(ks_) demands
  std::size_t ring_pos_ = 0;
  EventCount events_ = 0;     ///< accepted demands
  EventCount clean_run_ = 0;  ///< accepted demands since the last quarantine
  EventCount quarantined_ = 0;
  EventCount windows_reset_ = 0;
};

}  // namespace wlc::workload
