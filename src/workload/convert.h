// Event-domain ↔ cycle-domain curve conversion (the paper's Fig. 4).
//
// A processing node's service curve β(Δ) lives in processor cycles while an
// event stream's arrival curve ᾱ(Δ) counts events; eq. (6)'s subtraction
// needs both in common units. The paper's contribution is to use workload
// curves (instead of a constant WCET factor) for the conversion:
//
//   events → cycles:  α(Δ)  = γᵘ(ᾱᵘ(Δ))        (upper),  γˡ(ᾱˡ(Δ)) (lower)
//   cycles → events:  β̄(Δ) = γᵘ⁻¹(β(Δ))        (lower service, conservative)
//                      β̄ᵘ(Δ) = γˡ⁻¹ variant for upper service curves.
//
// Soundness: γᵘ and ᾱᵘ are non-decreasing upper bounds, so the composition
// upper-bounds the cycles requested in any window; γᵘ⁻¹ rounds the events
// completable within a cycle budget *down*, keeping guarantees one-sided.
#pragma once

#include "curve/discrete_curve.h"
#include "trace/arrival_curve.h"
#include "workload/workload_curve.h"

namespace wlc::workload {

/// Upper cycle-based arrival curve α(Δ) = γᵘ(ᾱᵘ(Δ)) sampled on n points of
/// spacing dt. Requires an Upper workload curve and an Upper arrival curve.
curve::DiscreteCurve cycle_arrival_upper(const trace::EmpiricalArrivalCurve& events,
                                         const WorkloadCurve& gamma_u, double dt, std::size_t n);

/// Lower cycle-based arrival curve α(Δ) = γˡ(ᾱˡ(Δ)).
curve::DiscreteCurve cycle_arrival_lower(const trace::EmpiricalArrivalCurve& events,
                                         const WorkloadCurve& gamma_l, double dt, std::size_t n);

/// Event-based lower service curve β̄(Δ) = γᵘ⁻¹(β(Δ)): with β(Δ) cycles
/// guaranteed, at least that many whole events complete whatever their types.
curve::DiscreteCurve event_service_lower(const curve::DiscreteCurve& beta_cycles,
                                         const WorkloadCurve& gamma_u);

/// Event-based upper service curve β̄ᵘ(Δ) = γˡ⁻¹(βᵘ(Δ)): with at most βᵘ(Δ)
/// cycles supplied, no more events than this can complete.
curve::DiscreteCurve event_service_upper(const curve::DiscreteCurve& beta_upper_cycles,
                                         const WorkloadCurve& gamma_l);

}  // namespace wlc::workload
