#include "workload/workload_curve.h"

#include <algorithm>

#include "common/assert.h"

namespace wlc::workload {

WorkloadCurve::WorkloadCurve(Bound bound, std::vector<Point> points)
    : bound_(bound), points_(std::move(points)) {
  WLC_REQUIRE(points_.size() >= 2, "need at least the origin and k = 1");
  WLC_REQUIRE(points_.front() == Point(0, 0), "workload curves start at (0, 0)");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    WLC_REQUIRE(points_[i - 1].first < points_[i].first, "breakpoint ks must strictly increase");
    WLC_REQUIRE(points_[i - 1].second <= points_[i].second, "cycle values must be non-decreasing");
  }
  WLC_REQUIRE(points_[1].first == 1, "k = 1 must be an exact breakpoint (defines WCET/BCET)");
}

WorkloadCurve WorkloadCurve::from_constant_demand(Bound bound, Cycles c) {
  WLC_REQUIRE(c >= 0, "per-event demand must be non-negative");
  // γ(k) = c·k: the block extension past max_k = 1 yields exactly q·c + 0,
  // so two breakpoints represent the linear curve exactly at every k.
  return WorkloadCurve(bound, {{0, 0}, {1, c}});
}

WorkloadCurve WorkloadCurve::from_dense(Bound bound, const std::vector<Cycles>& values) {
  WLC_REQUIRE(values.size() >= 2, "need values for k = 0 and k = 1 at least");
  WLC_REQUIRE(values.front() == 0, "γ(0) must be 0");
  std::vector<Point> pts;
  pts.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k)
    pts.emplace_back(static_cast<EventCount>(k), values[k]);
  return WorkloadCurve(bound, std::move(pts));
}

Cycles WorkloadCurve::value_in_range(EventCount k) const {
  WLC_ASSERT(k >= 0 && k <= max_k());
  if (bound_ == Bound::Upper) {
    // Smallest breakpoint with k_i >= k (conservative step up).
    auto it = std::lower_bound(points_.begin(), points_.end(), k,
                               [](const Point& p, EventCount v) { return p.first < v; });
    return it->second;
  }
  // Largest breakpoint with k_i <= k (conservative step down).
  auto it = std::upper_bound(points_.begin(), points_.end(), k,
                             [](EventCount v, const Point& p) { return v < p.first; });
  return std::prev(it)->second;
}

Cycles WorkloadCurve::value(EventCount k) const {
  WLC_REQUIRE(k >= 0, "activation counts are non-negative");
  const EventCount kmax = max_k();
  if (k <= kmax) return value_in_range(k);
  const EventCount q = k / kmax;
  const EventCount r = k % kmax;
  // Block extension q·γ(K) + γ(r) in checked arithmetic: wrapping here
  // would silently turn a guaranteed bound into garbage.
  Cycles blocks = 0, total = 0;
  if (__builtin_mul_overflow(q, points_.back().second, &blocks) ||
      __builtin_add_overflow(blocks, value_in_range(r), &total))
    throw OverflowError("block-extended curve value exceeds the Cycles range",
                        "gamma(" + std::to_string(k) + ")", __FILE__, __LINE__);
  return total;
}

EventCount WorkloadCurve::inverse(Cycles e) const {
  WLC_REQUIRE(e >= 0, "cycle budgets are non-negative");
  const Cycles top = points_.back().second;
  const EventCount kmax = max_k();

  if (bound_ == Bound::Upper) {
    // max{k : value(k) <= e}.
    EventCount base_k = 0;
    Cycles budget = e;
    if (e >= top) {
      WLC_REQUIRE(top > 0, "γᵘ is identically zero: every budget admits unboundedly many events");
      const EventCount q = e / top;
      base_k = q * kmax;
      budget = e - q * top;
    }
    // Largest breakpoint value <= budget within the exact range.
    auto it = std::upper_bound(points_.begin(), points_.end(), budget,
                               [](Cycles v, const Point& p) { return v < p.second; });
    WLC_ASSERT(it != points_.begin());
    return base_k + std::prev(it)->first;
  }

  // Lower bound: min{k : value(k) >= e}.
  if (e <= 0) return 0;
  if (e > top) {
    WLC_REQUIRE(top > 0, "γˡ is identically zero: the demand is never reached");
    // Smallest q with a feasible remainder: value(qK + r) = q·top + value(r),
    // and value(r) <= top, so q >= e/top - 1.
    const EventCount q_min = std::max<EventCount>(0, (e + top - 1) / top - 1);
    EventCount best = -1;
    for (EventCount q = q_min; q <= q_min + 1; ++q) {
      const Cycles rem = e - q * top;
      EventCount k;
      if (rem <= 0)
        k = q * kmax;
      else if (rem <= top)
        k = q * kmax + inverse(rem);  // rem <= top keeps the recursion in range
      else
        continue;
      if (best < 0 || k < best) best = k;
    }
    WLC_ASSERT(best >= 0);
    return best;
  }
  // Smallest breakpoint with value >= e.
  auto it = std::lower_bound(points_.begin(), points_.end(), e,
                             [](const Point& p, Cycles v) { return p.second < v; });
  WLC_ASSERT(it != points_.end());
  return it->first;
}

Cycles WorkloadCurve::wcet() const {
  WLC_REQUIRE(bound_ == Bound::Upper, "WCET is γᵘ(1)");
  return value_in_range(1);
}

Cycles WorkloadCurve::bcet() const {
  WLC_REQUIRE(bound_ == Bound::Lower, "BCET is γˡ(1)");
  return value_in_range(1);
}

double WorkloadCurve::long_run_demand() const {
  return static_cast<double>(points_.back().second) / static_cast<double>(max_k());
}

namespace {

std::vector<EventCount> merged_ks(const WorkloadCurve& a, const WorkloadCurve& b,
                                  EventCount limit) {
  std::vector<EventCount> ks;
  for (const auto& p : a.points())
    if (p.first <= limit) ks.push_back(p.first);
  for (const auto& p : b.points())
    if (p.first <= limit) ks.push_back(p.first);
  ks.push_back(limit);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

}  // namespace

WorkloadCurve WorkloadCurve::add(const WorkloadCurve& a, const WorkloadCurve& b) {
  WLC_REQUIRE(a.bound() == b.bound(), "can only add curves of the same bound kind");
  const EventCount limit = std::min(a.max_k(), b.max_k());
  std::vector<Point> pts;
  for (EventCount k : merged_ks(a, b, limit)) {
    Cycles sum = 0;
    if (__builtin_add_overflow(a.value(k), b.value(k), &sum))
      throw OverflowError("sum of curves exceeds the Cycles range",
                          "gamma_a + gamma_b at k = " + std::to_string(k), __FILE__, __LINE__);
    pts.emplace_back(k, sum);
  }
  return WorkloadCurve(a.bound(), std::move(pts));
}

WorkloadCurve WorkloadCurve::combine(const WorkloadCurve& a, const WorkloadCurve& b) {
  WLC_REQUIRE(a.bound() == b.bound(), "can only combine curves of the same bound kind");
  const bool upper = a.bound() == Bound::Upper;
  const EventCount limit = std::min(a.max_k(), b.max_k());
  std::vector<Point> pts;
  for (EventCount k : merged_ks(a, b, limit)) {
    const Cycles va = a.value(k);
    const Cycles vb = b.value(k);
    pts.emplace_back(k, upper ? std::max(va, vb) : std::min(va, vb));
  }
  return WorkloadCurve(a.bound(), std::move(pts));
}

bool WorkloadCurve::consistent_with_definition() const {
  const Cycles per_event = value_in_range(1);
  for (const auto& [k, c] : points_) {
    if (bound_ == Bound::Upper && c > k * per_event) return false;
    if (bound_ == Bound::Lower && c < k * per_event) return false;
  }
  return true;
}

}  // namespace wlc::workload
