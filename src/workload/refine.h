// Curve tightening by closure.
//
// Any valid γᵘ can be sharpened for free: a window of a+b events splits into
// adjacent windows of a and b, so min over all decompositions,
//
//   γᵘ*(k) = min( γᵘ(k), min_{0<j<k} γᵘ*(j) + γᵘ*(k-j) ),
//
// is still a guaranteed upper bound — the sub-additive closure. Dually the
// super-additive closure sharpens γˡ upward. Trace-extracted curves are
// already closed (tested); curves written down analytically or assembled
// from per-type bounds often are not, and this is the standard post-pass.
#pragma once

#include "workload/workload_curve.h"

namespace wlc::workload {

/// Sub-additive closure of an Upper curve, exact on [0, max_k]
/// (breakpoints are densified first; max_k is capped at 8192 to keep the
/// O(k² log k) closure affordable — refine before extending, not after).
WorkloadCurve tighten_upper(const WorkloadCurve& gamma_u);

/// Super-additive closure of a Lower curve.
WorkloadCurve tighten_lower(const WorkloadCurve& gamma_l);

}  // namespace wlc::workload
