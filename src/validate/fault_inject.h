// Deterministic fault injection for the ingestion/extraction pipeline.
//
// Each operator corrupts a clean event trace (or its CSV serialization) in
// one specific way, driven by common::Rng so every failure is
// bit-reproducible from a seed. The operators are grouped by what the
// pipeline can promise about them — the taxonomy the differential test
// suite (tests/fault_inject_test.cpp) asserts:
//
//   Detectable faults (NaN/Inf fields, negative demands, out-of-order
//   timestamps, trailing garbage, truncated rows, overflowing numerics):
//   strict parsing throws a structured wlc::Error identifying the fault;
//   lenient parsing drops the rows and tallies them in the ParseReport.
//
//   Well-formed mutations (delete / duplicate a whole row, CRLF endings):
//   indistinguishable from a legitimately different trace — no parser can
//   flag them. The pipeline's guarantee is exactness: the extracted curves
//   equal the batch extractor's on the parsed rows, i.e. they certify what
//   was actually received (the paper's caveat that trace-derived curves
//   certify the analyzed trace only applies verbatim).
//
//   One-sided value corruptions (saturate a demand upward, zero one out):
//   parse clean, but move demands in a single direction, so one bound
//   provably dominates the clean reference pointwise (γᵘ_corrupt ≥ γᵘ_ref
//   for saturation, γˡ_corrupt ≤ γˡ_ref for zeroing).
//
// `affected` reports which data rows an operator touched so differential
// tests can build the clean counterpart of the surviving rows.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/traces.h"

namespace wlc::validate {

enum class Fault {
  // Detectable by the hardened parser.
  NanTime,         ///< replace one timestamp with "nan"
  InfTime,         ///< replace one timestamp with "inf"
  NegateDemand,    ///< make one demand negative
  ReorderEvents,   ///< swap two rows' positions (breaks time order)
  GarbageSuffix,   ///< append junk after one demand field ("3junk")
  TruncateRow,     ///< cut one row short mid-field
  OverflowDemand,  ///< demand with digits beyond Cycles range
  // Well-formed mutations.
  DeleteRow,       ///< drop one row entirely
  DuplicateRow,    ///< repeat one row (same timestamp: stays ordered)
  CrlfEndings,     ///< rewrite every \n as \r\n (must still parse!)
  // One-sided value corruptions.
  SaturateDemand,  ///< raise one demand to a huge value
  ZeroDemand,      ///< zero one demand
};

inline constexpr std::array<Fault, 12> kAllFaults{
    Fault::NanTime,       Fault::InfTime,    Fault::NegateDemand,   Fault::ReorderEvents,
    Fault::GarbageSuffix, Fault::TruncateRow, Fault::OverflowDemand, Fault::DeleteRow,
    Fault::DuplicateRow,  Fault::CrlfEndings, Fault::SaturateDemand, Fault::ZeroDemand,
};

const char* to_string(Fault f);

/// One corrupted serialization plus the 0-based data-row indices the
/// operator touched (deleted, mutated or duplicated).
struct Injection {
  std::string csv;
  std::vector<std::size_t> affected;
};

/// Applies `f` once to (the serialization of) `clean`. Requires a
/// non-empty trace; draws all positions/values from `rng`.
Injection inject(const trace::EventTrace& clean, Fault f, common::Rng& rng);

/// Unstructured byte-level fuzzing: applies 1–4 random edits (bit flip,
/// byte overwrite, insertion, deletion) anywhere in `csv`. Used by the
/// round-trip property test: the result must either parse to a
/// validator-clean trace or raise wlc::ParseError/OverflowError — never
/// crash, never silently admit non-finite values.
std::string mutate_bytes(std::string csv, common::Rng& rng);

/// Deterministic well-formed random trace (bursty times, spread demands)
/// for property tests.
trace::EventTrace make_random_trace(common::Rng& rng, std::size_t n);

}  // namespace wlc::validate
