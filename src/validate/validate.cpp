#include "validate/validate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace wlc::validate {

namespace {

using workload::Bound;
using workload::WorkloadCurve;

std::string fmt_i128(__int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  unsigned __int128 u = neg ? -static_cast<unsigned __int128>(v) : static_cast<unsigned __int128>(v);
  std::string s;
  while (u) {
    s.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) s.push_back('-');
  std::reverse(s.begin(), s.end());
  return s;
}

/// Caps per-check violation spam on adversarial inputs: after `kCap`
/// entries one summary line is added and further ones are dropped.
constexpr std::size_t kCap = 64;

void add_capped(Report& r, std::size_t& count, std::string invariant, std::string detail) {
  ++count;
  if (count < kCap) {
    r.add(std::move(invariant), std::move(detail));
  } else if (count == kCap) {
    r.add(std::move(invariant), "further violations of this kind suppressed");
  }
}

}  // namespace

void Report::add(std::string invariant, std::string detail) {
  violations_.push_back({std::move(invariant), std::move(detail)});
}

void Report::merge(const Report& other) {
  violations_.insert(violations_.end(), other.violations_.begin(), other.violations_.end());
}

std::string Report::to_string() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    if (i) os << '\n';
    os << violations_[i].invariant << ": " << violations_[i].detail;
  }
  return os.str();
}

void Report::require(const std::string& subject) const {
  if (ok()) return;
  throw SoundnessViolation(subject + " failed validation (" + std::to_string(size()) +
                               " violation" + (size() == 1 ? "" : "s") + "):\n" + to_string(),
                           /*offending=*/violations_.front().detail);
}

Report check_workload_curve(const WorkloadCurve& c) {
  Report r;
  const auto& pts = c.points();
  const bool upper = c.bound() == Bound::Upper;
  const char* tag = upper ? "gamma_u" : "gamma_l";

  // Structure (defense in depth: the constructor enforces these, but a
  // validator must not assume the object came through the constructor of
  // this build — e.g. after deserialization or ABI mismatch).
  if (pts.size() < 2 || pts.front() != WorkloadCurve::Point(0, 0))
    r.add(std::string(tag) + ".origin", "breakpoints must start at (0, 0) and include k = 1");
  std::size_t mono = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i - 1].first >= pts[i].first)
      add_capped(r, mono, std::string(tag) + ".k_increasing",
                 "k breakpoints not strictly increasing at index " + std::to_string(i));
    if (pts[i - 1].second > pts[i].second)
      add_capped(r, mono, std::string(tag) + ".monotone",
                 "value decreases at k = " + std::to_string(pts[i].first) + " (" +
                     std::to_string(pts[i - 1].second) + " -> " + std::to_string(pts[i].second) +
                     ")");
    if (pts[i].second < 0)
      add_capped(r, mono, std::string(tag) + ".non_negative",
                 "negative cycles at k = " + std::to_string(pts[i].first));
  }
  if (!r.ok()) return r;  // deeper checks assume sane structure

  // WCET/BCET cone: γᵘ(k) <= k·γᵘ(1), γˡ(k) >= k·γˡ(1) — the bounds a
  // single-value characterization implies (exact-width arithmetic so huge
  // curves cannot wrap the check itself).
  const __int128 per_event = pts[1].second;
  std::size_t cone = 0;
  for (const auto& [k, v] : pts) {
    const __int128 lin = per_event * static_cast<__int128>(k);
    if (upper ? static_cast<__int128>(v) > lin : static_cast<__int128>(v) < lin)
      add_capped(r, cone, std::string(tag) + (upper ? ".wcet_cone" : ".bcet_cone"),
                 "value " + std::to_string(v) + " at k = " + std::to_string(k) +
                     (upper ? " exceeds k*gamma(1) = " : " below k*gamma(1) = ") + fmt_i128(lin));
  }

  // Sub-/super-additivity over exact breakpoint triples: for breakpoints
  // a, b with a + b also a breakpoint, γᵘ(a+b) <= γᵘ(a) + γᵘ(b) (resp. >=
  // for γˡ). Conservative stepping between breakpoints is exempt by design
  // (see header).
  std::size_t addv = 0;
  const auto value_at = [&](EventCount k) -> const WorkloadCurve::Point* {
    const auto it = std::lower_bound(
        pts.begin(), pts.end(), k,
        [](const WorkloadCurve::Point& p, EventCount v) { return p.first < v; });
    return (it != pts.end() && it->first == k) ? &*it : nullptr;
  };
  for (std::size_t i = 1; i < pts.size(); ++i) {
    for (std::size_t j = i; j < pts.size(); ++j) {
      const EventCount sum_k = pts[i].first + pts[j].first;
      if (sum_k > c.max_k()) break;
      const auto* p = value_at(sum_k);
      if (!p) continue;
      const __int128 split =
          static_cast<__int128>(pts[i].second) + static_cast<__int128>(pts[j].second);
      const bool bad = upper ? static_cast<__int128>(p->second) > split
                             : static_cast<__int128>(p->second) < split;
      if (bad)
        add_capped(r, addv, std::string(tag) + (upper ? ".sub_additive" : ".super_additive"),
                   "gamma(" + std::to_string(sum_k) + ") = " + std::to_string(p->second) +
                       (upper ? " > " : " < ") + "gamma(" + std::to_string(pts[i].first) +
                       ") + gamma(" + std::to_string(pts[j].first) + ") = " + fmt_i128(split));
    }
  }

  // Galois relation of the pseudo-inverse w.r.t. the curve itself:
  //   Upper: γᵘ⁻¹(γᵘ(k)) >= k  (a budget of exactly γᵘ(k) cycles must
  //          certify at least k events),
  //   Lower: γˡ⁻¹(γˡ(k)) <= k.
  // Skipped for identically-zero curves, whose inverse is undefined by
  // contract (every budget admits unboundedly many events).
  if (pts.back().second > 0) {
    std::size_t galois = 0;
    for (const auto& [k, v] : pts) {
      const EventCount k_back = c.inverse(v);
      const bool bad = upper ? k_back < k : k_back > k;
      if (bad)
        add_capped(r, galois, std::string(tag) + ".galois",
                   "inverse(gamma(" + std::to_string(k) + ") = " + std::to_string(v) + ") = " +
                       std::to_string(k_back) + (upper ? " < " : " > ") + std::to_string(k));
    }
  }
  return r;
}

Report check_workload_pair(const WorkloadCurve& upper, const WorkloadCurve& lower) {
  Report r;
  if (upper.bound() != Bound::Upper || lower.bound() != Bound::Lower) {
    r.add("pair.bounds", "arguments must be an (Upper, Lower) pair");
    return r;
  }
  const EventCount limit = std::min(upper.max_k(), lower.max_k());
  std::vector<EventCount> ks;
  for (const auto& p : upper.points())
    if (p.first <= limit) ks.push_back(p.first);
  for (const auto& p : lower.points())
    if (p.first <= limit) ks.push_back(p.first);
  // A few block-extended samples past the common exact range: the
  // extension must preserve dominance too.
  ks.push_back(limit + 1);
  ks.push_back(2 * limit);
  ks.push_back(2 * limit + 1);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  std::size_t dom = 0;
  for (EventCount k : ks) {
    const Cycles u = upper.value(k);
    const Cycles l = lower.value(k);
    if (u < l)
      add_capped(r, dom, "pair.dominance",
                 "gamma_u(" + std::to_string(k) + ") = " + std::to_string(u) + " < gamma_l(" +
                     std::to_string(k) + ") = " + std::to_string(l));
  }
  return r;
}

namespace {

Report check_pwl_common(const curve::PwlCurve& c, const char* tag) {
  Report r;
  std::size_t fin = 0;
  for (std::size_t i = 0; i < c.segments().size(); ++i) {
    const auto& s = c.segments()[i];
    if (!std::isfinite(s.x) || !std::isfinite(s.y) || !std::isfinite(s.slope))
      add_capped(r, fin, std::string(tag) + ".finite",
                 "non-finite segment data at index " + std::to_string(i));
  }
  if (c.periodic() && (!std::isfinite(c.period()) || !std::isfinite(c.period_height())))
    r.add(std::string(tag) + ".finite", "non-finite periodic tail parameters");
  if (!r.ok()) return r;
  if (!c.non_decreasing()) r.add(std::string(tag) + ".monotone", "curve is not non-decreasing");
  if (c.eval(0.0) < 0.0)
    r.add(std::string(tag) + ".non_negative", "f(0) = " + std::to_string(c.eval(0.0)) + " < 0");
  return r;
}

}  // namespace

Report check_arrival_curve(const curve::PwlCurve& c, Bound bound) {
  const char* tag = bound == Bound::Upper ? "alpha_u" : "alpha_l";
  Report r = check_pwl_common(c, tag);
  if (!r.ok()) return r;
  if (bound == Bound::Upper && c.eval(0.0) < 1.0)
    r.add("alpha_u.closed_window",
          "alpha_u(0) = " + std::to_string(c.eval(0.0)) +
              " < 1 (closed windows [t, t+0] contain the event at t)");
  return r;
}

Report check_service_curve(const curve::PwlCurve& beta) {
  Report r = check_pwl_common(beta, "beta");
  if (!r.ok()) return r;
  if (beta.eval(0.0) != 0.0)
    r.add("beta.causal", "beta(0) = " + std::to_string(beta.eval(0.0)) +
                             " != 0 (no service is deliverable in a zero-length window)");
  return r;
}

Report check_empirical_arrival_curve(const trace::EmpiricalArrivalCurve& c) {
  Report r;
  const bool upper = c.bound() == trace::EmpiricalArrivalCurve::Bound::Upper;
  const char* tag = upper ? "alpha_u" : "alpha_l";
  const auto& pts = c.points();
  if (pts.empty() || pts.front().first != 0.0) {
    r.add(std::string(tag) + ".origin", "breakpoints must start at delta = 0");
    return r;
  }
  std::size_t bad = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!std::isfinite(pts[i].first))
      add_capped(r, bad, std::string(tag) + ".finite",
                 "non-finite delta at index " + std::to_string(i));
    if (pts[i].second < 0)
      add_capped(r, bad, std::string(tag) + ".non_negative",
                 "negative event count at index " + std::to_string(i));
    if (i > 0 && (pts[i - 1].first >= pts[i].first || pts[i - 1].second > pts[i].second))
      add_capped(r, bad, std::string(tag) + ".monotone",
                 "breakpoints not increasing at index " + std::to_string(i));
  }
  if (r.ok() && upper && pts.front().second < 1)
    r.add("alpha_u.closed_window", "alpha_u(0) = " + std::to_string(pts.front().second) +
                                       " < 1 (closed-window convention)");
  return r;
}

Report check_empirical_arrival_pair(const trace::EmpiricalArrivalCurve& upper,
                                    const trace::EmpiricalArrivalCurve& lower) {
  Report r;
  using B = trace::EmpiricalArrivalCurve::Bound;
  if (upper.bound() != B::Upper || lower.bound() != B::Lower) {
    r.add("alpha_pair.bounds", "arguments must be an (Upper, Lower) pair");
    return r;
  }
  std::vector<TimeSec> deltas;
  for (const auto& p : upper.points()) deltas.push_back(p.first);
  for (const auto& p : lower.points()) deltas.push_back(p.first);
  std::sort(deltas.begin(), deltas.end());
  deltas.erase(std::unique(deltas.begin(), deltas.end()), deltas.end());
  std::size_t dom = 0;
  for (TimeSec d : deltas)
    if (upper.eval(d) < lower.eval(d))
      add_capped(r, dom, "alpha_pair.dominance",
                 "alpha_u(" + std::to_string(d) + ") = " + std::to_string(upper.eval(d)) +
                     " < alpha_l = " + std::to_string(lower.eval(d)));
  return r;
}

Report check_discrete_curve(const curve::DiscreteCurve& c, const DiscreteCurveRequirements& req) {
  Report r;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < c.size(); ++i)
    if (!std::isfinite(c[i]))
      add_capped(r, bad, "discrete.finite", "non-finite sample at index " + std::to_string(i));
  if (!r.ok()) return r;
  if (req.non_decreasing && !c.is_non_decreasing())
    r.add("discrete.monotone", "samples are not non-decreasing");
  if (req.non_negative) {
    std::size_t neg = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
      if (c[i] < 0.0)
        add_capped(r, neg, "discrete.non_negative",
                   "negative sample at index " + std::to_string(i));
  }
  if (req.starts_at_zero && c[0] != 0.0)
    r.add("discrete.origin", "f(0) = " + std::to_string(c[0]) + " != 0");
  return r;
}

Report check_event_trace(const trace::EventTrace& t) {
  Report r;
  std::size_t fin = 0, neg = 0, ord = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(t[i].time))
      add_capped(r, fin, "trace.finite_time", "non-finite timestamp at row " + std::to_string(i));
    if (t[i].demand < 0)
      add_capped(r, neg, "trace.non_negative_demand",
                 "negative demand " + std::to_string(t[i].demand) + " at row " +
                     std::to_string(i));
    if (i > 0 && t[i].time < t[i - 1].time)
      add_capped(r, ord, "trace.time_ordered",
                 "timestamp decreases at row " + std::to_string(i) + " (" +
                     std::to_string(t[i - 1].time) + " -> " + std::to_string(t[i].time) + ")");
  }
  return r;
}

}  // namespace wlc::validate
