#include "validate/fault_inject.h"

#include <sstream>
#include <utility>

#include "common/assert.h"
#include "trace/io.h"

namespace wlc::validate {

const char* to_string(Fault f) {
  switch (f) {
    case Fault::NanTime: return "NanTime";
    case Fault::InfTime: return "InfTime";
    case Fault::NegateDemand: return "NegateDemand";
    case Fault::ReorderEvents: return "ReorderEvents";
    case Fault::GarbageSuffix: return "GarbageSuffix";
    case Fault::TruncateRow: return "TruncateRow";
    case Fault::OverflowDemand: return "OverflowDemand";
    case Fault::DeleteRow: return "DeleteRow";
    case Fault::DuplicateRow: return "DuplicateRow";
    case Fault::CrlfEndings: return "CrlfEndings";
    case Fault::SaturateDemand: return "SaturateDemand";
    case Fault::ZeroDemand: return "ZeroDemand";
  }
  return "?";
}

namespace {

std::string serialize(const trace::EventTrace& t) {
  std::ostringstream os;
  trace::write_event_trace_csv(os, t);
  return os.str();
}

/// Header + one string per data row (no trailing newlines).
std::vector<std::string> split_lines(const std::string& csv) {
  std::vector<std::string> lines;
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Replaces the `field`-th (0-based) comma-separated field of `row`.
void replace_field(std::string& row, int field, const std::string& value) {
  std::size_t begin = 0;
  for (int i = 0; i < field; ++i) begin = row.find(',', begin) + 1;
  std::size_t end = row.find(',', begin);
  if (end == std::string::npos) end = row.size();
  row.replace(begin, end - begin, value);
}

}  // namespace

Injection inject(const trace::EventTrace& clean, Fault f, common::Rng& rng) {
  WLC_REQUIRE(!clean.empty(), "fault injection needs a non-empty trace");
  const auto n = clean.size();
  const auto pick = [&] { return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)); };

  // Operators that edit the trace before serialization.
  switch (f) {
    case Fault::ReorderEvents: {
      if (n < 2) return {serialize(clean), {0}};
      trace::EventTrace t = clean;
      // Swap two rows with distinct timestamps so the disorder is real.
      std::size_t i = pick(), j = pick();
      for (int tries = 0; t[i].time == t[j].time && tries < 64; ++tries) j = pick();
      if (t[i].time == t[j].time) {  // fully constant-time trace: force disorder
        j = (i + 1) % n;
        t[j].time = t[i].time - 1.0;
      } else {
        std::swap(t[i], t[j]);
      }
      return {serialize(t), {std::min(i, j), std::max(i, j)}};
    }
    case Fault::DeleteRow: {
      trace::EventTrace t = clean;
      const std::size_t i = pick();
      t.erase(t.begin() + static_cast<std::ptrdiff_t>(i));
      return {serialize(t), {i}};
    }
    case Fault::DuplicateRow: {
      trace::EventTrace t = clean;
      const std::size_t i = pick();
      t.insert(t.begin() + static_cast<std::ptrdiff_t>(i), t[i]);
      return {serialize(t), {i}};
    }
    case Fault::SaturateDemand: {
      trace::EventTrace t = clean;
      const std::size_t i = pick();
      t[i].demand = Cycles{1} << 40;  // huge but far from overflow in window sums
      return {serialize(t), {i}};
    }
    case Fault::ZeroDemand: {
      trace::EventTrace t = clean;
      const std::size_t i = pick();
      t[i].demand = 0;
      return {serialize(t), {i}};
    }
    default: break;
  }

  // Operators that edit the serialized text.
  std::vector<std::string> lines = split_lines(serialize(clean));
  const std::size_t i = pick();
  std::string& row = lines[1 + i];  // line 0 is the header
  switch (f) {
    case Fault::NanTime: replace_field(row, 0, "nan"); break;
    case Fault::InfTime: replace_field(row, 0, "inf"); break;
    case Fault::NegateDemand: replace_field(row, 2, "-" + std::to_string(1 + clean[i].demand)); break;
    case Fault::GarbageSuffix: row += "junk"; break;
    case Fault::TruncateRow: {
      // Cut no later than just past the second comma: every such prefix is
      // missing the demand field (or whole fields), so a truncated row can
      // never re-parse as a shorter-but-still-valid record.
      const std::size_t second_comma = row.find(',', row.find(',') + 1);
      row.resize(1 + static_cast<std::size_t>(
                         rng.uniform_int(0, static_cast<std::int64_t>(second_comma))));
      break;
    }
    case Fault::OverflowDemand: replace_field(row, 2, "99999999999999999999999999"); break;
    case Fault::CrlfEndings: {
      std::string crlf;
      for (const auto& l : lines) {
        crlf += l;
        crlf += "\r\n";
      }
      return {std::move(crlf), {}};
    }
    default: WLC_ASSERT(false);
  }
  return {join_lines(lines), {i}};
}

std::string mutate_bytes(std::string csv, common::Rng& rng) {
  WLC_REQUIRE(!csv.empty(), "cannot mutate an empty serialization");
  const int edits = static_cast<int>(rng.uniform_int(1, 4));
  for (int e = 0; e < edits && !csv.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(csv.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // bit flip
        csv[pos] = static_cast<char>(csv[pos] ^ (1 << rng.uniform_int(0, 7)));
        break;
      case 1:  // overwrite with a random printable byte
        csv[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 2:  // insert
        csv.insert(csv.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<char>(rng.uniform_int(32, 126)));
        break;
      case 3:  // delete
        csv.erase(csv.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
    }
  }
  return csv;
}

trace::EventTrace make_random_trace(common::Rng& rng, std::size_t n) {
  trace::EventTrace t;
  t.reserve(n);
  double time = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    time += rng.bernoulli(0.25) ? rng.uniform(0.0001, 0.001) : rng.uniform(0.005, 0.05);
    t.push_back({time, static_cast<int>(rng.uniform_int(0, 3)), rng.uniform_int(0, 2000)});
  }
  return t;
}

}  // namespace wlc::validate
