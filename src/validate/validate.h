// Soundness validators — executable statements of the properties every
// guarantee in this library rests on.
//
// The analysis stack promises *bounds*: γᵘ/γˡ workload curves, arrival and
// service curves, and everything derived from them (eq. (4) RMS factors,
// eq. (7)–(9) sizings). Those promises hold only if the curves entering an
// analysis satisfy the definitional properties: monotonicity, γᵘ
// sub-additivity / γˡ super-additivity, γᵘ ≥ γˡ, the Galois relation of the
// pseudo-inverses, causality of service curves, the closed-window
// convention ᾱᵘ(0) ≥ 1 (docs/architecture.md). These checkers verify each
// property over a curve's exact range and report every violation found.
//
// They are meant to run at module boundaries — after ingesting an untrusted
// trace, after constructing curves from external parameters, inside
// differential tests — wherever a corrupted object must be caught before
// its numbers are presented as guarantees. Checks are O(B²) in the
// breakpoint count at worst (the additivity sweeps); fine for boundary use,
// not for inner loops.
//
// Additivity caveat: between breakpoints a WorkloadCurve steps
// *conservatively* (up for Upper, down for Lower), and the stepped
// interpolant of a perfectly sub-additive γᵘ is not itself sub-additive at
// non-breakpoint arguments. The additivity sweeps therefore compare only
// breakpoint triples (kᵢ, kⱼ, kᵢ+kⱼ all exact) — the property the
// *definition* speaks about — rather than flagging representation
// artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "curve/discrete_curve.h"
#include "curve/pwl_curve.h"
#include "trace/arrival_curve.h"
#include "trace/traces.h"
#include "workload/workload_curve.h"

namespace wlc::validate {

/// One failed invariant: which property, and a human-readable witness.
struct Violation {
  std::string invariant;  ///< short property tag, e.g. "gamma_u.sub_additive"
  std::string detail;     ///< witness: values and positions that break it
};

/// Accumulated validation outcome. Empty = object is sound.
class Report {
 public:
  bool ok() const { return violations_.empty(); }
  std::size_t size() const { return violations_.size(); }
  const std::vector<Violation>& violations() const { return violations_; }

  void add(std::string invariant, std::string detail);
  void merge(const Report& other);

  /// All violations, one per line; "ok" when clean.
  std::string to_string() const;

  /// Throws wlc::SoundnessViolation describing every violation if !ok().
  void require(const std::string& subject) const;

 private:
  std::vector<Violation> violations_;
};

// ---- workload curves (Definition 1) ----------------------------------------

/// Structural soundness of one curve: (0,0) origin, k = 1 breakpoint,
/// strictly increasing k, non-decreasing values, non-negative values,
/// sub-additivity (Upper) or super-additivity (Lower) over exact
/// breakpoint triples, WCET/BCET cone consistency, and the Galois
/// pseudo-inverse relation (Upper: γᵘ⁻¹(γᵘ(k)) ≥ k; Lower: γˡ⁻¹(γˡ(k)) ≤ k).
Report check_workload_curve(const workload::WorkloadCurve& c);

/// Pair consistency: γᵘ(k) ≥ γˡ(k) for every k up to the smaller exact
/// range (and block-extended samples beyond it).
Report check_workload_pair(const workload::WorkloadCurve& upper,
                           const workload::WorkloadCurve& lower);

// ---- event-arrival curves ---------------------------------------------------

/// Piecewise-linear arrival curve: finite segment data, non-decreasing,
/// non-negative, and — for an upper curve — ᾱᵘ(0) ≥ 1 (closed-window
/// convention; a non-empty stream always has one event in [t, t]).
Report check_arrival_curve(const curve::PwlCurve& c, workload::Bound bound);

/// Service curve: finite, non-decreasing, non-negative, and causal
/// (β(0) = 0 — no service can be delivered in a zero-length window).
Report check_service_curve(const curve::PwlCurve& beta);

/// Empirical (trace-extracted) arrival curve: breakpoint structure plus the
/// closed-window origin for upper curves.
Report check_empirical_arrival_curve(const trace::EmpiricalArrivalCurve& c);

/// Pair consistency ᾱᵘ ≥ ᾱˡ on merged breakpoints.
Report check_empirical_arrival_pair(const trace::EmpiricalArrivalCurve& upper,
                                    const trace::EmpiricalArrivalCurve& lower);

// ---- sampled curves ---------------------------------------------------------

struct DiscreteCurveRequirements {
  bool non_decreasing = true;
  bool non_negative = true;
  bool starts_at_zero = false;
};

/// Finite samples plus the requested shape requirements.
Report check_discrete_curve(const curve::DiscreteCurve& c, const DiscreteCurveRequirements& req);

// ---- traces -----------------------------------------------------------------

/// Well-formedness of an ingested trace: finite timestamps, non-decreasing
/// times, non-negative demands. This is what lenient ingestion guarantees
/// about its surviving rows.
Report check_event_trace(const trace::EventTrace& t);

}  // namespace wlc::validate
