#include "mpeg/trace_gen.h"

#include <algorithm>

#include "common/assert.h"

namespace wlc::mpeg {

double ClipTrace::duration() const {
  return pe2_input.empty() ? 0.0 : pe2_input.back().time;
}

ClipTrace generate_clip_trace(const TraceConfig& config, const ClipProfile& profile) {
  WLC_REQUIRE(config.pe1_frequency > 0.0, "PE1 frequency must be positive");
  WLC_REQUIRE(config.frames >= 1, "need at least one frame");

  StreamModel model(config.stream, profile);
  const std::vector<Frame> frames = model.generate(config.frames);

  ClipTrace out;
  out.name = profile.name;
  out.frames = config.frames;
  out.pe2_input.reserve(static_cast<std::size_t>(config.frames) *
                        static_cast<std::size_t>(config.stream.mb_per_frame()));
  out.pe1_demands.reserve(out.pe2_input.capacity());

  double cum_bits = 0.0;
  TimeSec emit = 0.0;
  for (const Frame& frame : frames) {
    // VBV semantics: the demultiplexer hands PE1 whole coded pictures; a
    // picture is decodable once CBR delivery has covered its last bit beyond
    // the vbv_bits of pre-buffered stream. Bit-heavy I pictures therefore
    // trickle in while cheap B pictures are ready back-to-back and burst out
    // at PE1's compute speed.
    for (const Macroblock& mb : frame.mbs) cum_bits += static_cast<double>(mb.bits);
    if (!config.preloaded_bitstream) {
      const TimeSec picture_ready =
          std::max(0.0, cum_bits - config.stream.vbv_bits) / config.stream.bitrate;
      emit = std::max(picture_ready, emit);
    }
    for (const Macroblock& mb : frame.mbs) {
      const Cycles d1 = config.cost.vld_iq_cycles(mb);
      const Cycles d2 = config.cost.idct_mc_cycles(mb);
      emit += static_cast<double>(d1) / config.pe1_frequency;
      out.pe2_input.push_back(trace::EventRecord{emit, static_cast<int>(mb.cls), d2});
      out.pe1_demands.push_back(d1);
    }
  }
  return out;
}

std::vector<ClipTrace> generate_clip_traces(const TraceConfig& config) {
  std::vector<ClipTrace> out;
  out.reserve(clip_library().size());
  for (const ClipProfile& profile : clip_library())
    out.push_back(generate_clip_trace(config, profile));
  return out;
}

}  // namespace wlc::mpeg
