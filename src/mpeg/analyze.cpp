#include "mpeg/analyze.h"

#include <algorithm>

#include "obs/obs.h"
#include "trace/arrival_extract.h"
#include "trace/kgrid.h"
#include "workload/extract.h"

namespace wlc::mpeg {

std::vector<ClipAnalysis> analyze_clips(const TraceConfig& config,
                                        std::span<const ClipProfile> profiles,
                                        const AnalyzeOptions& options,
                                        common::ThreadPool& pool,
                                        const runtime::RunPolicy* policy,
                                        runtime::DegradationReport* degradation) {
  WLC_TRACE_SPAN("mpeg.analyze_clips");
  const std::vector<ClipProfile> items(profiles.begin(), profiles.end());
  // The grid budget is applied per clip on the made grid (each clip's grid
  // depends on its trace length); the per-clip extracts then run with the
  // grid axis dropped so they cannot re-shed. Per-clip degradation lands in
  // an indexed slot and is folded in profile order after the join.
  runtime::RunPolicy inner;
  const runtime::RunPolicy* ip = nullptr;
  if (policy) {
    inner = *policy;
    inner.budget.max_grid_points = 0;
    ip = &inner;
  }
  std::vector<runtime::DegradationReport> local(items.size());
  const auto check = [&] {
    if (policy) policy->checkpoint("clip analysis");
  };
  auto out = common::parallel_map(
      pool, items,
      [&](const ClipProfile& profile) {
        WLC_TRACE_SPAN("mpeg.clip");
        WLC_COUNTER_ADD("mpeg.clips_analyzed", 1);
        const auto idx = static_cast<std::size_t>(&profile - items.data());
        auto* deg = degradation ? &local[idx] : nullptr;
        ClipTrace t = generate_clip_trace(config, profile);
        const auto max_k = std::max<std::int64_t>(options.min_max_k,
                                                  static_cast<std::int64_t>(t.pe2_input.size()));
        auto ks = trace::make_kgrid(
            {.max_k = max_k, .dense_limit = options.dense_limit, .growth = options.growth});
        ks = runtime::apply_grid_budget(std::move(ks), policy, deg,
                                        "clip '" + profile.name + "'");
        workload::WorkloadCurve gu =
            workload::extract_upper(trace::demands_of(t.pe2_input), ks, nullptr, ip, deg);
        workload::WorkloadCurve gl =
            workload::extract_lower(trace::demands_of(t.pe2_input), ks, nullptr, ip, deg);
        trace::EmpiricalArrivalCurve au =
            trace::extract_upper_arrival(trace::timestamps_of(t.pe2_input), ks, ip);
        return ClipAnalysis{std::move(t), std::move(gu), std::move(gl), std::move(au)};
      },
      check);
  if (degradation)
    for (const auto& r : local) degradation->merge(r);
  return out;
}

}  // namespace wlc::mpeg
