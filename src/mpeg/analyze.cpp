#include "mpeg/analyze.h"

#include <algorithm>

#include "obs/obs.h"
#include "trace/arrival_extract.h"
#include "trace/kgrid.h"
#include "workload/extract.h"

namespace wlc::mpeg {

std::vector<ClipAnalysis> analyze_clips(const TraceConfig& config,
                                        std::span<const ClipProfile> profiles,
                                        const AnalyzeOptions& options,
                                        common::ThreadPool& pool) {
  WLC_TRACE_SPAN("mpeg.analyze_clips");
  const std::vector<ClipProfile> items(profiles.begin(), profiles.end());
  return common::parallel_map(pool, items, [&](const ClipProfile& profile) {
    WLC_TRACE_SPAN("mpeg.clip");
    WLC_COUNTER_ADD("mpeg.clips_analyzed", 1);
    ClipTrace t = generate_clip_trace(config, profile);
    const auto max_k = std::max<std::int64_t>(options.min_max_k,
                                              static_cast<std::int64_t>(t.pe2_input.size()));
    const auto ks = trace::make_kgrid(
        {.max_k = max_k, .dense_limit = options.dense_limit, .growth = options.growth});
    workload::WorkloadCurve gu = workload::extract_upper(trace::demands_of(t.pe2_input), ks);
    workload::WorkloadCurve gl = workload::extract_lower(trace::demands_of(t.pe2_input), ks);
    trace::EmpiricalArrivalCurve au =
        trace::extract_upper_arrival(trace::timestamps_of(t.pe2_input), ks);
    return ClipAnalysis{std::move(t), std::move(gu), std::move(gl), std::move(au)};
  });
}

}  // namespace wlc::mpeg
