#include "mpeg/model.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.h"

namespace wlc::mpeg {

std::vector<FrameType> gop_coded_order(const StreamParams& p) {
  p.validate();
  // Display order: position 0 is I, every gop_m-th position an anchor (P).
  std::vector<FrameType> display(static_cast<std::size_t>(p.gop_n), FrameType::B);
  for (int k = 0; k < p.gop_n; k += p.gop_m)
    display[static_cast<std::size_t>(k)] = (k == 0) ? FrameType::I : FrameType::P;
  // Coded order: each anchor is transmitted before the B frames displayed
  // between the previous anchor and it; trailing Bs follow the last anchor.
  std::vector<FrameType> coded;
  coded.reserve(display.size());
  std::vector<FrameType> pending_b;
  for (FrameType t : display) {
    if (t == FrameType::B) {
      pending_b.push_back(t);
    } else {
      coded.push_back(t);
      coded.insert(coded.end(), pending_b.begin(), pending_b.end());
      pending_b.clear();
    }
  }
  coded.insert(coded.end(), pending_b.begin(), pending_b.end());
  return coded;
}

StreamModel::StreamModel(StreamParams params, ClipProfile profile)
    : params_(params), profile_(std::move(profile)) {
  params_.validate();
  WLC_REQUIRE(profile_.motion >= 0.0 && profile_.motion <= 1.0, "motion in [0,1]");
  WLC_REQUIRE(profile_.texture >= 0.0 && profile_.texture <= 1.0, "texture in [0,1]");
  WLC_REQUIRE(profile_.coherence >= 0.0 && profile_.coherence <= 1.0, "coherence in [0,1]");
  WLC_REQUIRE(profile_.scene_change_rate >= 0.0 && profile_.scene_change_rate <= 1.0,
              "scene_change_rate in [0,1]");
}

namespace {

/// Per-frame-type share of the GOP bit budget (classic 6:3:1 allocation).
double type_weight(FrameType t) {
  switch (t) {
    case FrameType::I: return 6.0;
    case FrameType::P: return 3.0;
    case FrameType::B: return 1.0;
  }
  return 1.0;
}

MbClass draw_class(FrameType frame, bool scene_cut, double motion, common::Rng& rng) {
  if (frame == FrameType::I) return MbClass::Intra;
  if (frame == FrameType::P) {
    const double intra = scene_cut ? 0.70 : 0.02 + 0.06 * motion;
    const double skip = (scene_cut ? 0.02 : 0.50) * (1.0 - motion) + 0.05;
    const std::array<double, 3> w{skip, 1.0 - skip - intra, intra};  // Skip, Fwd, Intra
    switch (rng.discrete(w)) {
      case 0: return MbClass::Skip;
      case 1: return MbClass::FwdMc;
      default: return MbClass::Intra;
    }
  }
  // B frame.
  const double intra = scene_cut ? 0.30 : 0.01;
  const double skip = (scene_cut ? 0.05 : 0.40) * (1.0 - motion) + 0.08;
  const double bi = 0.10 + 0.30 * motion;
  const double rest = std::max(0.0, 1.0 - skip - bi - intra);
  const std::array<double, 5> w{skip, 0.5 * rest, 0.5 * rest, bi, intra};
  switch (rng.discrete(w)) {
    case 0: return MbClass::Skip;
    case 1: return MbClass::FwdMc;
    case 2: return MbClass::BwdMc;
    case 3: return MbClass::BiMc;
    default: return MbClass::Intra;
  }
}

int draw_coded_blocks(MbClass cls, FrameType frame, double texture, double motion,
                      common::Rng& rng) {
  if (cls == MbClass::Skip) return 0;
  if (cls == MbClass::Intra) {
    // Intra blocks nearly always carry all 6 blocks; flat content drops a
    // chroma block occasionally.
    int blocks = 6;
    if (rng.bernoulli(0.5 * (1.0 - texture))) --blocks;
    if (rng.bernoulli(0.3 * (1.0 - texture))) --blocks;
    return blocks;
  }
  // Residual density grows with texture and motion; B-frame residuals are
  // smaller (bi-prediction averages noise away).
  double mean = 1.0 + 3.5 * texture * (0.35 + 0.65 * motion);
  if (frame == FrameType::B) mean *= 0.6;
  int blocks = 0;
  for (int b = 0; b < 6; ++b)
    if (rng.bernoulli(std::clamp(mean / 6.0, 0.0, 1.0))) ++blocks;
  return blocks;
}

int draw_bits(const Macroblock& mb, double texture, common::Rng& rng) {
  const double jitter = rng.uniform(0.7, 1.3);
  double bits = 0.0;
  switch (mb.cls) {
    case MbClass::Skip:
      bits = 2.0;
      break;
    case MbClass::Intra:
      bits = 400.0 + mb.coded_blocks * (150.0 + 420.0 * texture) * jitter;
      break;
    case MbClass::FwdMc:
    case MbClass::BwdMc:
      bits = 45.0 + mb.coded_blocks * (70.0 + 260.0 * texture) * jitter;
      break;
    case MbClass::BiMc:
      bits = 70.0 + mb.coded_blocks * (70.0 + 260.0 * texture) * jitter;
      break;
  }
  return std::max(1, static_cast<int>(std::lround(bits)));
}

}  // namespace

StreamModel::Scene StreamModel::draw_scene(common::Rng& rng) const {
  // Intensity boost of this scene; texture thins as intensity grows so the
  // intense scenes are simultaneously bursty (few bits) and MC-heavy.
  const double boost = rng.uniform(0.45, 1.8);
  Scene s;
  s.motion = std::clamp(profile_.motion * boost, 0.0, 1.0);
  s.texture = std::clamp(profile_.texture * rng.uniform(0.6, 1.3) / std::sqrt(boost), 0.0, 1.0);
  return s;
}

Macroblock StreamModel::make_mb(FrameType type, bool scene_cut, const Scene& scene,
                                MbClass prev_cls, common::Rng& rng) const {
  Macroblock mb;
  mb.frame = type;
  // Spatial coherence: with probability `coherence` repeat the neighbouring
  // macroblock's class (I frames are uniform anyway).
  if (type != FrameType::I && rng.bernoulli(profile_.coherence))
    mb.cls = prev_cls;
  else
    mb.cls = draw_class(type, scene_cut, scene.motion, rng);
  mb.coded_blocks = draw_coded_blocks(mb.cls, type, scene.texture, scene.motion, rng);
  if (mb.cls == MbClass::FwdMc || mb.cls == MbClass::BwdMc || mb.cls == MbClass::BiMc) {
    const double half_pel_p = 0.25 + 0.6 * scene.motion;
    mb.half_pel_x = rng.bernoulli(half_pel_p);
    mb.half_pel_y = rng.bernoulli(half_pel_p);
  }
  mb.bits = draw_bits(mb, scene.texture, rng);
  return mb;
}

void StreamModel::normalize_bits(Frame& frame, double target_bits) const {
  double total = 0.0;
  for (const auto& mb : frame.mbs) total += mb.bits;
  if (total <= 0.0) return;
  const double scale = target_bits / total;
  for (auto& mb : frame.mbs) mb.bits = std::max(1, static_cast<int>(std::lround(mb.bits * scale)));
}

Frame StreamModel::make_frame(FrameType type, bool scene_cut, const Scene& scene,
                              common::Rng& rng) const {
  Frame frame;
  frame.type = type;
  frame.scene_cut = scene_cut;
  frame.mbs.reserve(static_cast<std::size_t>(params_.mb_per_frame()));
  MbClass prev = MbClass::Skip;
  for (int i = 0; i < params_.mb_per_frame(); ++i) {
    // Reset the coherence chain at row starts (left neighbour wraps around).
    if (i % params_.mb_width() == 0) prev = MbClass::Skip;
    Macroblock mb = make_mb(type, scene_cut, scene, prev, rng);
    prev = mb.cls;
    frame.mbs.push_back(mb);
  }
  return frame;
}

std::vector<Frame> StreamModel::generate(int n) {
  WLC_REQUIRE(n >= 1, "need at least one frame");
  common::Rng rng(profile_.seed);
  const std::vector<FrameType> gop = gop_coded_order(params_);

  // GOP bit budget split by frame-type weight.
  double weight_sum = 0.0;
  for (FrameType t : gop) weight_sum += type_weight(t);
  const double gop_bits = params_.bits_per_frame() * static_cast<double>(params_.gop_n);

  std::vector<Frame> out;
  out.reserve(static_cast<std::size_t>(n));
  bool cut_pending = false;
  Scene scene = draw_scene(rng);
  for (int f = 0; f < n; ++f) {
    const FrameType type = gop[static_cast<std::size_t>(f) % gop.size()];
    // A cut makes the next predicted frame intra-heavy (an I frame absorbs
    // the cut for free) and opens a new scene with fresh content parameters.
    if (rng.bernoulli(profile_.scene_change_rate)) {
      cut_pending = true;
      scene = draw_scene(rng);
    }
    if (type == FrameType::I) cut_pending = false;
    const bool scene_cut = cut_pending && type != FrameType::I;
    if (scene_cut) cut_pending = false;

    Frame frame = make_frame(type, scene_cut, scene, rng);
    normalize_bits(frame, gop_bits * type_weight(type) / weight_sum);
    out.push_back(std::move(frame));
  }
  return out;
}

}  // namespace wlc::mpeg
