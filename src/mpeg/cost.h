// Cycle-cost model of the two decoder subtasks, mirroring the paper's
// platform: PE1 runs VLD + IQ with special bitstream-access hardware, PE2
// runs IDCT + MC with a hardware-accelerated IDCT and a block-based memory
// mode. Costs are deterministic functions of macroblock structure — all
// demand variability comes from the stream content, which is exactly the
// correlation workload curves are designed to capture.
//
// Constants are calibrated so that the case-study magnitudes land near the
// paper's (F_min in the hundreds of MHz for 720×576@25); reproduction
// targets the *shape* (γ vs WCET gap, >50 % frequency savings), not the
// authors' exact silicon.
#pragma once

#include "common/types.h"
#include "mpeg/params.h"
#include "workload/event_model.h"

namespace wlc::mpeg {

struct CostModel {
  // --- PE2: IDCT + MC ---------------------------------------------------
  Cycles pe2_mb_overhead = 450;      ///< header parse, control, writeback
  Cycles pe2_idct_per_block = 400;   ///< hardware-assisted 8x8 IDCT + add
  Cycles pe2_mc_one_ref = 1800;      ///< fetch+copy one 16x16 reference
  Cycles pe2_mc_half_pel_axis = 680; ///< interpolation per fractional axis
  Cycles pe2_skip_copy = 150;        ///< block-memory copy of a skipped MB
  Cycles pe2_intra_setup = 350;      ///< intra reconstruction path

  // --- PE1: VLD + IQ ----------------------------------------------------
  /// Macroblock-layer syntax plus the write of the fixed-size macroblock
  /// slot (parameters + coefficient block) into the inter-PE FIFO — the
  /// buffer is dimensioned in whole macroblocks (b = 1620), so every
  /// macroblock, including skipped ones, pays the transfer.
  Cycles pe1_mb_overhead = 1800;
  /// The paper's PE1 carries dedicated bitstream-access hardware; the VLD
  /// and IQ engines run concurrently with the core's control flow, so the
  /// core's per-macroblock time is dominated by the fixed slot handling and
  /// only weakly depends on coefficient counts.
  double pe1_vld_per_bit = 0.05;
  Cycles pe1_iq_per_block = 20;      ///< inverse quantization per coded block

  /// IDCT/MC demand of one macroblock on PE2.
  Cycles idct_mc_cycles(const Macroblock& mb) const;
  /// VLD/IQ demand of one macroblock on PE1.
  Cycles vld_iq_cycles(const Macroblock& mb) const;

  /// Structural extrema of the PE2 cost over all legal macroblocks of a
  /// class (coded blocks 0..6, any half-pel combination).
  Cycles pe2_wcet(MbClass cls) const;
  Cycles pe2_bcet(MbClass cls) const;
  /// Global extrema over every class.
  Cycles pe2_wcet() const;
  Cycles pe2_bcet() const;

  /// The five macroblock classes as a typed-event table (paper §2.1) with
  /// the PE2 execution intervals — type id == static_cast<int>(MbClass).
  workload::EventTypeTable pe2_event_types() const;

  /// Reference calibration used by all experiments.
  static CostModel reference() { return CostModel{}; }
};

}  // namespace wlc::mpeg
