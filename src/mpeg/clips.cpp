#include "mpeg/clip.h"

namespace wlc::mpeg {

// Fourteen content profiles spanning the spread a real evaluation pulls from
// a clip archive: static dialogue, documentary pans, sports, music video
// cutting, animation, handheld noise. Seeds are arbitrary but fixed — every
// experiment is bit-reproducible.
const std::vector<ClipProfile>& clip_library() {
  static const std::vector<ClipProfile> clips = {
      //  name                 seed                motion texture cuts    coherence
      {"news_anchor",          0x6d70656701ULL,    0.08,  0.35,   0.004,  0.85},
      {"interview_studio",     0x6d70656702ULL,    0.12,  0.40,   0.010,  0.80},
      {"documentary_pan",      0x6d70656703ULL,    0.30,  0.60,   0.008,  0.80},
      {"nature_wide",          0x6d70656704ULL,    0.25,  0.75,   0.006,  0.75},
      {"city_traffic",         0x6d70656705ULL,    0.45,  0.65,   0.012,  0.70},
      {"soccer_broadcast",     0x6d70656706ULL,    0.70,  0.55,   0.020,  0.65},
      {"basketball_indoor",    0x6d70656707ULL,    0.75,  0.50,   0.025,  0.65},
      {"music_video",          0x6d70656708ULL,    0.65,  0.60,   0.300,  0.55},
      {"action_movie",         0x6d70656709ULL,    0.80,  0.55,   0.200,  0.60},
      {"cartoon_flat",         0x6d7065670aULL,    0.40,  0.20,   0.040,  0.85},
      {"talk_show_multicam",   0x6d7065670bULL,    0.18,  0.45,   0.050,  0.75},
      {"handheld_street",      0x6d7065670cULL,    0.85,  0.70,   0.090,  0.50},
      {"surveillance_static",  0x6d7065670dULL,    0.05,  0.30,   0.001,  0.90},
      {"concert_strobe",       0x6d7065670eULL,    0.90,  0.35,   0.280,  0.45},
  };
  return clips;
}

}  // namespace wlc::mpeg
