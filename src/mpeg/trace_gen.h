// End-to-end decoder trace generation: synthetic stream → per-stage demands
// → PE1 emission timing → the macroblock trace arriving at the FIFO in
// front of PE2 (the paper's measurement point for ᾱ, γᵘ and Fig. 7).
//
// PE1 timing model: the compressed bitstream arrives CBR; macroblock i's
// bits are complete at cum_bits(i)/bitrate, and PE1 (clock f1) emits it at
//
//   emit_i = max(bits_ready_i, emit_{i-1}) + d1_i / f1 .
//
// Bit-starved I frames therefore trickle out while bit-cheap, compute-cheap
// B frames burst — the bursty arrival pattern that makes buffer sizing
// non-trivial in the paper's case study.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "mpeg/clip.h"
#include "mpeg/cost.h"
#include "mpeg/model.h"
#include "trace/traces.h"

namespace wlc::mpeg {

struct ClipTrace {
  std::string name;
  /// Arrival trace at PE2's FIFO: time = PE1 emission instant, demand =
  /// IDCT/MC cycles, type = static_cast<int>(MbClass).
  trace::EventTrace pe2_input;
  /// Per-macroblock VLD/IQ demands (PE1), same order.
  trace::DemandTrace pe1_demands;
  int frames = 0;
  double duration() const;  ///< last emission time
};

struct TraceConfig {
  StreamParams stream;
  CostModel cost = CostModel::reference();
  Hertz pe1_frequency = 150e6;
  int frames = 96;  ///< 8 GOPs at N = 12
  /// true (default): the whole bitstream sits in memory before decoding —
  /// the usual simulation-testbench setup, PE1 is purely compute-paced.
  /// false: coded pictures become available per CBR delivery with vbv_bits
  /// of prefetch (transport-accurate pacing; bit-heavy I pictures trickle).
  bool preloaded_bitstream = true;
};

/// Generates the full decode trace of one clip.
ClipTrace generate_clip_trace(const TraceConfig& config, const ClipProfile& profile);

/// All 14 library clips under one configuration.
std::vector<ClipTrace> generate_clip_traces(const TraceConfig& config);

}  // namespace wlc::mpeg
