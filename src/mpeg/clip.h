// Clip content profiles — the knobs that differentiate the 14 synthetic
// video clips standing in for the paper's real MPEG-2 streams.
//
// Each profile shapes the statistics the decoder workload depends on:
// how much motion (MC mode mix, half-pel use), how much texture (coded
// blocks, residual bits), how often scenes cut (bursts of intra macroblocks
// outside I frames — the worst-case-demand events), and how spatially
// coherent the content is (run lengths of similar macroblocks, which create
// the short-window demand bursts the workload curves must capture).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wlc::mpeg {

struct ClipProfile {
  std::string name;
  std::uint64_t seed = 0;
  double motion = 0.5;            ///< 0 static … 1 frantic
  double texture = 0.5;           ///< 0 flat … 1 detailed
  double scene_change_rate = 0.02;///< per-frame probability of a cut
  double coherence = 0.7;         ///< 0 iid macroblocks … 1 long same-class runs
};

/// The 14-clip library used by the case-study experiments (deterministic
/// seeds; spans talking heads to sports to noisy action footage).
const std::vector<ClipProfile>& clip_library();

}  // namespace wlc::mpeg
