#include "mpeg/cost.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace wlc::mpeg {

Cycles CostModel::idct_mc_cycles(const Macroblock& mb) const {
  Cycles c = pe2_mb_overhead + mb.coded_blocks * pe2_idct_per_block;
  const Cycles interp =
      (mb.half_pel_x ? pe2_mc_half_pel_axis : 0) + (mb.half_pel_y ? pe2_mc_half_pel_axis : 0);
  switch (mb.cls) {
    case MbClass::Skip:
      c += pe2_skip_copy;
      break;
    case MbClass::Intra:
      c += pe2_intra_setup;
      break;
    case MbClass::FwdMc:
    case MbClass::BwdMc:
      c += pe2_mc_one_ref + interp;
      break;
    case MbClass::BiMc:
      c += 2 * (pe2_mc_one_ref + interp);
      break;
  }
  return c;
}

Cycles CostModel::vld_iq_cycles(const Macroblock& mb) const {
  return pe1_mb_overhead +
         static_cast<Cycles>(std::llround(pe1_vld_per_bit * static_cast<double>(mb.bits))) +
         mb.coded_blocks * pe1_iq_per_block;
}

Cycles CostModel::pe2_wcet(MbClass cls) const {
  Macroblock mb;
  mb.cls = cls;
  mb.coded_blocks = cls == MbClass::Skip ? 0 : 6;
  mb.half_pel_x = true;
  mb.half_pel_y = true;
  return idct_mc_cycles(mb);
}

Cycles CostModel::pe2_bcet(MbClass cls) const {
  Macroblock mb;
  mb.cls = cls;
  mb.coded_blocks = 0;
  mb.half_pel_x = false;
  mb.half_pel_y = false;
  return idct_mc_cycles(mb);
}

Cycles CostModel::pe2_wcet() const {
  Cycles w = 0;
  for (MbClass cls : {MbClass::Intra, MbClass::Skip, MbClass::FwdMc, MbClass::BwdMc,
                      MbClass::BiMc})
    w = std::max(w, pe2_wcet(cls));
  return w;
}

Cycles CostModel::pe2_bcet() const {
  Cycles w = pe2_bcet(MbClass::Intra);
  for (MbClass cls : {MbClass::Skip, MbClass::FwdMc, MbClass::BwdMc, MbClass::BiMc})
    w = std::min(w, pe2_bcet(cls));
  return w;
}

workload::EventTypeTable CostModel::pe2_event_types() const {
  workload::EventTypeTable table;
  const int intra = table.add("intra", pe2_bcet(MbClass::Intra), pe2_wcet(MbClass::Intra));
  const int skip = table.add("skip", pe2_bcet(MbClass::Skip), pe2_wcet(MbClass::Skip));
  const int fwd = table.add("fwd_mc", pe2_bcet(MbClass::FwdMc), pe2_wcet(MbClass::FwdMc));
  const int bwd = table.add("bwd_mc", pe2_bcet(MbClass::BwdMc), pe2_wcet(MbClass::BwdMc));
  const int bi = table.add("bi_mc", pe2_bcet(MbClass::BiMc), pe2_wcet(MbClass::BiMc));
  WLC_ASSERT(intra == static_cast<int>(MbClass::Intra));
  WLC_ASSERT(skip == static_cast<int>(MbClass::Skip));
  WLC_ASSERT(fwd == static_cast<int>(MbClass::FwdMc));
  WLC_ASSERT(bwd == static_cast<int>(MbClass::BwdMc));
  WLC_ASSERT(bi == static_cast<int>(MbClass::BiMc));
  return table;
}

}  // namespace wlc::mpeg
