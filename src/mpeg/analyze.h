// Batched clip analysis — the MPEG case-study front half (trace generation
// plus γᵘ/γˡ/ᾱᵘ extraction) fanned across a thread pool.
//
// The paper's Fig. 6/Tab. 2 experiments extract workload and arrival curves
// from 14 clip traces before any eq. (7)–(9) analysis can run; each clip is
// independent, so the batch maps one task per clip onto the pool. Inside a
// task everything runs the serial reference path (generation is seeded per
// clip, extraction is the serial oracle), so results are bit-identical to a
// sequential loop over the clips regardless of scheduling, and the output
// order always matches the profile order.
// Run policy. analyze_clips takes an optional runtime::RunPolicy*: the
// cancel token/deadline is polled before each clip and inside each clip's
// extractions; Budget::max_grid_points coarsens every clip's k-grid
// (recorded per clip, merged in profile order for determinism); the byte
// budget applies per clip inside workload extraction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "mpeg/trace_gen.h"
#include "runtime/runtime.h"
#include "trace/arrival_curve.h"
#include "workload/workload_curve.h"

namespace wlc::mpeg {

/// Grid shaping for analyze_clips, mirroring the experiment harnesses: the
/// ladder is exact up to dense_limit, geometric beyond, and always extends
/// to max(min_max_k, trace length) — stopping short of the trace length
/// would leave one giant conservative step under eq. (9)'s supremum.
struct AnalyzeOptions {
  std::int64_t min_max_k = 0;     ///< analysis window floor (e.g. 24 frames of MBs)
  std::int64_t dense_limit = 512; ///< exact grid up to here
  double growth = 1.01;           ///< geometric ladder factor beyond
};

/// One clip's generated trace and extracted curves.
struct ClipAnalysis {
  ClipTrace trace;
  workload::WorkloadCurve gamma_u;
  workload::WorkloadCurve gamma_l;
  trace::EmpiricalArrivalCurve alpha_u;
};

/// Generates and analyzes `profiles` (PE2 stage: IDCT/MC demands at the FIFO
/// measurement point), one pool task per clip. out[i] corresponds to
/// profiles[i] and is bit-identical to the serial per-clip pipeline.
std::vector<ClipAnalysis> analyze_clips(const TraceConfig& config,
                                        std::span<const ClipProfile> profiles,
                                        const AnalyzeOptions& options,
                                        common::ThreadPool& pool,
                                        const runtime::RunPolicy* policy = nullptr,
                                        runtime::DegradationReport* degradation = nullptr);

}  // namespace wlc::mpeg
