// MPEG-2 stream parameters and structural types for the synthetic decoder
// workload model.
//
// The paper's clips: constant bit rate 9.78 Mbit/s, main profile @ main
// level, 25 fps, 720×576 — i.e. 45×36 = 1620 macroblocks per frame, the
// FIFO size used in the case study (one frame). GOP structure is the common
// N = 12, M = 3 (display order IBBPBBPBBPBB); macroblocks are generated in
// coded (transmission) order, which is what the decoder pipeline sees.
#pragma once

#include <vector>

#include "common/assert.h"

namespace wlc::mpeg {

struct StreamParams {
  int width = 720;
  int height = 576;
  double fps = 25.0;
  double bitrate = 9.78e6;  ///< bits per second (CBR)
  double vbv_bits = 1.835e6;///< decoder bit-buffer (MPEG-2 main-level VBV):
                            ///< the demultiplexer prefetches up to this many
                            ///< bits, so cheap frames burst out compute-bound
  int gop_n = 12;           ///< frames per GOP
  int gop_m = 3;            ///< prediction distance (I/P spacing)

  int mb_width() const { return width / 16; }
  int mb_height() const { return height / 16; }
  int mb_per_frame() const { return mb_width() * mb_height(); }
  double bits_per_frame() const { return bitrate / fps; }

  void validate() const {
    WLC_REQUIRE(width % 16 == 0 && height % 16 == 0, "dimensions must be macroblock-aligned");
    WLC_REQUIRE(fps > 0.0 && bitrate > 0.0, "rate parameters must be positive");
    WLC_REQUIRE(vbv_bits >= 0.0, "VBV buffer must be non-negative");
    WLC_REQUIRE(gop_n >= 1 && gop_m >= 1 && gop_m <= gop_n, "invalid GOP structure");
  }
};

enum class FrameType { I, P, B };

/// Prediction class of a macroblock — the event-type dimension that drives
/// the IDCT/MC execution-demand variability.
enum class MbClass {
  Intra,   ///< fully coded, no motion compensation
  Skip,    ///< copied from reference, nothing decoded
  FwdMc,   ///< one forward reference
  BwdMc,   ///< one backward reference (B frames)
  BiMc,    ///< two references averaged — the expensive case
};

struct Macroblock {
  FrameType frame = FrameType::I;
  MbClass cls = MbClass::Intra;
  int coded_blocks = 0;  ///< 0..6 blocks with residual data (4:2:0)
  bool half_pel_x = false;
  bool half_pel_y = false;
  int bits = 0;  ///< compressed size of this macroblock
};

/// Coded-order frame types of one GOP for (N, M) = (gop_n, gop_m):
/// I first, each anchor before the B frames that reference it.
std::vector<FrameType> gop_coded_order(const StreamParams& p);

}  // namespace wlc::mpeg
