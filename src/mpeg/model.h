// Synthetic MPEG-2 stream generator: produces, frame by frame in coded
// order, the per-macroblock structure (prediction class, coded blocks,
// half-pel flags, compressed bits) from which the cycle-cost model
// (cost.h) derives decoder execution demands.
//
// Fidelity targets (what the paper's analysis actually depends on):
//   * I frames are all-intra and bit-heavy; P/B frames mix skip/MC/intra
//     with probabilities driven by motion and texture;
//   * scene cuts inject intra bursts into P/B frames — the rare worst-case
//     macroblocks that make WCET-only analysis so pessimistic;
//   * macroblock classes are spatially coherent (Markov runs), producing
//     realistic short-window demand bursts;
//   * per-frame bits are normalized to the CBR budget with the usual
//     I:P:B allocation, so PE1's bitstream-paced timing is faithful.
// Everything is seeded and bit-reproducible.
#pragma once

#include <vector>

#include "common/rng.h"
#include "mpeg/clip.h"
#include "mpeg/params.h"

namespace wlc::mpeg {

/// One generated frame: its type and macroblocks in scan order.
struct Frame {
  FrameType type = FrameType::I;
  bool scene_cut = false;  ///< this frame follows a cut (intra-heavy)
  std::vector<Macroblock> mbs;
};

class StreamModel {
 public:
  StreamModel(StreamParams params, ClipProfile profile);

  /// Generates `n` frames in coded order, restarting from the profile seed.
  std::vector<Frame> generate(int n);

  const StreamParams& params() const { return params_; }
  const ClipProfile& profile() const { return profile_; }

 private:
  /// Momentary content parameters. Real clips are non-stationary: a cut can
  /// open an intense scene (fast motion, flat texture — think a strobe-lit
  /// concert or a sports close-up) where macroblocks are simultaneously
  /// cheap to parse (few residual bits, so PE1 bursts them out) and dear to
  /// reconstruct (bi-directional half-pel MC). This co-occurrence is what
  /// pushes the realized FIFO backlog towards the analytic bound (paper
  /// Fig. 7's bars near the maximum).
  struct Scene {
    double motion = 0.5;
    double texture = 0.5;
  };

  Scene draw_scene(common::Rng& rng) const;
  Frame make_frame(FrameType type, bool scene_cut, const Scene& scene, common::Rng& rng) const;
  Macroblock make_mb(FrameType type, bool scene_cut, const Scene& scene, MbClass prev_cls,
                     common::Rng& rng) const;
  /// Scales macroblock bits so the frame hits its CBR share.
  void normalize_bits(Frame& frame, double target_bits) const;

  StreamParams params_;
  ClipProfile profile_;
};

}  // namespace wlc::mpeg
