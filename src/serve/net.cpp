#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "common/assert.h"
#include "common/faultfs.h"

namespace wlc::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw DomainError(what + ": " + std::strerror(errno));
}

}  // namespace

std::string Address::to_string() const {
  if (is_unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Address parse_address(const std::string& spec) {
  Address a;
  if (spec.rfind("unix:", 0) == 0) {
    a.is_unix = true;
    a.path = spec.substr(5);
    WLC_REQUIRE(!a.path.empty(), "unix socket address needs a path after 'unix:'");
    WLC_REQUIRE(a.path.size() < sizeof(sockaddr_un{}.sun_path),
                "unix socket path too long for sockaddr_un");
    return a;
  }
  const auto colon = spec.find_last_of(':');
  WLC_REQUIRE(colon != std::string::npos,
              "listen address must be 'unix:/path', 'host:port' or ':port'");
  a.host = spec.substr(0, colon);
  if (a.host.empty()) a.host = "127.0.0.1";
  const std::string port_str = spec.substr(colon + 1);
  unsigned port = 0;
  const auto res = std::from_chars(port_str.data(), port_str.data() + port_str.size(), port);
  WLC_REQUIRE(res.ec == std::errc{} && res.ptr == port_str.data() + port_str.size() &&
                  port >= 1 && port <= 65535,
              "port must be an integer in 1..65535");
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

int listen_socket(const Address& addr, int backlog) {
  if (addr.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket(AF_UNIX)");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(addr.path.c_str());  // stale socket file from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      ::close(fd);
      fail("bind '" + addr.path + "'");
    }
    if (::listen(fd, backlog) != 0) {
      ::close(fd);
      fail("listen '" + addr.path + "'");
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw DomainError("not an IPv4 address: '" + addr.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    fail("bind " + addr.to_string());
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    fail("listen " + addr.to_string());
  }
  return fd;
}

int connect_socket(const Address& addr) {
  if (addr.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = common::faultfs::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = common::faultfs::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace wlc::serve
