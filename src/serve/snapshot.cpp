#include "serve/snapshot.h"

#include "common/atomic_file.h"
#include "serve/wire.h"

namespace wlc::serve {

namespace {

void write_wide_vec(Writer& w, const std::vector<workload::OnlineExtractorState::Wide>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& x : v) {
    w.i64(x.hi);
    w.u64(x.lo);
  }
}

std::vector<workload::OnlineExtractorState::Wide> read_wide_vec(Reader& r) {
  // One Wide is 16 bytes; Reader::vec primitives only know 1/8-byte
  // elements, so do the pre-allocation count check by hand.
  const std::uint32_t n = r.u32();
  if (static_cast<std::uint64_t>(n) * 16 > r.remaining())
    throw ParseError("snapshot corrupt: wide vector claims " + std::to_string(n) +
                         " elements but only " + std::to_string(r.remaining()) +
                         " bytes remain",
                     std::to_string(n), 0, 0, __FILE__, __LINE__);
  std::vector<workload::OnlineExtractorState::Wide> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workload::OnlineExtractorState::Wide x;
    x.hi = r.i64();
    x.lo = r.u64();
    v.push_back(x);
  }
  return v;
}

std::string encode_payload(const SessionSnapshot& snap) {
  Writer w;
  w.str(snap.session_id);
  w.str(snap.tenant);
  const auto& e = snap.extractor;
  w.vec_i64(e.ks);
  write_wide_vec(w, e.window_sum);
  write_wide_vec(w, e.max_sum);
  write_wide_vec(w, e.min_sum);
  w.vec_u8(e.window_seen);
  w.vec_i64(e.ring);
  w.u64(e.ring_pos);
  w.i64(e.events);
  w.i64(e.clean_run);
  w.i64(e.quarantined);
  w.i64(e.windows_reset);
  return w.take();
}

SessionSnapshot decode_payload(std::string_view payload) {
  Reader r(payload, "snapshot payload");
  SessionSnapshot snap;
  snap.session_id = r.str();
  snap.tenant = r.str();
  auto& e = snap.extractor;
  e.ks = r.vec_i64();
  e.window_sum = read_wide_vec(r);
  e.max_sum = read_wide_vec(r);
  e.min_sum = read_wide_vec(r);
  e.window_seen = r.vec_u8();
  e.ring = r.vec_i64();
  e.ring_pos = r.u64();
  e.events = r.i64();
  e.clean_run = r.i64();
  e.quarantined = r.i64();
  e.windows_reset = r.i64();
  r.expect_done();
  // Semantic validation: the checksum above guards against random
  // corruption, this guards against anything else (a forged or
  // version-confused payload must not construct an unsound extractor).
  // from_state throws wlc::DomainError; surface it as the snapshot
  // rejection it is.
  try {
    (void)workload::OnlineWorkloadExtractor::from_state(e);
  } catch (const DomainError& err) {
    throw ParseError("snapshot state rejected: " + err.message(), err.offending(), 0, 0,
                     __FILE__, __LINE__);
  }
  return snap;
}

}  // namespace

std::string encode_snapshot(const SessionSnapshot& snap) {
  const std::string payload = encode_payload(snap);
  Writer w;
  for (char c : kSnapshotMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kSnapshotVersion);
  w.u64(payload.size());
  w.u32(crc32(payload));
  std::string out = w.take();
  out += payload;
  return out;
}

SessionSnapshot decode_snapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderBytes)
    throw ParseError("snapshot truncated: " + std::to_string(bytes.size()) +
                         " bytes is shorter than the " +
                         std::to_string(kSnapshotHeaderBytes) + "-byte header",
                     "", 0, 0, __FILE__, __LINE__);
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic)
    throw ParseError("snapshot rejected: bad magic (not a wlc session snapshot)", "", 0, 0,
                     __FILE__, __LINE__);
  Reader header(bytes.substr(kSnapshotMagic.size(), 16), "snapshot header");
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion)
    throw ParseError("snapshot version skew: file is version " + std::to_string(version) +
                         ", this build reads version " + std::to_string(kSnapshotVersion),
                     std::to_string(version), 0, 0, __FILE__, __LINE__);
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t checksum = header.u32();
  const std::string_view payload = bytes.substr(kSnapshotHeaderBytes);
  if (payload.size() != payload_size)
    throw ParseError("snapshot corrupt: header says " + std::to_string(payload_size) +
                         " payload bytes, file has " + std::to_string(payload.size()),
                     "", 0, 0, __FILE__, __LINE__);
  if (crc32(payload) != checksum)
    throw ParseError("snapshot corrupt: payload checksum mismatch", "", 0, 0, __FILE__,
                     __LINE__);
  return decode_payload(payload);
}

bool write_snapshot_file(const std::string& path, const SessionSnapshot& snap,
                         std::string* error, int* errno_out) {
  return common::atomic_write_file(path, encode_snapshot(snap), error, errno_out);
}

bool read_snapshot_file(const std::string& path, SessionSnapshot* snap, std::string* error) {
  std::string bytes;
  if (!common::read_file_bytes(path, &bytes, error)) return false;
  *snap = decode_snapshot(bytes);
  return true;
}

}  // namespace wlc::serve
