#include "serve/snapshot.h"

#include "common/atomic_file.h"
#include "serve/wire.h"

namespace wlc::serve {

namespace {

void write_wide_vec(Writer& w, const std::vector<workload::OnlineExtractorState::Wide>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& x : v) {
    w.i64(x.hi);
    w.u64(x.lo);
  }
}

std::vector<workload::OnlineExtractorState::Wide> read_wide_vec(Reader& r) {
  // One Wide is 16 bytes; Reader::vec primitives only know 1/8-byte
  // elements, so do the pre-allocation count check by hand.
  const std::uint32_t n = r.u32();
  if (static_cast<std::uint64_t>(n) * 16 > r.remaining())
    throw ParseError("snapshot corrupt: wide vector claims " + std::to_string(n) +
                         " elements but only " + std::to_string(r.remaining()) +
                         " bytes remain",
                     std::to_string(n), 0, 0, __FILE__, __LINE__);
  std::vector<workload::OnlineExtractorState::Wide> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workload::OnlineExtractorState::Wide x;
    x.hi = r.i64();
    x.lo = r.u64();
    v.push_back(x);
  }
  return v;
}

void write_compact(Writer& w, const curve::CompactCurve& c) {
  w.u8(static_cast<std::uint8_t>(c.rounding()));
  w.f64(c.dt());
  w.u64(c.dense_size());
  w.f64(c.budget().eps_abs);
  w.f64(c.budget().eps_rel);
  w.f64(c.max_error());
  w.u32(static_cast<std::uint32_t>(c.knots().size()));
  for (const curve::CompactCurve::Knot& k : c.knots()) {
    w.u64(k.i);
    w.f64(k.y);
    w.f64(k.slope);
  }
}

curve::CompactCurve read_compact(Reader& r) {
  const std::uint8_t rounding = r.u8();
  if (rounding > 1)
    throw ParseError("snapshot pwl tier corrupt: unknown rounding tag",
                     std::to_string(rounding), 0, 0, __FILE__, __LINE__);
  const double dt = r.f64();
  const std::uint64_t dense_n = r.u64();
  curve::CompactBudget budget;
  budget.eps_abs = r.f64();
  budget.eps_rel = r.f64();
  const double max_error = r.f64();
  const std::uint32_t n = r.u32();
  // One knot is 24 bytes; bound the allocation before reserving.
  if (static_cast<std::uint64_t>(n) * 24 > r.remaining())
    throw ParseError("snapshot pwl tier corrupt: knot list claims " + std::to_string(n) +
                         " knots but only " + std::to_string(r.remaining()) +
                         " bytes remain",
                     std::to_string(n), 0, 0, __FILE__, __LINE__);
  std::vector<curve::CompactCurve::Knot> knots;
  knots.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    curve::CompactCurve::Knot k;
    k.i = r.u64();
    k.y = r.f64();
    k.slope = r.f64();
    knots.push_back(k);
  }
  try {
    return curve::CompactCurve::from_knots(std::move(knots), dt, dense_n,
                                           static_cast<curve::CompactRounding>(rounding),
                                           budget, max_error);
  } catch (const DomainError& err) {
    throw ParseError("snapshot pwl tier rejected: " + err.message(), err.offending(), 0, 0,
                     __FILE__, __LINE__);
  }
}

std::string encode_payload(const SessionSnapshot& snap) {
  Writer w;
  w.str(snap.session_id);
  w.str(snap.tenant);
  const auto& e = snap.extractor;
  w.vec_i64(e.ks);
  write_wide_vec(w, e.window_sum);
  write_wide_vec(w, e.max_sum);
  write_wide_vec(w, e.min_sum);
  w.vec_u8(e.window_seen);
  w.vec_i64(e.ring);
  w.u64(e.ring_pos);
  w.i64(e.events);
  w.i64(e.clean_run);
  w.i64(e.quarantined);
  w.i64(e.windows_reset);
  // v2: optional PWL tier, independently versioned + CRC'd so tier damage
  // is caught (and named) even if the outer checksum were ever bypassed.
  if (snap.tier.has_value()) {
    w.u8(1);
    Writer tw;
    write_compact(tw, snap.tier->upper);
    write_compact(tw, snap.tier->lower);
    const std::string tier_payload = tw.take();
    w.u32(kPwlTierVersion);
    w.u32(crc32(tier_payload));
    w.str(tier_payload);
  } else {
    w.u8(0);
  }
  return w.take();
}

SessionSnapshot decode_payload(std::string_view payload, std::uint32_t version) {
  Reader r(payload, "snapshot payload");
  SessionSnapshot snap;
  snap.session_id = r.str();
  snap.tenant = r.str();
  auto& e = snap.extractor;
  e.ks = r.vec_i64();
  e.window_sum = read_wide_vec(r);
  e.max_sum = read_wide_vec(r);
  e.min_sum = read_wide_vec(r);
  e.window_seen = r.vec_u8();
  e.ring = r.vec_i64();
  e.ring_pos = r.u64();
  e.events = r.i64();
  e.clean_run = r.i64();
  e.quarantined = r.i64();
  e.windows_reset = r.i64();
  if (version >= 2) {
    const std::uint8_t has_tier = r.u8();
    if (has_tier > 1)
      throw ParseError("snapshot corrupt: tier presence flag must be 0 or 1",
                       std::to_string(has_tier), 0, 0, __FILE__, __LINE__);
    if (has_tier == 1) {
      const std::uint32_t tier_version = r.u32();
      if (tier_version != kPwlTierVersion)
        throw ParseError("snapshot pwl tier version skew: file has tier version " +
                             std::to_string(tier_version) + ", this build reads version " +
                             std::to_string(kPwlTierVersion),
                         std::to_string(tier_version), 0, 0, __FILE__, __LINE__);
      const std::uint32_t tier_crc = r.u32();
      const std::string tier_payload = r.str();
      if (crc32(tier_payload) != tier_crc)
        throw ParseError("snapshot corrupt: pwl tier checksum mismatch", "", 0, 0, __FILE__,
                         __LINE__);
      Reader tr(tier_payload, "snapshot pwl tier");
      curve::CompactCurve upper = read_compact(tr);
      curve::CompactCurve lower = read_compact(tr);
      tr.expect_done();
      if (upper.rounding() != curve::CompactRounding::Up ||
          lower.rounding() != curve::CompactRounding::Down)
        throw ParseError(
            "snapshot pwl tier rejected: upper curve must round Up and lower curve Down", "",
            0, 0, __FILE__, __LINE__);
      snap.tier = PwlTier{std::move(upper), std::move(lower)};
    }
  }
  r.expect_done();
  // Semantic validation: the checksum above guards against random
  // corruption, this guards against anything else (a forged or
  // version-confused payload must not construct an unsound extractor).
  // from_state throws wlc::DomainError; surface it as the snapshot
  // rejection it is.
  try {
    (void)workload::OnlineWorkloadExtractor::from_state(e);
  } catch (const DomainError& err) {
    throw ParseError("snapshot state rejected: " + err.message(), err.offending(), 0, 0,
                     __FILE__, __LINE__);
  }
  return snap;
}

}  // namespace

std::string encode_snapshot(const SessionSnapshot& snap) {
  const std::string payload = encode_payload(snap);
  Writer w;
  for (char c : kSnapshotMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kSnapshotVersion);
  w.u64(payload.size());
  w.u32(crc32(payload));
  std::string out = w.take();
  out += payload;
  return out;
}

SessionSnapshot decode_snapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotHeaderBytes)
    throw ParseError("snapshot truncated: " + std::to_string(bytes.size()) +
                         " bytes is shorter than the " +
                         std::to_string(kSnapshotHeaderBytes) + "-byte header",
                     "", 0, 0, __FILE__, __LINE__);
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic)
    throw ParseError("snapshot rejected: bad magic (not a wlc session snapshot)", "", 0, 0,
                     __FILE__, __LINE__);
  Reader header(bytes.substr(kSnapshotMagic.size(), 16), "snapshot header");
  const std::uint32_t version = header.u32();
  if (version < kSnapshotMinVersion || version > kSnapshotVersion)
    throw ParseError("snapshot version skew: file is version " + std::to_string(version) +
                         ", this build reads versions " +
                         std::to_string(kSnapshotMinVersion) + ".." +
                         std::to_string(kSnapshotVersion),
                     std::to_string(version), 0, 0, __FILE__, __LINE__);
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t checksum = header.u32();
  const std::string_view payload = bytes.substr(kSnapshotHeaderBytes);
  if (payload.size() != payload_size)
    throw ParseError("snapshot corrupt: header says " + std::to_string(payload_size) +
                         " payload bytes, file has " + std::to_string(payload.size()),
                     "", 0, 0, __FILE__, __LINE__);
  if (crc32(payload) != checksum)
    throw ParseError("snapshot corrupt: payload checksum mismatch", "", 0, 0, __FILE__,
                     __LINE__);
  return decode_payload(payload, version);
}

bool write_snapshot_file(const std::string& path, const SessionSnapshot& snap,
                         std::string* error, int* errno_out) {
  return common::atomic_write_file(path, encode_snapshot(snap), error, errno_out);
}

bool read_snapshot_file(const std::string& path, SessionSnapshot* snap, std::string* error) {
  std::string bytes;
  if (!common::read_file_bytes(path, &bytes, error)) return false;
  *snap = decode_snapshot(bytes);
  return true;
}

}  // namespace wlc::serve
