#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "obs/obs.h"
#include "serve/protocol.h"

namespace wlc::serve {

namespace {

/// Stop reading a connection whose replies back up past this; TCP flow
/// control then pushes back on the client until the buffer drains.
constexpr std::size_t kOutputWatermark = 8u << 20;
constexpr std::size_t kReadChunk = 64u << 10;

struct Connection {
  int fd = -1;
  std::string in;
  std::string out;
  bool close_after_flush = false;
  std::vector<std::uint64_t> queued_cookies;  ///< Opens parked in the admission queue
};

}  // namespace

struct Server::Impl {
  std::map<int, Connection> conns;
  std::map<std::uint64_t, int> pending;  ///< queue cookie → connection fd
  SessionManager::Clock::time_point last_snapshot;

  void send(Connection& c, const Reply& reply) { c.out += encode_reply(reply); }

  void handle_frame(SessionManager& sessions, Connection& c, std::string_view payload) {
    Request req;
    try {
      req = decode_request(payload);
    } catch (const wlc::Error& e) {
      WLC_COUNTER_ADD("serve.protocol_errors", 1);
      send(c, ErrReply{std::string("malformed request: ") + e.message()});
      return;
    }
    if (const auto* open = std::get_if<OpenRequest>(&req)) {
      auto outcome = sessions.open(*open, SessionManager::Clock::now());
      if (outcome.kind == SessionManager::OpenOutcome::Kind::Queued) {
        pending[outcome.cookie] = c.fd;
        c.queued_cookies.push_back(outcome.cookie);
      } else {
        send(c, outcome.reply);
      }
    } else if (const auto* push = std::get_if<PushRequest>(&req)) {
      send(c, sessions.push(*push));
    } else if (const auto* query = std::get_if<QueryRequest>(&req)) {
      send(c, sessions.query(*query));
    } else if (const auto* close = std::get_if<CloseRequest>(&req)) {
      send(c, sessions.close(*close));
    } else {
      send(c, sessions.stats());
    }
  }

  /// Extracts and handles every complete frame buffered on `c`. Returns
  /// false when the stream turned unframeable and the connection must go.
  bool process_input(SessionManager& sessions, Connection& c) {
    for (;;) {
      std::size_t consumed = 0;
      std::optional<std::string_view> payload;
      try {
        payload = try_extract_frame(c.in, &consumed);
      } catch (const wlc::Error& e) {
        WLC_COUNTER_ADD("serve.protocol_errors", 1);
        send(c, ErrReply{std::string("unframeable stream: ") + e.message()});
        c.close_after_flush = true;
        return false;
      }
      if (!payload) return true;
      handle_frame(sessions, c, *payload);
      c.in.erase(0, consumed);
    }
  }

  void route_queue_resolutions(SessionManager& sessions,
                               const std::vector<SessionManager::QueueResolution>& resolved) {
    for (const auto& r : resolved) {
      const auto it = pending.find(r.cookie);
      if (it == pending.end()) continue;  // connection died; manager was told
      const auto conn_it = conns.find(it->second);
      pending.erase(it);
      if (conn_it != conns.end()) send(conn_it->second, r.reply);
    }
    (void)sessions;
  }

  void drop_connection(SessionManager& sessions, int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    for (std::uint64_t cookie : it->second.queued_cookies) {
      sessions.cancel_queued(cookie);
      pending.erase(cookie);
    }
    ::close(fd);
    conns.erase(it);
    WLC_COUNTER_ADD("serve.connections.closed", 1);
  }
};

Server::Server(ServerConfig cfg, std::ostream& log)
    : cfg_(std::move(cfg)),
      addr_(parse_address(cfg_.listen)),
      log_(log),
      sessions_([&] {
        SessionConfig sc = cfg_.sessions;
        sc.log = &log;
        return sc;
      }()) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (addr_.is_unix) ::unlink(addr_.path.c_str());
}

void Server::start() {
  listen_fd_ = listen_socket(addr_);
  set_nonblocking(listen_fd_);
  const std::size_t recovered = sessions_.recover();
  log_ << "wlc_serve: listening on " << addr_.to_string();
  if (!cfg_.sessions.state_dir.empty())
    log_ << ", state dir '" << cfg_.sessions.state_dir << "' (" << recovered
         << " sessions recovered)";
  log_ << "\n";
}

int Server::run(const runtime::RunPolicy& policy) {
  Impl impl;
  impl.last_snapshot = SessionManager::Clock::now();

  const auto stopping = [&] {
    return policy.token.cancelled() || policy.deadline.expired();
  };

  while (!stopping()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, c] : impl.conns) {
      short events = 0;
      if (c.out.size() < kOutputWatermark && !c.close_after_flush) events |= POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), cfg_.poll_timeout_ms);
    if (n < 0 && errno != EINTR) {
      log_ << "wlc_serve: poll failed: " << std::strerror(errno) << "\n";
      break;
    }

    // New connections.
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        Connection c;
        c.fd = fd;
        impl.conns.emplace(fd, std::move(c));
        WLC_COUNTER_ADD("serve.connections.accepted", 1);
      }
    }

    // I/O per connection. Collect fds to drop; mutating the map while the
    // pollfd list still refers to it is asking for trouble.
    std::vector<int> doomed;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      auto it = impl.conns.find(fd);
      if (it == impl.conns.end()) continue;
      Connection& c = it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (c.out.empty() || (fds[i].revents & (POLLERR | POLLNVAL))) {
          doomed.push_back(fd);
          continue;
        }
      }
      if (fds[i].revents & POLLIN) {
        char buf[kReadChunk];
        for (;;) {
          const ssize_t got = ::read(fd, buf, sizeof buf);
          if (got > 0) {
            c.in.append(buf, static_cast<std::size_t>(got));
            if (!impl.process_input(sessions_, c)) break;
            if (c.in.size() >= kMaxFrameBytes) break;  // wait for drain
            continue;
          }
          if (got == 0) {
            // Peer closed its write side; serve out what is buffered.
            impl.process_input(sessions_, c);
            c.close_after_flush = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          doomed.push_back(fd);
          break;
        }
      }
      if (!c.out.empty()) {
        const ssize_t sent = ::write(fd, c.out.data(), c.out.size());
        if (sent > 0) c.out.erase(0, static_cast<std::size_t>(sent));
        else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          doomed.push_back(fd);
      }
      if (c.close_after_flush && c.out.empty()) doomed.push_back(fd);
    }
    for (int fd : doomed) impl.drop_connection(sessions_, fd);

    const auto now = SessionManager::Clock::now();
    impl.route_queue_resolutions(sessions_, sessions_.pump_queue(now));
    if (cfg_.snapshot_interval.count() > 0 && now - impl.last_snapshot >= cfg_.snapshot_interval) {
      sessions_.snapshot_all();
      impl.last_snapshot = now;
    }
  }

  // Graceful drain: no new reads or accepts; answer what is already
  // buffered, fail the parked Opens explicitly, flush replies briefly,
  // persist everything.
  for (auto& [fd, c] : impl.conns) impl.process_input(sessions_, c);
  for (auto& [cookie, fd] : impl.pending) {
    const auto it = impl.conns.find(fd);
    if (it != impl.conns.end())
      impl.send(it->second,
                RejectReply{RejectCode::QueueTimeout, "daemon draining for shutdown", 0});
    sessions_.cancel_queued(cookie);
  }
  const auto flush_deadline =
      SessionManager::Clock::now() + std::chrono::seconds(2);
  for (bool outstanding = true;
       outstanding && SessionManager::Clock::now() < flush_deadline;) {
    outstanding = false;
    for (auto& [fd, c] : impl.conns) {
      if (c.out.empty()) continue;
      const ssize_t sent = ::write(fd, c.out.data(), c.out.size());
      if (sent > 0) c.out.erase(0, static_cast<std::size_t>(sent));
      if (!c.out.empty()) outstanding = true;
    }
    if (outstanding) ::poll(nullptr, 0, 5);
  }
  sessions_.snapshot_all();
  for (auto& [fd, c] : impl.conns) ::close(fd);
  impl.conns.clear();
  log_ << "wlc_serve: drained " << sessions_.live_sessions()
       << " live sessions to snapshots, exiting\n";
  return 0;
}

}  // namespace wlc::serve
