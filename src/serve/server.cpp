#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/faultfs.h"
#include "obs/obs.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace wlc::serve {

namespace {

/// Stop reading a connection whose replies back up past this; TCP flow
/// control then pushes back on the client until the buffer drains.
constexpr std::size_t kOutputWatermark = 8u << 20;
constexpr std::size_t kReadChunk = 64u << 10;

struct Connection {
  int fd = -1;
  std::string in;
  std::string out;
  bool close_after_flush = false;
  std::vector<std::uint64_t> queued_cookies;  ///< Opens parked in the admission queue
};

const char* opcode_of(const Request& req) {
  return std::visit(
      [](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, OpenRequest>) return "open";
        else if constexpr (std::is_same_v<T, PushRequest>) return "push";
        else if constexpr (std::is_same_v<T, QueryRequest>) return "query";
        else if constexpr (std::is_same_v<T, CloseRequest>) return "close";
        else if constexpr (std::is_same_v<T, PingRequest>) return "ping";
        else if constexpr (std::is_same_v<T, MigrateRequest>) return "migrate";
        else return "stats";
      },
      req);
}

std::string session_of(const Request& req) {
  if (const auto* open = std::get_if<OpenRequest>(&req)) return open->session_id;
  if (const auto* push = std::get_if<PushRequest>(&req)) return push->session_id;
  if (const auto* query = std::get_if<QueryRequest>(&req)) return query->session_id;
  if (const auto* close = std::get_if<CloseRequest>(&req)) return close->session_id;
  return {};
}

/// Admission outcome label for the request log ("ok" / "rejected:<axis>").
std::string outcome_of(const Reply& reply) {
  if (const auto* rej = std::get_if<RejectReply>(&reply))
    return std::string("rejected:") + to_string(rej->code);
  if (std::holds_alternative<ErrReply>(reply)) return "err";
  return "ok";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::int64_t wall_clock_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Monitor thread detecting a stalled reactor: the reactor stamps
/// heartbeat_us every poll iteration; a heartbeat older than the threshold
/// means some callback (or a pathological frame) is holding the loop. Each
/// stalled iteration is counted once (deduped on the heartbeat value), with
/// the offending activity — "opcode=push session=x" — in the log line.
struct Watchdog {
  std::atomic<std::int64_t> heartbeat_us{0};
  std::atomic<bool> stop{false};
  std::mutex mu;  ///< guards activity and the shared log stream
  std::condition_variable cv;
  std::string activity;
  std::thread monitor;

  void set_activity(const char* opcode, const std::string& session) {
    std::lock_guard<std::mutex> lock(mu);
    activity = std::string("opcode=") + opcode;
    if (!session.empty()) activity += " session=" + session;
  }

  void clear_activity() {
    std::lock_guard<std::mutex> lock(mu);
    activity.clear();
  }

  void start(std::chrono::milliseconds threshold, bool abort_on_stall, std::ostream& log) {
    heartbeat_us.store(obs::now_us(), std::memory_order_relaxed);
    monitor = std::thread([this, threshold, abort_on_stall, &log] {
      const std::int64_t threshold_us = threshold.count() * 1000;
      const auto interval =
          std::max<std::chrono::milliseconds>(threshold / 4, std::chrono::milliseconds(1));
      std::int64_t last_counted = -1;
      std::unique_lock<std::mutex> lock(mu);
      while (!stop.load(std::memory_order_relaxed)) {
        cv.wait_for(lock, interval);
        if (stop.load(std::memory_order_relaxed)) break;
        const std::int64_t hb = heartbeat_us.load(std::memory_order_relaxed);
        const std::int64_t age_us = obs::now_us() - hb;
        if (age_us < threshold_us || hb == last_counted) continue;
        last_counted = hb;
        WLC_COUNTER_ADD("serve.reactor.stall", 1);
        log << "wlc_serve: watchdog: reactor stalled " << age_us / 1000 << " ms ("
            << (activity.empty() ? "idle/io, no frame in flight" : activity) << ")\n"
            << std::flush;
        if (abort_on_stall) std::abort();
      }
    });
  }

  void join() {
    if (!monitor.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu);
      stop.store(true, std::memory_order_relaxed);
    }
    cv.notify_all();
    monitor.join();
  }
};

}  // namespace

struct Server::Impl {
  Server& srv;
  RequestLog reqlog;
  Watchdog watchdog;
  std::map<int, Connection> conns;
  std::map<std::uint64_t, int> pending;  ///< queue cookie → connection fd
  SessionManager::Clock::time_point last_snapshot;

  /// EMFILE insurance: one fd held open from the start so that when the
  /// process hits its descriptor limit there is still one to momentarily
  /// release — accept the pending connection, close it (shed), reacquire.
  /// Without this the kernel keeps the connection in the backlog and the
  /// listen fd stays readable: poll() returns instantly, forever — a 100%
  /// CPU spin that also starves every live session.
  int reserve_fd = -1;
  int accept_backoff_ms = 0;  ///< doubles per consecutive shed, 0 = none
  SessionManager::Clock::time_point accept_retry_at{};

  explicit Impl(Server& server)
      : srv(server), reqlog(server.cfg_.request_log, &server.log_) {
    reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  }

  ~Impl() {
    if (reserve_fd >= 0) ::close(reserve_fd);
  }

  void send(Connection& c, const Reply& reply) { c.out += encode_reply(reply); }

  /// The versioned live-introspection document a Stats frame answers with.
  /// The metrics snapshot (with its quantiles and exemplars) is embedded
  /// verbatim under "metrics"; everything else is reactor/session state the
  /// registry does not know.
  std::string build_stats_json() const {
    const PongReply pool = srv.sessions_.stats();
    const auto rows = srv.sessions_.describe_sessions();
    const auto uptime_s = std::chrono::duration_cast<std::chrono::seconds>(
                              std::chrono::steady_clock::now() - srv.started_at_)
                              .count();

    // Per-tenant rollup over live sessions (the cumulative per-tenant
    // counters live in metrics as serve.tenant.*).
    struct Tally {
      std::int64_t sessions = 0;
      std::int64_t events_seen = 0;
      std::int64_t quarantined = 0;
      std::int64_t grid_points = 0;
      std::int64_t bytes_cost = 0;
    };
    std::map<std::string, Tally> tenants;
    for (const auto& r : rows) {
      Tally& t = tenants[r.tenant];
      ++t.sessions;
      t.events_seen += r.events_seen;
      t.quarantined += r.quarantined;
      t.grid_points += r.grid_points;
      t.bytes_cost += r.bytes_cost;
    }

    std::ostringstream os;
    os << "{\n  \"schema_version\": " << obs::MetricsSnapshot::kSchemaVersion << ",\n";
    os << "  \"uptime_s\": " << uptime_s << ",\n";
    os << "  \"pool\": {\"live_sessions\": " << pool.live_sessions
       << ", \"max_sessions\": " << pool.max_sessions
       << ", \"grid_leased\": " << pool.grid_leased
       << ", \"max_grid_points\": " << pool.max_grid_points
       << ", \"bytes_leased\": " << pool.bytes_leased
       << ", \"max_resident_bytes\": " << pool.max_resident_bytes
       << ", \"queued_opens\": " << pool.queued_opens
       << ", \"recovered_sessions\": " << pool.recovered_sessions << "},\n";
    os << "  \"sessions\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      os << (i ? "," : "") << "\n    {\"id\": \"" << json_escape(r.id) << "\", \"tenant\": \""
         << json_escape(r.tenant) << "\", \"grid_points\": " << r.grid_points
         << ", \"bytes_cost\": " << r.bytes_cost << ", \"events_seen\": " << r.events_seen
         << ", \"quarantined\": " << r.quarantined
         << ", \"ready\": " << (r.ready ? "true" : "false")
         << ", \"degraded\": " << (r.degraded ? "true" : "false")
         << ", \"dirty\": " << (r.dirty ? "true" : "false") << "}";
    }
    os << (rows.empty() ? "" : "\n  ") << "],\n";
    os << "  \"tenants\": {";
    bool first = true;
    for (const auto& [tenant, t] : tenants) {
      os << (first ? "" : ",") << "\n    \"" << json_escape(tenant)
         << "\": {\"sessions\": " << t.sessions << ", \"events_seen\": " << t.events_seen
         << ", \"quarantined\": " << t.quarantined << ", \"grid_points\": " << t.grid_points
         << ", \"bytes_cost\": " << t.bytes_cost << "}";
      first = false;
    }
    os << (tenants.empty() ? "" : "\n  ") << "},\n";
    std::string metrics = obs::registry().snapshot().to_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    os << "  \"metrics\": " << metrics << "\n}\n";
    return os.str();
  }

  void handle_frame(SessionManager& sessions, Connection& c, std::string_view payload) {
    const std::int64_t t0 = obs::now_us();
    RequestLog::Record rec;
    rec.bytes = static_cast<std::int64_t>(payload.size());

    Request req;
    try {
      req = decode_request(payload);
    } catch (const wlc::Error& e) {
      WLC_COUNTER_ADD("serve.protocol_errors", 1);
      send(c, ErrReply{std::string("malformed request: ") + e.message()});
      rec.opcode = "invalid";
      rec.outcome = "err";
      finish_record(rec, t0);
      return;
    }

    rec.opcode = opcode_of(req);
    rec.session = session_of(req);
    watchdog.set_activity(rec.opcode, rec.session);
    if (srv.cfg_.test_frame_hook) srv.cfg_.test_frame_hook(req);

    if (const auto* open = std::get_if<OpenRequest>(&req)) {
      rec.tenant = open->tenant;
      auto outcome = sessions.open(*open, SessionManager::Clock::now());
      if (outcome.kind == SessionManager::OpenOutcome::Kind::Queued) {
        pending[outcome.cookie] = c.fd;
        c.queued_cookies.push_back(outcome.cookie);
        rec.outcome = "queued";
      } else {
        if (const auto* ok = std::get_if<OpenReply>(&outcome.reply))
          rec.degraded = ok->degraded;
        rec.outcome = outcome_of(outcome.reply);
        send(c, outcome.reply);
      }
    } else {
      if (!rec.session.empty()) rec.tenant = sessions.tenant_of(rec.session);
      Reply reply;
      if (const auto* push = std::get_if<PushRequest>(&req)) {
        reply = sessions.push(*push);
      } else if (const auto* query = std::get_if<QueryRequest>(&req)) {
        reply = sessions.query(*query);
      } else if (const auto* close = std::get_if<CloseRequest>(&req)) {
        reply = sessions.close(*close);
      } else if (std::holds_alternative<StatsRequest>(req)) {
        reply = StatsReply{build_stats_json()};
      } else if (const auto* migrate = std::get_if<MigrateRequest>(&req)) {
        reply = sessions.migrate_in(*migrate);
      } else {
        reply = sessions.stats();
      }
      rec.outcome = outcome_of(reply);
      send(c, reply);
    }

    watchdog.clear_activity();
    finish_record(rec, t0);
  }

  void finish_record(RequestLog::Record& rec, std::int64_t t0) {
    rec.latency_us = obs::now_us() - t0;
    WLC_HISTOGRAM_OBSERVE("serve.frame_us", rec.latency_us);
    if (!reqlog.enabled()) return;
    rec.ts_us = wall_clock_us();
    reqlog.append(rec);
  }

  /// Extracts and handles every complete frame buffered on `c`. Returns
  /// false when the stream turned unframeable and the connection must go.
  bool process_input(SessionManager& sessions, Connection& c) {
    for (;;) {
      std::size_t consumed = 0;
      std::optional<std::string_view> payload;
      try {
        payload = try_extract_frame(c.in, &consumed);
      } catch (const wlc::Error& e) {
        WLC_COUNTER_ADD("serve.protocol_errors", 1);
        send(c, ErrReply{std::string("unframeable stream: ") + e.message()});
        c.close_after_flush = true;
        return false;
      }
      if (!payload) return true;
      handle_frame(sessions, c, *payload);
      c.in.erase(0, consumed);
    }
  }

  void route_queue_resolutions(SessionManager& sessions,
                               const std::vector<SessionManager::QueueResolution>& resolved) {
    for (const auto& r : resolved) {
      const auto it = pending.find(r.cookie);
      if (it == pending.end()) continue;  // connection died; manager was told
      const auto conn_it = conns.find(it->second);
      pending.erase(it);
      if (conn_it != conns.end()) send(conn_it->second, r.reply);
    }
    (void)sessions;
  }

  void drop_connection(SessionManager& sessions, int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    for (std::uint64_t cookie : it->second.queued_cookies) {
      sessions.cancel_queued(cookie);
      pending.erase(cookie);
    }
    ::close(fd);
    conns.erase(it);
    WLC_COUNTER_ADD("serve.connections.closed", 1);
  }

  /// Drain-time hand-off: offers every live session to the --drain-to peer
  /// as a Migrate frame and forgets the ones it acknowledges. Any failure —
  /// peer unreachable, snapshot too large to frame, refusal — leaves that
  /// session live, so the caller's snapshot_all() persists it to disk as
  /// before; migration can only improve on the disk-snapshot baseline,
  /// never lose a session. Returns the number handed off.
  std::size_t migrate_out(SessionManager& sessions, const std::string& peer) {
    const std::vector<std::string> ids = sessions.session_ids();
    if (ids.empty()) return 0;
    Client client;
    if (!client.connect(peer)) {
      srv.log_ << "wlc_serve: drain-to peer " << peer << " unreachable (" << client.error()
               << "); draining to disk snapshots instead\n";
      return 0;
    }
    std::size_t migrated = 0;
    for (const std::string& id : ids) {
      std::string bytes;
      if (!sessions.export_session_snapshot(id, &bytes)) continue;
      // encode_request adds the type byte and the blob's length prefix on
      // top of the snapshot; a payload beyond the frame cap is unframeable.
      if (bytes.size() + 5 > kMaxFrameBytes) {
        WLC_COUNTER_ADD("serve.migrate.too_large", 1);
        srv.log_ << "wlc_serve: session '" << id << "' snapshot (" << bytes.size()
                 << " bytes) exceeds the frame cap; keeping its disk snapshot\n";
        continue;
      }
      Reply reply;
      try {
        if (!client.call(MigrateRequest{std::move(bytes)}, &reply)) {
          srv.log_ << "wlc_serve: hand-off of session '" << id << "' failed ("
                   << client.error() << "); remaining sessions drain to disk\n";
          break;
        }
      } catch (const wlc::Error& e) {
        srv.log_ << "wlc_serve: undecodable reply from drain-to peer for session '" << id
                 << "' (" << e.message() << "); remaining sessions drain to disk\n";
        break;
      }
      if (std::holds_alternative<MigrateOkReply>(reply)) {
        sessions.drop_migrated(id);
        ++migrated;
      } else {
        srv.log_ << "wlc_serve: drain-to peer refused session '" << id << "' ("
                 << outcome_of(reply) << "); keeping its disk snapshot\n";
      }
    }
    return migrated;
  }
};

Server::Server(ServerConfig cfg, std::ostream& log)
    : cfg_(std::move(cfg)),
      addr_(parse_address(cfg_.listen)),
      log_(log),
      sessions_([&] {
        SessionConfig sc = cfg_.sessions;
        sc.log = &log;
        return sc;
      }()) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (addr_.is_unix) ::unlink(addr_.path.c_str());
}

void Server::start() {
  listen_fd_ = listen_socket(addr_);
  set_nonblocking(listen_fd_);
  started_at_ = std::chrono::steady_clock::now();
  const std::size_t recovered = sessions_.recover();
  log_ << "wlc_serve: listening on " << addr_.to_string();
  if (!cfg_.sessions.state_dir.empty())
    log_ << ", state dir '" << cfg_.sessions.state_dir << "' (" << recovered
         << " sessions recovered)";
  log_ << "\n";
}

int Server::run(const runtime::RunPolicy& policy) {
  Impl impl(*this);
  impl.last_snapshot = SessionManager::Clock::now();

  // With a watchdog armed, the poll timeout must stay well under the stall
  // threshold or an idle reactor's blocking poll would read as a stall.
  int poll_timeout_ms = cfg_.poll_timeout_ms;
  if (cfg_.watchdog.count() > 0) {
    poll_timeout_ms =
        std::min<int>(poll_timeout_ms, std::max<int>(1, static_cast<int>(cfg_.watchdog.count() / 2)));
    impl.watchdog.start(cfg_.watchdog, cfg_.watchdog_abort, log_);
  }

  const auto stopping = [&] {
    return policy.token.cancelled() || policy.deadline.expired();
  };

  while (!stopping()) {
    const std::int64_t hb = obs::now_us();
    impl.watchdog.heartbeat_us.store(hb, std::memory_order_relaxed);
    WLC_GAUGE_SET("serve.reactor.heartbeat_us", hb);

    std::vector<pollfd> fds;
    // During an EMFILE backoff window the listen fd is not polled for
    // readability at all — otherwise the still-backlogged connection would
    // make every poll() return instantly (the spin this satellite removes).
    const bool accept_paused = SessionManager::Clock::now() < impl.accept_retry_at;
    fds.push_back({listen_fd_, static_cast<short>(accept_paused ? 0 : POLLIN), 0});
    for (auto& [fd, c] : impl.conns) {
      short events = 0;
      if (c.out.size() < kOutputWatermark && !c.close_after_flush) events |= POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), poll_timeout_ms);
    if (n < 0 && errno != EINTR) {
      std::lock_guard<std::mutex> lock(impl.watchdog.mu);
      log_ << "wlc_serve: poll failed: " << std::strerror(errno) << "\n";
      break;
    }

    // New connections.
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = common::faultfs::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          impl.accept_backoff_ms = 0;
          set_nonblocking(fd);
          Connection c;
          c.fd = fd;
          impl.conns.emplace(fd, std::move(c));
          WLC_COUNTER_ADD("serve.connections.accepted", 1);
          continue;
        }
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE) {
          // Descriptor exhaustion. Accept-close-shed via the reserve fd:
          // the backlogged peer gets a clean close instead of hanging and
          // the listen fd stops reporting readable; then back off so an fd
          // storm cannot monopolize the reactor over live sessions.
          const int saved_errno = errno;
          if (impl.reserve_fd >= 0) {
            ::close(impl.reserve_fd);
            impl.reserve_fd = -1;
            const int shed = ::accept(listen_fd_, nullptr, nullptr);
            if (shed >= 0) ::close(shed);
            impl.reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          }
          WLC_COUNTER_ADD("serve.accept.shed", 1);
          const bool first = impl.accept_backoff_ms == 0;
          impl.accept_backoff_ms =
              first ? 10 : std::min(impl.accept_backoff_ms * 2, 500);
          impl.accept_retry_at = SessionManager::Clock::now() +
                                 std::chrono::milliseconds(impl.accept_backoff_ms);
          if (first) {
            std::lock_guard<std::mutex> lock(impl.watchdog.mu);
            log_ << "wlc_serve: accept: " << std::strerror(saved_errno)
                 << "; shedding new connections with backoff\n";
          }
        }
        break;
      }
    }

    // I/O per connection. Collect fds to drop; mutating the map while the
    // pollfd list still refers to it is asking for trouble.
    std::vector<int> doomed;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      auto it = impl.conns.find(fd);
      if (it == impl.conns.end()) continue;
      Connection& c = it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (c.out.empty() || (fds[i].revents & (POLLERR | POLLNVAL))) {
          doomed.push_back(fd);
          continue;
        }
      }
      if (fds[i].revents & POLLIN) {
        char buf[kReadChunk];
        for (;;) {
          const ssize_t got = common::faultfs::read(fd, buf, sizeof buf);
          if (got > 0) {
            c.in.append(buf, static_cast<std::size_t>(got));
            if (!impl.process_input(sessions_, c)) break;
            if (c.in.size() >= kMaxFrameBytes) break;  // wait for drain
            continue;
          }
          if (got == 0) {
            // Peer closed its write side; serve out what is buffered.
            impl.process_input(sessions_, c);
            c.close_after_flush = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          doomed.push_back(fd);
          break;
        }
      }
      if (!c.out.empty()) {
        const ssize_t sent = common::faultfs::write(fd, c.out.data(), c.out.size());
        if (sent > 0) c.out.erase(0, static_cast<std::size_t>(sent));
        else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          doomed.push_back(fd);
      }
      if (c.close_after_flush && c.out.empty()) doomed.push_back(fd);
    }
    for (int fd : doomed) impl.drop_connection(sessions_, fd);

    const auto now = SessionManager::Clock::now();
    impl.route_queue_resolutions(sessions_, sessions_.pump_queue(now));
    if (cfg_.snapshot_interval.count() > 0 && now - impl.last_snapshot >= cfg_.snapshot_interval) {
      sessions_.snapshot_all();
      impl.last_snapshot = now;
    }
  }

  // The monitor must not read the drain below as one long stall.
  impl.watchdog.join();

  // Graceful drain: no new reads or accepts; answer what is already
  // buffered, fail the parked Opens explicitly, flush replies briefly,
  // persist everything.
  for (auto& [fd, c] : impl.conns) impl.process_input(sessions_, c);
  for (auto& [cookie, fd] : impl.pending) {
    const auto it = impl.conns.find(fd);
    if (it != impl.conns.end()) {
      if (!cfg_.drain_to.empty())
        impl.send(it->second, RedirectReply{cfg_.drain_to, "daemon draining to peer"});
      else
        impl.send(it->second,
                  RejectReply{RejectCode::QueueTimeout, "daemon draining for shutdown", 0});
    }
    sessions_.cancel_queued(cookie);
  }
  const auto flush_deadline =
      SessionManager::Clock::now() + std::chrono::seconds(2);
  for (bool outstanding = true;
       outstanding && SessionManager::Clock::now() < flush_deadline;) {
    outstanding = false;
    for (auto& [fd, c] : impl.conns) {
      if (c.out.empty()) continue;
      const ssize_t sent = common::faultfs::write(fd, c.out.data(), c.out.size());
      if (sent > 0) c.out.erase(0, static_cast<std::size_t>(sent));
      if (!c.out.empty()) outstanding = true;
    }
    if (outstanding) ::poll(nullptr, 0, 5);
  }
  std::size_t migrated = 0;
  if (!cfg_.drain_to.empty()) migrated = impl.migrate_out(sessions_, cfg_.drain_to);
  sessions_.snapshot_all();
  for (auto& [fd, c] : impl.conns) ::close(fd);
  impl.conns.clear();
  log_ << "wlc_serve: drained " << sessions_.live_sessions() << " live sessions to snapshots";
  if (!cfg_.drain_to.empty())
    log_ << ", " << migrated << " migrated to " << cfg_.drain_to;
  log_ << ", exiting\n";
  // Drain sentinel: the last request-log record of a graceful shutdown.
  // tools/soak_serve.sh waits for this line instead of sleeping — once it
  // appears, every migration and snapshot above has completed and the log
  // fd has absorbed the final write (one write(2) per record).
  if (impl.reqlog.enabled()) {
    RequestLog::Record rec;
    rec.ts_us = wall_clock_us();
    rec.opcode = "drain";
    rec.outcome = "complete";
    impl.reqlog.append(rec);
  }
  return 0;
}

}  // namespace wlc::serve
