#include "serve/client.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/wire.h"

namespace wlc::serve {

bool Client::connect(const std::string& spec) {
  disconnect();
  const Address addr = parse_address(spec);
  fd_ = connect_socket(addr);
  if (fd_ < 0) {
    error_ = "connect " + addr.to_string() + ": " + std::strerror(errno);
    return false;
  }
  error_.clear();
  return true;
}

bool Client::call(const Request& req, Reply* reply) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  const std::string frame = encode_request(req);
  if (!write_all(fd_, frame.data(), frame.size())) {
    error_ = std::string("send failed: ") + std::strerror(errno);
    disconnect();
    return false;
  }
  unsigned char len_bytes[4];
  if (!read_exact(fd_, reinterpret_cast<char*>(len_bytes), sizeof len_bytes)) {
    error_ = "connection closed while waiting for reply";
    disconnect();
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                            static_cast<std::uint32_t>(len_bytes[1]) << 8 |
                            static_cast<std::uint32_t>(len_bytes[2]) << 16 |
                            static_cast<std::uint32_t>(len_bytes[3]) << 24;
  if (len > kMaxFrameBytes) {
    error_ = "oversized reply frame";
    disconnect();
    return false;
  }
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd_, payload.data(), payload.size())) {
    error_ = "connection closed mid-reply";
    disconnect();
    return false;
  }
  *reply = decode_reply(payload);  // throws ParseError on garbage
  return true;
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace wlc::serve
