#include "serve/client.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/assert.h"
#include "serve/wire.h"

namespace wlc::serve {

bool Client::connect(const std::string& spec) {
  disconnect();
  const Address addr = parse_address(spec);
  fd_ = connect_socket(addr);
  if (fd_ < 0) {
    error_ = "connect " + addr.to_string() + ": " + std::strerror(errno);
    return false;
  }
  error_.clear();
  return true;
}

bool Client::call(const Request& req, Reply* reply) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  const std::string frame = encode_request(req);
  if (!write_all(fd_, frame.data(), frame.size())) {
    error_ = std::string("send failed: ") + std::strerror(errno);
    disconnect();
    return false;
  }
  unsigned char len_bytes[4];
  if (!read_exact(fd_, reinterpret_cast<char*>(len_bytes), sizeof len_bytes)) {
    error_ = "connection closed while waiting for reply";
    disconnect();
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                            static_cast<std::uint32_t>(len_bytes[1]) << 8 |
                            static_cast<std::uint32_t>(len_bytes[2]) << 16 |
                            static_cast<std::uint32_t>(len_bytes[3]) << 24;
  if (len > kMaxFrameBytes) {
    error_ = "oversized reply frame";
    disconnect();
    return false;
  }
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd_, payload.data(), payload.size())) {
    error_ = "connection closed mid-reply";
    disconnect();
    return false;
  }
  *reply = decode_reply(payload);  // throws ParseError on garbage
  return true;
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<std::string> split_address_list(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) out.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

FailoverClient::FailoverClient(std::vector<std::string> addresses, RetryPolicy policy)
    : addresses_(std::move(addresses)), policy_(policy), rng_(policy.seed) {
  WLC_REQUIRE(!addresses_.empty(), "failover client needs at least one address");
  for (const std::string& a : addresses_) parse_address(a);  // fail fast on a bad spec
}

std::chrono::milliseconds FailoverClient::next_backoff() {
  // Decorrelated jitter (the AWS architecture-blog variant): each wait is
  // uniform in [base, 3 * previous], clamped to cap. Compared with plain
  // exponential-with-jitter it decorrelates clients that failed at the same
  // instant (a daemon death synchronizes everyone) while still growing
  // geometrically in expectation.
  const auto base = policy_.base.count();
  const auto prev = prev_wait_.count() > 0 ? prev_wait_.count() : base;
  const auto hi = std::max(base, 3 * prev);
  const auto span = hi - base;
  const auto wait =
      span > 0 ? base + static_cast<std::int64_t>(rng_() % static_cast<std::uint64_t>(span + 1))
               : base;
  prev_wait_ = std::min(std::chrono::milliseconds(wait), policy_.cap);
  return prev_wait_;
}

bool FailoverClient::connect_until(std::chrono::steady_clock::time_point give_up) {
  using std::chrono::steady_clock;
  for (;;) {
    // One sweep: every address once, preferred one first.
    for (std::size_t i = 0; i < addresses_.size(); ++i) {
      const std::size_t idx = (cursor_ + i) % addresses_.size();
      if (client_.connect(addresses_[idx])) {
        cursor_ = idx;
        failed_sweeps_ = 0;
        prev_wait_ = std::chrono::milliseconds(0);
        error_.clear();
        return true;
      }
      error_ = client_.error();
    }
    ++failed_sweeps_;
    if (policy_.budget > 0 && failed_sweeps_ >= policy_.budget) {
      error_ = "retry budget exhausted after " + std::to_string(failed_sweeps_) +
               " failed sweeps of " + std::to_string(addresses_.size()) +
               " address(es); last error: " + error_;
      return false;
    }
    const auto wait = next_backoff();
    if (steady_clock::now() + wait >= give_up) {
      error_ = "retry deadline reached; last error: " + error_;
      return false;
    }
    std::this_thread::sleep_for(wait);
  }
}

bool FailoverClient::call(const Request& req, Reply* reply) {
  if (!client_.call(req, reply)) {
    error_ = client_.error();
    return false;
  }
  return true;
}

void FailoverClient::follow_redirect(const std::string& address) {
  parse_address(address);  // refuse to chase a garbage redirect
  client_.disconnect();
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] == address) {
      cursor_ = i;
      failed_sweeps_ = 0;
      prev_wait_ = std::chrono::milliseconds(0);
      return;
    }
  }
  addresses_.insert(addresses_.begin(), address);
  cursor_ = 0;
  failed_sweeps_ = 0;
  prev_wait_ = std::chrono::milliseconds(0);
}

void FailoverClient::disconnect() { client_.disconnect(); }

}  // namespace wlc::serve
