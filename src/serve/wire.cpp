#include "serve/wire.h"

#include "common/crc32.h"

namespace wlc::serve {

std::uint32_t crc32(std::string_view bytes) { return common::crc32(bytes); }

}  // namespace wlc::serve
