#include "serve/protocol.h"

#include <cstring>

#include "serve/wire.h"

namespace wlc::serve {

namespace {

enum class MsgType : std::uint8_t {
  Open = 1,
  Push = 2,
  Query = 3,
  Close = 4,
  Ping = 5,
  Stats = 6,
  Migrate = 7,
  OpenOk = 64,
  PushOk = 65,
  Curves = 66,
  CloseOk = 67,
  Pong = 68,
  StatsOk = 69,
  MigrateOk = 70,
  Rejected = 80,
  Err = 81,
  Redirect = 82,
};

void write_points(Writer& w, const std::vector<std::pair<EventCount, Cycles>>& pts) {
  w.u32(static_cast<std::uint32_t>(pts.size()));
  for (const auto& [k, c] : pts) {
    w.i64(k);
    w.i64(c);
  }
}

std::vector<std::pair<EventCount, Cycles>> read_points(Reader& r) {
  const std::uint32_t n = r.u32();
  if (static_cast<std::uint64_t>(n) * 16 > r.remaining())
    throw ParseError("reply corrupt: point list claims " + std::to_string(n) +
                         " points but only " + std::to_string(r.remaining()) + " bytes remain",
                     std::to_string(n), 0, 0, __FILE__, __LINE__);
  std::vector<std::pair<EventCount, Cycles>> pts;
  pts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const EventCount k = r.i64();
    const Cycles c = r.i64();
    pts.emplace_back(k, c);
  }
  return pts;
}

std::string frame(std::string payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.append(reinterpret_cast<const char*>(&len), 4);
  out += payload;
  return out;
}

}  // namespace

const char* to_string(RejectCode code) {
  switch (code) {
    case RejectCode::SessionLimit: return "session-limit";
    case RejectCode::GridLimit: return "grid-limit";
    case RejectCode::MemoryLimit: return "memory-limit";
    case RejectCode::QueueTimeout: return "queue-timeout";
    case RejectCode::UnknownSession: return "unknown-session";
    case RejectCode::BadRequest: return "bad-request";
  }
  return "unknown";
}

std::string encode_request(const Request& req) {
  Writer w;
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, OpenRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Open));
          w.u32(r.protocol_version);
          w.str(r.session_id);
          w.str(r.tenant);
          w.vec_i64(r.ks);
        } else if constexpr (std::is_same_v<T, PushRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Push));
          w.str(r.session_id);
          w.vec_i64(r.demands);
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Query));
          w.str(r.session_id);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Close));
          w.str(r.session_id);
          w.u8(r.discard_snapshot ? 1 : 0);
        } else if constexpr (std::is_same_v<T, PingRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Ping));
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Stats));
        } else {
          static_assert(std::is_same_v<T, MigrateRequest>);
          w.u8(static_cast<std::uint8_t>(MsgType::Migrate));
          w.str(r.snapshot);
        }
      },
      req);
  return frame(w.take());
}

std::string encode_reply(const Reply& rep) {
  Writer w;
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, OpenReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::OpenOk));
          w.vec_i64(r.ks_used);
          w.i64(r.events_seen);
          w.u8(r.resumed ? 1 : 0);
          w.u8(r.degraded ? 1 : 0);
        } else if constexpr (std::is_same_v<T, PushReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::PushOk));
          w.i64(r.events_seen);
          w.i64(r.quarantined);
        } else if constexpr (std::is_same_v<T, CurveReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Curves));
          w.u8(r.ready ? 1 : 0);
          write_points(w, r.upper);
          write_points(w, r.lower);
          w.i64(r.accepted);
          w.i64(r.quarantined);
          w.i64(r.windows_reset);
          w.u8(r.saturated ? 1 : 0);
        } else if constexpr (std::is_same_v<T, CloseReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::CloseOk));
          w.i64(r.events_seen);
        } else if constexpr (std::is_same_v<T, PongReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Pong));
          w.i64(r.live_sessions);
          w.i64(r.max_sessions);
          w.i64(r.grid_leased);
          w.i64(r.max_grid_points);
          w.i64(r.bytes_leased);
          w.i64(r.max_resident_bytes);
          w.i64(r.queued_opens);
          w.i64(r.recovered_sessions);
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::StatsOk));
          w.str(r.json);
        } else if constexpr (std::is_same_v<T, RejectReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Rejected));
          w.u8(static_cast<std::uint8_t>(r.code));
          w.str(r.reason);
          w.i64(r.retry_after_ms);
        } else if constexpr (std::is_same_v<T, ErrReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::Err));
          w.str(r.message);
        } else if constexpr (std::is_same_v<T, MigrateOkReply>) {
          w.u8(static_cast<std::uint8_t>(MsgType::MigrateOk));
          w.i64(r.events_seen);
        } else {
          static_assert(std::is_same_v<T, RedirectReply>);
          w.u8(static_cast<std::uint8_t>(MsgType::Redirect));
          w.str(r.address);
          w.str(r.reason);
        }
      },
      rep);
  return frame(w.take());
}

std::optional<std::string_view> try_extract_frame(std::string_view buffer,
                                                  std::size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < 4) return std::nullopt;
  std::uint32_t len;
  std::memcpy(&len, buffer.data(), 4);
  if (len > kMaxFrameBytes)
    throw ParseError("frame length " + std::to_string(len) + " exceeds the " +
                         std::to_string(kMaxFrameBytes) + "-byte cap",
                     std::to_string(len), 0, 0, __FILE__, __LINE__);
  if (buffer.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  *consumed = 4 + static_cast<std::size_t>(len);
  return buffer.substr(4, len);
}

Request decode_request(std::string_view payload) {
  Reader r(payload, "request");
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::Open: {
      OpenRequest q;
      q.protocol_version = r.u32();
      q.session_id = r.str();
      q.tenant = r.str();
      q.ks = r.vec_i64();
      r.expect_done();
      return q;
    }
    case MsgType::Push: {
      PushRequest q;
      q.session_id = r.str();
      q.demands = r.vec_i64();
      r.expect_done();
      return q;
    }
    case MsgType::Query: {
      QueryRequest q;
      q.session_id = r.str();
      r.expect_done();
      return q;
    }
    case MsgType::Close: {
      CloseRequest q;
      q.session_id = r.str();
      q.discard_snapshot = r.u8() != 0;
      r.expect_done();
      return q;
    }
    case MsgType::Ping: {
      r.expect_done();
      return PingRequest{};
    }
    case MsgType::Stats: {
      r.expect_done();
      return StatsRequest{};
    }
    case MsgType::Migrate: {
      MigrateRequest q;
      q.snapshot = r.str();
      r.expect_done();
      return q;
    }
    default:
      throw ParseError("unknown request type " + std::to_string(static_cast<unsigned>(type)),
                       "", 0, 0, __FILE__, __LINE__);
  }
}

Reply decode_reply(std::string_view payload) {
  Reader r(payload, "reply");
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::OpenOk: {
      OpenReply p;
      p.ks_used = r.vec_i64();
      p.events_seen = r.i64();
      p.resumed = r.u8() != 0;
      p.degraded = r.u8() != 0;
      r.expect_done();
      return p;
    }
    case MsgType::PushOk: {
      PushReply p;
      p.events_seen = r.i64();
      p.quarantined = r.i64();
      r.expect_done();
      return p;
    }
    case MsgType::Curves: {
      CurveReply p;
      p.ready = r.u8() != 0;
      p.upper = read_points(r);
      p.lower = read_points(r);
      p.accepted = r.i64();
      p.quarantined = r.i64();
      p.windows_reset = r.i64();
      p.saturated = r.u8() != 0;
      r.expect_done();
      return p;
    }
    case MsgType::CloseOk: {
      CloseReply p;
      p.events_seen = r.i64();
      r.expect_done();
      return p;
    }
    case MsgType::Pong: {
      PongReply p;
      p.live_sessions = r.i64();
      p.max_sessions = r.i64();
      p.grid_leased = r.i64();
      p.max_grid_points = r.i64();
      p.bytes_leased = r.i64();
      p.max_resident_bytes = r.i64();
      p.queued_opens = r.i64();
      p.recovered_sessions = r.i64();
      r.expect_done();
      return p;
    }
    case MsgType::StatsOk: {
      StatsReply p;
      p.json = r.str();
      r.expect_done();
      return p;
    }
    case MsgType::Rejected: {
      RejectReply p;
      p.code = static_cast<RejectCode>(r.u8());
      p.reason = r.str();
      p.retry_after_ms = r.i64();
      r.expect_done();
      return p;
    }
    case MsgType::Err: {
      ErrReply p;
      p.message = r.str();
      r.expect_done();
      return p;
    }
    case MsgType::MigrateOk: {
      MigrateOkReply p;
      p.events_seen = r.i64();
      r.expect_done();
      return p;
    }
    case MsgType::Redirect: {
      RedirectReply p;
      p.address = r.str();
      p.reason = r.str();
      r.expect_done();
      return p;
    }
    default:
      throw ParseError("unknown reply type " + std::to_string(static_cast<unsigned>(type)), "",
                       0, 0, __FILE__, __LINE__);
  }
}

}  // namespace wlc::serve
