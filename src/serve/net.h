// Minimal socket plumbing for the serve daemon and its client: address
// parsing and blocking/non-blocking stream sockets over TCP (IPv4) or Unix
// domain sockets. Everything POSIX, nothing exotic — the interesting
// robustness lives above this layer.
#pragma once

#include <cstdint>
#include <string>

namespace wlc::serve {

/// "unix:/path/sock" → Unix domain; "host:port" or ":port" → IPv4 TCP
/// (empty host = 127.0.0.1). Throws wlc::DomainError on an unparsable spec.
struct Address {
  bool is_unix = false;
  std::string path;           ///< unix socket path
  std::string host;           ///< IPv4 dotted quad
  std::uint16_t port = 0;

  std::string to_string() const;
};

Address parse_address(const std::string& spec);

/// Creates, binds and listens. Unix sockets unlink a stale file first.
/// Returns the listening fd; throws wlc::DomainError with the errno text on
/// failure.
int listen_socket(const Address& addr, int backlog = 64);

/// Blocking connect. Returns the fd, or -1 with errno set.
int connect_socket(const Address& addr);

/// Sets O_NONBLOCK.
void set_nonblocking(int fd);

/// Writes all of `data` to a blocking fd; returns false on error/EOF.
bool write_all(int fd, const char* data, std::size_t size);

/// Reads exactly `size` bytes from a blocking fd; returns false on
/// error/EOF.
bool read_exact(int fd, char* data, std::size_t size);

}  // namespace wlc::serve
