// Request/response protocol of the serve daemon.
//
// Transport framing is a u32 little-endian payload length followed by the
// payload; the first payload byte is the message type. Frames are capped at
// kMaxFrameBytes — a length prefix beyond the cap is a framing fault and the
// connection is closed, so a corrupt or hostile peer cannot make the daemon
// buffer unbounded garbage. Inside a frame, decoding uses the strict
// bounds-checked wire.h Reader: malformed payloads throw wlc::ParseError
// (answered with an Err reply), they never crash the daemon.
//
// Session lifecycle over the protocol:
//
//   Open {session_id, tenant, ks}
//     → OpenOk {ks_used, events_seen, resumed, degraded}   admitted
//     → Rejected {code, reason, retry_after_ms, ...}        backpressure
//   Push {session_id, demands}    → PushOk {events_seen, quarantined}
//   Query {session_id}            → Curves {ready, upper, lower, health}
//   Close {session_id, discard}   → CloseOk {events_seen}
//   Ping {}                       → Pong {pool usage & limits}
//   Stats {}                      → StatsReply {versioned JSON document}
//   Migrate {snapshot}            → MigrateOk {events_seen}   peer accepted
//     → Rejected / Err                                        peer refused
//
// Migrate is daemon-to-daemon: a draining daemon started with
// `--drain-to <addr>` hands each live session's snapshot bytes (the exact
// versioned+CRC blob it would have written to disk) to the peer, which
// installs it like a crash recovery — same strict decode, same pool lease
// discipline — and persists it into its own state dir before replying.
// After a successful hand-off the origin forgets the session; clients that
// were parked or arrive mid-drain get a Redirect reply naming the peer, and
// resume there cursor-exact, so a migrated analysis is bit-identical to an
// unmigrated one. Snapshots larger than kMaxFrameBytes cannot be framed;
// the origin falls back to leaving the snapshot on disk (logged).
//
// Stats is the live-introspection frame: the reply carries one JSON
// document ({"schema_version": 1, "uptime_s", "pool", "sessions",
// "tenants", "metrics"}) — per-session state, pool axis occupancy and the
// full metrics snapshot with interpolated latency quantiles. JSON rather
// than wire structs on purpose: the document grows additively without a
// protocol-version bump, and obs::decode_metrics_json() gives tooling a
// tolerant, schema-checked reader.
//
// Open doubles as resume: opening an id the daemon already knows (live, or
// recovered from a snapshot) replies with the session's current
// events_seen, and the client re-sends its demand stream from that position
// — which makes the recovered analysis bit-identical to an uninterrupted
// one (the CI soak job pins this end to end).
//
// Rejected is the *explicit backpressure* reply: it names the exhausted
// axis, carries a retry hint, and is sent instead of silently stalling or
// dropping the request. Under the Queue admission policy an Open may be
// answered later (when capacity frees or its deadline passes); the
// connection sees exactly one reply either way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.h"

namespace wlc::serve {

/// Hard cap on one frame's payload. Push chunks must stay below it.
inline constexpr std::size_t kMaxFrameBytes = 4u << 20;

/// Protocol revision carried in every Open; bumped on incompatible change.
inline constexpr std::uint32_t kProtocolVersion = 1;

// ---- requests ----

struct OpenRequest {
  std::uint32_t protocol_version = kProtocolVersion;
  std::string session_id;  ///< [A-Za-z0-9_.-]{1,128}; doubles as snapshot file stem
  std::string tenant;      ///< same charset; namespaces the per-tenant metrics
  std::vector<EventCount> ks;  ///< requested window-size grid
};

struct PushRequest {
  std::string session_id;
  std::vector<Cycles> demands;
};

struct QueryRequest {
  std::string session_id;
};

struct CloseRequest {
  std::string session_id;
  bool discard_snapshot = true;  ///< false: leave the snapshot for a later restart
};

struct PingRequest {};

struct StatsRequest {};

/// Daemon-to-daemon session hand-off: the payload is the session's complete
/// snapshot blob (serve/snapshot.h format — magic, version, CRC, state),
/// identical to the bytes a crash recovery would read from disk. The session
/// id, tenant and cursor all travel inside the blob.
struct MigrateRequest {
  std::string snapshot;
};

using Request = std::variant<OpenRequest, PushRequest, QueryRequest, CloseRequest, PingRequest,
                             StatsRequest, MigrateRequest>;

// ---- replies ----

struct OpenReply {
  std::vector<EventCount> ks_used;  ///< grid actually tracked (possibly coarsened)
  /// Resume cursor: demands *consumed* (accepted + quarantined), i.e. the
  /// stream position the client continues sending from.
  EventCount events_seen = 0;
  bool resumed = false;             ///< id was already known (live or recovered)
  bool degraded = false;            ///< grid was coarsened to fit the pool
};

struct PushReply {
  EventCount events_seen = 0;   ///< stream position (accepted + quarantined)
  EventCount quarantined = 0;   ///< total invalid demands quarantined so far
};

struct CurveReply {
  bool ready = false;  ///< false: smallest window not yet closed, points empty
  std::vector<std::pair<EventCount, Cycles>> upper;
  std::vector<std::pair<EventCount, Cycles>> lower;
  EventCount accepted = 0;
  EventCount quarantined = 0;
  EventCount windows_reset = 0;
  bool saturated = false;
};

struct CloseReply {
  EventCount events_seen = 0;
};

struct PongReply {
  std::int64_t live_sessions = 0;
  std::int64_t max_sessions = 0;  ///< 0 = unlimited
  std::int64_t grid_leased = 0;
  std::int64_t max_grid_points = 0;
  std::int64_t bytes_leased = 0;
  std::int64_t max_resident_bytes = 0;
  std::int64_t queued_opens = 0;
  std::int64_t recovered_sessions = 0;
};

/// Which axis (or fault) caused a rejection.
enum class RejectCode : std::uint8_t {
  SessionLimit = 1,   ///< live-session axis of the pool exhausted
  GridLimit = 2,      ///< grid-point axis exhausted (and degrading impossible)
  MemoryLimit = 3,    ///< resident-byte axis exhausted
  QueueTimeout = 4,   ///< queued Open's deadline passed before capacity freed
  UnknownSession = 5, ///< Push/Query/Close for an id the daemon does not hold
  BadRequest = 6,     ///< invalid session id / tenant / grid / version
};

const char* to_string(RejectCode code);

/// Explicit backpressure: why, and when retrying might succeed.
struct RejectReply {
  RejectCode code = RejectCode::BadRequest;
  std::string reason;
  std::int64_t retry_after_ms = 0;  ///< 0 = retrying will not help
};

/// Live-introspection snapshot: one JSON document (see the Stats note in
/// the header comment). Framed as an opaque string so the document can grow
/// without touching the wire format.
struct StatsReply {
  std::string json;
};

/// Protocol-level fault (undecodable payload on an intact frame).
struct ErrReply {
  std::string message;
};

/// Peer accepted a Migrate: the session is installed and persisted on the
/// receiving daemon; `events_seen` echoes its resume cursor so the origin
/// can sanity-check the hand-off before forgetting the session.
struct MigrateOkReply {
  EventCount events_seen = 0;
};

/// The daemon is draining to a peer: retry this request against `address`.
/// Sent to clients whose Open was parked or arrived mid-drain when
/// --drain-to is configured (without it they get a QueueTimeout Rejected).
struct RedirectReply {
  std::string address;
  std::string reason;
};

using Reply = std::variant<OpenReply, PushReply, CurveReply, CloseReply, PongReply, StatsReply,
                           RejectReply, ErrReply, MigrateOkReply, RedirectReply>;

// ---- framing ----

/// Encodes payload (type byte + body) and prepends the u32 length.
std::string encode_request(const Request& req);
std::string encode_reply(const Reply& rep);

/// Scans `buffer` for one complete frame. Returns the payload view and sets
/// `consumed` to the bytes to drop from the front of the buffer; returns
/// nullopt (consumed = 0) while the frame is still incomplete. Throws
/// wlc::ParseError when the length prefix exceeds kMaxFrameBytes — the
/// stream is unframeable from here on and the connection must be closed.
std::optional<std::string_view> try_extract_frame(std::string_view buffer, std::size_t* consumed);

/// Decodes one frame payload. Throws wlc::ParseError on malformed bytes.
Request decode_request(std::string_view payload);
Reply decode_reply(std::string_view payload);

}  // namespace wlc::serve
