#include "serve/request_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <string>

namespace wlc::serve {

namespace {

/// JSON string escaper for the few free-form fields (session ids and tenants
/// are charset-restricted, but outcome strings carry server text).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

int open_append(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
}

}  // namespace

RequestLog::RequestLog(RequestLogConfig cfg, std::ostream* diag)
    : cfg_(std::move(cfg)), diag_(diag) {
  if (cfg_.path.empty()) return;
  fd_ = open_append(cfg_.path);
  if (fd_ < 0) {
    report("cannot open request log '" + cfg_.path + "': " + std::strerror(errno));
    return;
  }
  struct stat st{};
  if (::fstat(fd_, &st) == 0) size_ = st.st_size;
}

RequestLog::~RequestLog() {
  if (fd_ >= 0) ::close(fd_);
}

void RequestLog::report(const std::string& what) {
  if (diag_ != nullptr) *diag_ << "wlc_serve: " << what << "\n";
}

void RequestLog::rotate() {
  ::close(fd_);
  fd_ = -1;
  const std::string rotated = cfg_.path + ".1";
  if (::rename(cfg_.path.c_str(), rotated.c_str()) != 0) {
    report("request log rotation failed: " + std::string(std::strerror(errno)));
    // Keep appending to the oversized file rather than losing records.
  }
  fd_ = open_append(cfg_.path);
  if (fd_ < 0) {
    report("cannot reopen request log after rotation: " + std::string(std::strerror(errno)));
    return;
  }
  struct stat st{};
  size_ = ::fstat(fd_, &st) == 0 ? st.st_size : 0;
}

void RequestLog::append(const Record& rec) {
  if (fd_ < 0) return;
  if (cfg_.slow_us > 0 && rec.latency_us < cfg_.slow_us) return;

  std::string line;
  line.reserve(160 + rec.session.size() + rec.tenant.size() + rec.outcome.size());
  line += "{\"ts_us\":";
  line += std::to_string(rec.ts_us);
  line += ",\"session\":\"";
  line += escape(rec.session);
  line += "\",\"tenant\":\"";
  line += escape(rec.tenant);
  line += "\",\"opcode\":\"";
  line += rec.opcode;
  line += "\",\"bytes\":";
  line += std::to_string(rec.bytes);
  line += ",\"latency_us\":";
  line += std::to_string(rec.latency_us);
  line += ",\"outcome\":\"";
  line += escape(rec.outcome);
  line += "\",\"degraded\":";
  line += rec.degraded ? "true" : "false";
  line += "}\n";

  if (cfg_.max_bytes > 0 && size_ + static_cast<std::int64_t>(line.size()) > cfg_.max_bytes &&
      size_ > 0)
    rotate();
  if (fd_ < 0) return;

  // One write(2) per record: with O_APPEND the record lands whole or not at
  // all across kill -9 — a partial write can only come from the filesystem
  // itself (ENOSPC), in which case the torn tail is the least of it.
  ssize_t wrote;
  do {
    wrote = ::write(fd_, line.data(), line.size());
  } while (wrote < 0 && errno == EINTR);
  if (wrote < 0) {
    report("request log write failed: " + std::string(std::strerror(errno)));
    return;
  }
  size_ += wrote;
}

}  // namespace wlc::serve
