// Blocking client for the serve protocol: one connection, strict
// request/reply lockstep. Used by the `serve-client` CLI subcommand and the
// in-process server tests. Reconnect/resume policy lives in the caller —
// this class only speaks frames.
#pragma once

#include <string>

#include "serve/net.h"
#include "serve/protocol.h"

namespace wlc::serve {

class Client {
 public:
  Client() = default;
  ~Client() { disconnect(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `spec` ("unix:/path", "host:port", ":port"). Returns false
  /// (with the errno text in error()) on failure; throws wlc::DomainError
  /// only on an unparsable spec.
  bool connect(const std::string& spec);

  /// Sends one request and blocks for its reply. Returns false on transport
  /// failure (connection is closed; error() says why); throws
  /// wlc::ParseError if the server's reply bytes do not decode.
  bool call(const Request& req, Reply* reply);

  void disconnect();

  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::string error_;
};

}  // namespace wlc::serve
