// Blocking client for the serve protocol: one connection, strict
// request/reply lockstep. Used by the `serve-client` CLI subcommand and the
// in-process server tests. Reconnect/resume policy lives in the caller —
// this class only speaks frames.
//
// FailoverClient layers the resilience policy on top: a peer-address
// failover list (tried round-robin), exponential backoff with decorrelated
// jitter between reconnect sweeps, a retry budget bounding consecutive
// transport failures, and redirect-following — a Redirect reply from a
// draining daemon moves the named peer to the front of the list so the next
// reconnect lands where the session migrated to. The jitter is seeded
// common::Rng, so a given (seed, failure sequence) produces an identical
// wait schedule — chaos-soak runs are replayable.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace wlc::serve {

class Client {
 public:
  Client() = default;
  ~Client() { disconnect(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to `spec` ("unix:/path", "host:port", ":port"). Returns false
  /// (with the errno text in error()) on failure; throws wlc::DomainError
  /// only on an unparsable spec.
  bool connect(const std::string& spec);

  /// Sends one request and blocks for its reply. Returns false on transport
  /// failure (connection is closed; error() says why); throws
  /// wlc::ParseError if the server's reply bytes do not decode.
  bool call(const Request& req, Reply* reply);

  void disconnect();

  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  std::string error_;
};

/// Reconnect policy knobs for FailoverClient.
struct RetryPolicy {
  /// First wait after a failure; also the floor of every jittered wait.
  std::chrono::milliseconds base{100};
  /// Ceiling on any single wait.
  std::chrono::milliseconds cap{5000};
  /// Consecutive failed connection sweeps (one sweep = every address tried
  /// once) tolerated before connect_until gives up. 0 = unlimited, bounded
  /// only by the caller's deadline.
  int budget = 0;
  /// Seed of the decorrelated-jitter schedule (deterministic per seed).
  std::uint64_t seed = 0x5eedull;
};

/// Splits "addr1,addr2,..." into a failover list (empty parts dropped).
std::vector<std::string> split_address_list(const std::string& spec);

class FailoverClient {
 public:
  /// `addresses` must be non-empty; order is preference order (throws
  /// wlc::DomainError when empty).
  FailoverClient(std::vector<std::string> addresses, RetryPolicy policy);

  /// Blocks until connected to some address, the retry budget is exhausted,
  /// or `give_up` passes. Each sweep tries every address once (starting
  /// from the most recently preferred one); between sweeps it sleeps the
  /// decorrelated-jitter backoff: wait = min(cap, uniform(base, 3 * prev)).
  /// Returns true when connected; error() explains a false.
  bool connect_until(std::chrono::steady_clock::time_point give_up);

  /// One request/reply exchange on the current connection. On transport
  /// failure the connection is dropped (connected() turns false) and the
  /// caller decides whether to connect_until again and resume. A Redirect
  /// reply is surfaced like any other — callers pass it to follow_redirect
  /// to re-aim the failover list before reconnecting.
  bool call(const Request& req, Reply* reply);

  /// Moves `address` to the front of the failover list (inserting it if
  /// new) and drops the current connection so the next connect_until tries
  /// the redirect target first. Resets the backoff schedule — a redirect is
  /// fresh information, not another failure.
  void follow_redirect(const std::string& address);

  void disconnect();
  bool connected() const { return client_.connected(); }
  const std::string& error() const { return error_; }
  /// Address of the current (or last attempted) connection.
  const std::string& current_address() const { return addresses_[cursor_]; }
  const std::vector<std::string>& addresses() const { return addresses_; }
  /// Consecutive failed sweeps since the last successful connect.
  int failed_sweeps() const { return failed_sweeps_; }
  /// The wait the next inter-sweep backoff would use — exposed so tests can
  /// pin the jitter schedule without sleeping.
  std::chrono::milliseconds peek_backoff() const { return prev_wait_; }

 private:
  std::chrono::milliseconds next_backoff();

  std::vector<std::string> addresses_;
  RetryPolicy policy_;
  Client client_;
  common::Rng rng_;
  std::string error_;
  std::size_t cursor_ = 0;             ///< index of the preferred address
  int failed_sweeps_ = 0;
  std::chrono::milliseconds prev_wait_{0};
};

}  // namespace wlc::serve
