// The serve daemon's reactor: one thread, poll(2)-driven, multiplexing many
// client connections over the length-prefixed protocol onto a
// SessionManager.
//
// Robustness posture:
//
//  * Overload is answered, not absorbed. Admission rejections are explicit
//    Rejected replies; per-connection input buffers are bounded by the
//    frame cap and a connection whose *output* buffer backs up past a
//    watermark simply stops being read until it drains (TCP backpressure
//    reaches the client). Nothing queues unboundedly.
//  * Partial failure is contained. A connection that sends an unframeable
//    byte stream is closed (the framing is unrecoverable); a connection
//    that frames a malformed payload gets an Err reply and lives on.
//    Neither disturbs other sessions.
//  * Process death is planned for. Sessions snapshot on a cadence (event
//    count and wall-clock interval); a graceful stop (the CLI routes
//    SIGTERM/SIGINT into the stop token) drains buffered requests,
//    flushes replies, snapshots every live session and returns 0; a
//    SIGKILL loses at most the events since the last snapshot, which the
//    resume protocol re-sends (see protocol.h) — recovered analyses are
//    bit-identical to uninterrupted ones.
//  * The reactor is observable while it runs. A Stats frame answers with a
//    versioned JSON document (uptime, pool occupancy, per-session state,
//    per-tenant rollups, full metrics snapshot with latency quantiles); a
//    --request-log writes one torn-proof JSONL record per handled frame;
//    and a watchdog thread detects a stalled callback (a heartbeat gauge is
//    stamped every poll iteration), counts it under serve.reactor.stall
//    naming the offending session, and can optionally SIGABRT for a
//    debuggable core in soak runs.
#pragma once

#include <chrono>
#include <functional>
#include <iosfwd>
#include <string>

#include "runtime/runtime.h"
#include "serve/net.h"
#include "serve/request_log.h"
#include "serve/session.h"

namespace wlc::serve {

struct ServerConfig {
  std::string listen;        ///< "unix:/path", "host:port" or ":port"
  SessionConfig sessions;    ///< pool limits, admission policy, state dir
  /// Peer address to hand live sessions to during the graceful drain
  /// (Migrate frames over the normal protocol). Empty = drain to disk
  /// snapshots only. With a peer configured, parked Opens are answered
  /// with a Redirect naming it instead of a QueueTimeout rejection, and a
  /// session whose hand-off fails (peer down, snapshot over the frame cap)
  /// falls back to its disk snapshot.
  std::string drain_to;
  std::chrono::milliseconds snapshot_interval{2000};  ///< timer-driven snapshot_all
  int poll_timeout_ms = 50;  ///< reactor tick (stop-token poll granularity)
  RequestLogConfig request_log;  ///< per-frame JSONL log; path empty = off
  /// Watchdog threshold: a frame callback (or anything else holding the
  /// reactor) running longer than this is counted as a stall. 0 disables
  /// the monitor thread entirely.
  std::chrono::milliseconds watchdog{0};
  /// Stall response escalation: abort() on detection for a debuggable core
  /// (soak runs). Off by default — production counts and carries on.
  bool watchdog_abort = false;
  /// Test-only: invoked with every decoded request before dispatch, on the
  /// reactor thread. The watchdog tests inject a sleep here.
  std::function<void(const Request&)> test_frame_hook;
};

class Server {
 public:
  /// Parses cfg.listen (throws wlc::DomainError on a bad spec). Does not
  /// touch the network yet.
  explicit Server(ServerConfig cfg, std::ostream& log);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; recovers sessions from the state dir. Throws
  /// wlc::DomainError on socket errors.
  void start();

  /// Runs the reactor until `policy`'s token is cancelled or its deadline
  /// passes, then drains gracefully (see header comment). Returns 0 on a
  /// clean drain. start() must have succeeded.
  int run(const runtime::RunPolicy& policy);

  const Address& address() const { return addr_; }
  SessionManager& sessions() { return sessions_; }

 private:
  struct Impl;

  ServerConfig cfg_;
  Address addr_;
  std::ostream& log_;
  SessionManager sessions_;
  int listen_fd_ = -1;
  std::chrono::steady_clock::time_point started_at_{};  ///< set by start(); uptime origin
};

}  // namespace wlc::serve
