// The serve daemon's reactor: one thread, poll(2)-driven, multiplexing many
// client connections over the length-prefixed protocol onto a
// SessionManager.
//
// Robustness posture:
//
//  * Overload is answered, not absorbed. Admission rejections are explicit
//    Rejected replies; per-connection input buffers are bounded by the
//    frame cap and a connection whose *output* buffer backs up past a
//    watermark simply stops being read until it drains (TCP backpressure
//    reaches the client). Nothing queues unboundedly.
//  * Partial failure is contained. A connection that sends an unframeable
//    byte stream is closed (the framing is unrecoverable); a connection
//    that frames a malformed payload gets an Err reply and lives on.
//    Neither disturbs other sessions.
//  * Process death is planned for. Sessions snapshot on a cadence (event
//    count and wall-clock interval); a graceful stop (the CLI routes
//    SIGTERM/SIGINT into the stop token) drains buffered requests,
//    flushes replies, snapshots every live session and returns 0; a
//    SIGKILL loses at most the events since the last snapshot, which the
//    resume protocol re-sends (see protocol.h) — recovered analyses are
//    bit-identical to uninterrupted ones.
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>

#include "runtime/runtime.h"
#include "serve/net.h"
#include "serve/session.h"

namespace wlc::serve {

struct ServerConfig {
  std::string listen;        ///< "unix:/path", "host:port" or ":port"
  SessionConfig sessions;    ///< pool limits, admission policy, state dir
  std::chrono::milliseconds snapshot_interval{2000};  ///< timer-driven snapshot_all
  int poll_timeout_ms = 50;  ///< reactor tick (stop-token poll granularity)
};

class Server {
 public:
  /// Parses cfg.listen (throws wlc::DomainError on a bad spec). Does not
  /// touch the network yet.
  explicit Server(ServerConfig cfg, std::ostream& log);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; recovers sessions from the state dir. Throws
  /// wlc::DomainError on socket errors.
  void start();

  /// Runs the reactor until `policy`'s token is cancelled or its deadline
  /// passes, then drains gracefully (see header comment). Returns 0 on a
  /// clean drain. start() must have succeeded.
  int run(const runtime::RunPolicy& policy);

  const Address& address() const { return addr_; }
  SessionManager& sessions() { return sessions_; }

 private:
  struct Impl;

  ServerConfig cfg_;
  Address addr_;
  std::ostream& log_;
  SessionManager sessions_;
  int listen_fd_ = -1;
};

}  // namespace wlc::serve
