// Session manager of the serve daemon: admission control over a global
// budget pool, per-session online extraction, crash-safe snapshots, and
// per-tenant observability.
//
// Admission control. Every session leases three resources from one pool —
// a live-session slot, its grid points (the tracked window sizes), and an
// estimate of its resident bytes (dominated by the max(k)-sized demand
// ring). A lease is taken atomically at Open and returned at Close. When an
// Open does not fit, the configured AdmissionPolicy decides, in the same
// demand-aware spirit as runtime::RunPolicy's degradation:
//
//   Reject  — answer immediately with an explicit backpressure reply naming
//             the exhausted axis (never a silent stall, never an OOM).
//   Degrade — coarsen the requested grid (runtime::coarsen_grid: endpoints
//             kept, so the k = 1 WCET anchor and the exact range survive)
//             until it fits the grid axis. Coarsening only *loosens* the
//             session's curves — every surviving k is still exact, and the
//             curve objects interpolate conservatively between them — so
//             an admitted-degraded session's bounds stay sound. Axes that
//             coarsening cannot shrink (session slots, ring bytes) still
//             reject.
//   Queue   — hold the Open with a deadline; admit when capacity frees
//             (pump_queue), reject with QueueTimeout when it passes. The
//             connection gets exactly one reply either way.
//
// Snapshots. With a state_dir configured, sessions are persisted on admit,
// every snapshot_every accepted events, on demand (snapshot_all — the
// graceful-shutdown path), and at Close with discard = false. Writes are
// atomic (common::atomic_write_file), loads are strict (serve/snapshot.h):
// recover() resurrects every valid *.wlcs, quarantines corrupt ones by
// renaming to *.corrupt, and never lets one bad file take the daemon down.
//
// Threading: the manager is single-threaded by design — the server's
// reactor owns it. Nothing here is locked.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "curve/compact.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "workload/online_extract.h"

namespace wlc::serve {

/// Global pool ceilings; 0 on any axis = unlimited.
struct PoolLimits {
  std::int64_t max_sessions = 0;
  std::int64_t max_grid_points = 0;
  std::int64_t max_resident_bytes = 0;
};

enum class AdmissionPolicy { Reject, Degrade, Queue };

struct SessionConfig {
  PoolLimits limits;
  AdmissionPolicy admission = AdmissionPolicy::Reject;
  std::chrono::milliseconds queue_timeout{1000};
  /// Snapshot cadence in accepted events per session; 0 disables the
  /// event-count trigger (snapshot_all and Close still persist).
  EventCount snapshot_every = 4096;
  /// Directory for *.wlcs session snapshots; empty = no persistence.
  std::string state_dir;
  /// PWL tiering: when compact_tier is set, every snapshot of a ready
  /// session also persists bounded-error compact γᵘ/γˡ curves fitted within
  /// `compact` (γᵘ rounded up, γˡ down — the tier can only be conservative).
  /// A zero budget is valid: the tier is then an exact PWL re-encoding.
  bool compact_tier = false;
  curve::CompactBudget compact;
  /// Diagnostics sink for snapshot/recovery I/O problems; may be null.
  std::ostream* log = nullptr;
};

class SessionManager {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SessionManager(SessionConfig cfg);

  /// Outcome of an Open: either an immediate reply, or Queued (the reply
  /// arrives later through pump_queue, matched by cookie).
  struct OpenOutcome {
    enum class Kind { Replied, Queued } kind = Kind::Replied;
    Reply reply;            ///< valid when kind == Replied
    std::uint64_t cookie = 0;  ///< valid when kind == Queued
  };

  OpenOutcome open(const OpenRequest& req, Clock::time_point now);
  Reply push(const PushRequest& req);
  Reply query(const QueryRequest& req) const;
  Reply close(const CloseRequest& req);
  PongReply stats() const;

  /// Installs a session handed over by a draining peer (Migrate frame). The
  /// snapshot bytes get the same strict decode as crash recovery; a corrupt
  /// blob is refused with an Err reply, a duplicate or invalid id with a
  /// Rejected, and an accepted session leases unconditionally (like
  /// recover()), is persisted into this daemon's state dir immediately, and
  /// is answered with MigrateOk{resume cursor}.
  Reply migrate_in(const MigrateRequest& req);

  /// Ids of all live sessions (id-sorted) — the drain loop's work list.
  std::vector<std::string> session_ids() const;

  /// Encodes one live session into migration/snapshot bytes. Returns false
  /// when the id is unknown.
  bool export_session_snapshot(const std::string& id, std::string* bytes) const;

  /// Forgets a session whose hand-off a peer acknowledged: releases its
  /// leases and removes the local snapshot file. The peer owns it now —
  /// leaving the local .wlcs behind would resurrect a stale duplicate on
  /// the next restart.
  void drop_migrated(const std::string& id);

  /// Admits queued Opens that now fit and expires those past their
  /// deadline. Returns one resolution per settled entry.
  struct QueueResolution {
    std::uint64_t cookie = 0;
    Reply reply;
  };
  std::vector<QueueResolution> pump_queue(Clock::time_point now);

  /// Drops a queued Open whose connection went away.
  void cancel_queued(std::uint64_t cookie);

  /// Persists every dirty session (no-op without a state_dir). The
  /// graceful-shutdown path; also called by the server on a timer.
  void snapshot_all();

  /// Loads every *.wlcs in state_dir into live sessions. Corrupt files are
  /// renamed to *.corrupt and counted, never half-loaded. Returns the
  /// number of sessions recovered.
  std::size_t recover();

  std::size_t live_sessions() const { return sessions_.size(); }
  std::int64_t queued_opens() const { return static_cast<std::int64_t>(queue_.size()); }

  /// One row per live session — what the Stats introspection frame reports.
  struct SessionInfo {
    std::string id;
    std::string tenant;
    std::int64_t grid_points = 0;   ///< tracked window sizes (pool grid cost)
    std::int64_t bytes_cost = 0;    ///< resident-byte lease
    EventCount events_seen = 0;     ///< stream position (accepted + quarantined)
    EventCount quarantined = 0;
    bool ready = false;             ///< smallest window has closed
    bool degraded = false;          ///< grid was coarsened at admission
    bool dirty = false;             ///< events accepted since the last snapshot
    bool memory_only = false;       ///< snapshots suspended after DiskFullError
  };
  std::vector<SessionInfo> describe_sessions() const;

  /// Tenant of a live session, empty when the id is unknown. Request-log
  /// enrichment for frames that carry only a session id.
  std::string tenant_of(const std::string& session_id) const;

 private:
  struct Session {
    std::string id;
    std::string tenant;
    workload::OnlineWorkloadExtractor extractor;
    std::vector<EventCount> ks_used;
    std::int64_t grid_cost = 0;
    std::int64_t bytes_cost = 0;
    EventCount events_since_snapshot = 0;
    bool dirty = false;
    bool degraded = false;
    /// Set on ENOSPC during a snapshot (DiskFullError): cadence snapshots
    /// are suspended for this session — analysis stays exact, only
    /// crash-durability is lost — and retried at snapshot_all/Close, which
    /// clears the flag when the disk has space again.
    bool memory_only = false;
    /// Compact PWL curves as of the last snapshot (or adopted from a
    /// recovered/migrated one after passing the dominance re-check).
    /// Recomputed deterministically at every snapshot, so a kill -9 between
    /// compaction and persist resumes bit-identically.
    std::optional<PwlTier> tier;

    explicit Session(workload::OnlineWorkloadExtractor ex) : extractor(std::move(ex)) {}
  };

  struct QueuedOpen {
    std::uint64_t cookie = 0;
    OpenRequest request;
    Clock::time_point deadline;
  };

  /// Immediate admission attempt (no queueing). Fills `reply` on success
  /// (Admit/Degrade) or failure (Reject); returns true when admitted.
  bool try_admit(const OpenRequest& req, bool allow_degrade, Reply* reply);

  Session* find(const std::string& id);
  const Session* find(const std::string& id) const;
  std::string snapshot_path(const std::string& id) const;
  void snapshot_session(Session& s);
  /// Fresh compact tier from the session's current curves; nullopt when
  /// tiering is off or the smallest window has not closed yet.
  std::optional<PwlTier> make_tier(const Session& s) const;
  /// Installs a persisted tier after re-verifying dominance (and the error
  /// budget) against the curves rebuilt from the extractor state. An
  /// unsound-but-well-formed tier is dropped and, when tiering is on,
  /// recomputed — never a reason to refuse the session. Counters:
  /// serve.compact.tier_{reused,rejected}, serve.compact.recomputes.
  void adopt_tier(Session& s, std::optional<PwlTier> tier);
  void tenant_count(const std::string& tenant, const char* what, std::int64_t delta);
  void log_line(const std::string& line);

  SessionConfig cfg_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::deque<QueuedOpen> queue_;
  std::uint64_t next_cookie_ = 1;
  std::int64_t grid_leased_ = 0;
  std::int64_t bytes_leased_ = 0;
  std::int64_t recovered_ = 0;
};

/// True iff `s` is a valid session id / tenant name: [A-Za-z0-9_.-],
/// 1..128 chars, no leading dot (ids double as snapshot file stems).
bool valid_identifier(const std::string& s);

/// Resident-byte estimate of a session tracking `ks` (normalized grid):
/// the demand ring (8 bytes per slot up to max k) plus the per-k
/// accumulator rows plus fixed overhead.
std::int64_t session_bytes_estimate(const std::vector<EventCount>& ks);

}  // namespace wlc::serve
