#include "serve/session.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <ostream>

#include "common/error.h"
#include "obs/obs.h"
#include "runtime/runtime.h"
#include "serve/snapshot.h"

namespace wlc::serve {

namespace {

/// Absolute sanity caps, independent of the configured pool: a hostile Open
/// must not make the daemon allocate a multi-gigabyte demand ring before
/// admission even runs.
constexpr EventCount kMaxWindowSize = 1 << 24;   ///< ring ≤ 128 MiB
constexpr std::size_t kMaxGridRequest = 1 << 20;

/// Hint for backpressure replies: capacity frees when sessions close, so
/// retrying after a beat may succeed.
constexpr std::int64_t kRetryHintMs = 250;

/// The extractor's own grid normalization (sorted, deduplicated, k = 1
/// added), done *before* construction so cost estimates precede any large
/// allocation.
std::vector<EventCount> normalize_grid(std::vector<EventCount> ks) {
  ks.push_back(1);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

Reply reject(RejectCode code, std::string reason, std::int64_t retry_after_ms) {
  return RejectReply{code, std::move(reason), retry_after_ms};
}

/// Session curves on the compaction grid: one sample per workload-curve
/// breakpoint (dt = 1, values in cycles — exact in double up to 2^53).
curve::DiscreteCurve index_curve(const std::vector<workload::WorkloadCurve::Point>& pts) {
  std::vector<double> v;
  v.reserve(pts.size());
  for (const auto& p : pts) v.push_back(static_cast<double>(p.second));
  return curve::DiscreteCurve(std::move(v), 1.0);
}

/// Semantic tier validation: the persisted compact curves must dominate
/// (γᵘ from above, γˡ from below) the curves rebuilt from the extractor
/// state at every breakpoint, within their recorded budget. Exact
/// comparisons — the tier writer recomputes deterministically, so a sound
/// tier passes bit-for-bit.
bool tier_sound(const PwlTier& tier, const workload::OnlineWorkloadExtractor& ex) {
  if (!ex.ready()) return false;
  const auto upts = ex.upper().points();
  const auto lpts = ex.lower().points();
  if (tier.upper.dense_size() != upts.size() || tier.lower.dense_size() != lpts.size())
    return false;
  if (tier.upper.dt() != 1.0 || tier.lower.dt() != 1.0) return false;
  for (std::size_t j = 0; j < upts.size(); ++j) {
    const double v = static_cast<double>(upts[j].second);
    const double c = tier.upper.eval_index(j);
    if (c < v || c - v > tier.upper.budget().at(v)) return false;
  }
  for (std::size_t j = 0; j < lpts.size(); ++j) {
    const double v = static_cast<double>(lpts[j].second);
    const double c = tier.lower.eval_index(j);
    if (c > v || v - c > tier.lower.budget().at(v)) return false;
  }
  return true;
}

}  // namespace

bool valid_identifier(const std::string& s) {
  if (s.empty() || s.size() > 128 || s.front() == '.') return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::int64_t session_bytes_estimate(const std::vector<EventCount>& ks) {
  const std::int64_t ring = 8 * ks.back();
  const auto rows = static_cast<std::int64_t>(ks.size());
  return ring + rows * (3 * 16 + 8 + 1) + 512;
}

SessionManager::SessionManager(SessionConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.state_dir, ec);
    if (ec) log_line("cannot create state dir '" + cfg_.state_dir + "': " + ec.message());
  }
}

SessionManager::Session* SessionManager::find(const std::string& id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const SessionManager::Session* SessionManager::find(const std::string& id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::string SessionManager::snapshot_path(const std::string& id) const {
  return cfg_.state_dir + "/" + id + ".wlcs";
}

void SessionManager::tenant_count(const std::string& tenant, const char* what,
                                  std::int64_t delta) {
  obs::registry().counter("serve.tenant." + tenant + "." + what).add(delta);
}

void SessionManager::log_line(const std::string& line) {
  if (cfg_.log != nullptr) *cfg_.log << "wlc_serve: " << line << "\n";
}

bool SessionManager::try_admit(const OpenRequest& req, bool allow_degrade, Reply* reply) {
  std::vector<EventCount> ks = normalize_grid(req.ks);
  bool degraded = false;

  if (cfg_.limits.max_sessions > 0 &&
      static_cast<std::int64_t>(sessions_.size()) >= cfg_.limits.max_sessions) {
    *reply = reject(RejectCode::SessionLimit,
                    "session pool exhausted: " + std::to_string(sessions_.size()) + " of " +
                        std::to_string(cfg_.limits.max_sessions) + " live sessions",
                    kRetryHintMs);
    return false;
  }

  const auto need = static_cast<std::int64_t>(ks.size());
  if (cfg_.limits.max_grid_points > 0 && grid_leased_ + need > cfg_.limits.max_grid_points) {
    const std::int64_t remaining = cfg_.limits.max_grid_points - grid_leased_;
    if (allow_degrade && remaining >= 2) {
      // Soundness-preserving degradation: the coarsened grid is a
      // subsequence keeping both endpoints (k = 1 anchor, exact range), so
      // the session's curves only loosen, never lie.
      ks = runtime::coarsen_grid(ks, remaining);
      degraded = true;
    } else {
      *reply = reject(RejectCode::GridLimit,
                      "grid pool exhausted: request needs " + std::to_string(need) +
                          " points, " + std::to_string(std::max<std::int64_t>(remaining, 0)) +
                          " of " + std::to_string(cfg_.limits.max_grid_points) + " remain",
                      kRetryHintMs);
      return false;
    }
  }

  const std::int64_t bytes = session_bytes_estimate(ks);
  if (cfg_.limits.max_resident_bytes > 0 &&
      bytes_leased_ + bytes > cfg_.limits.max_resident_bytes) {
    // Coarsening keeps max(k), so the ring — the dominant cost — cannot
    // shrink; degrading has no byte-axis path and this always rejects.
    *reply = reject(RejectCode::MemoryLimit,
                    "memory pool exhausted: session needs ~" + std::to_string(bytes) +
                        " bytes, " +
                        std::to_string(cfg_.limits.max_resident_bytes - bytes_leased_) +
                        " of " + std::to_string(cfg_.limits.max_resident_bytes) + " remain",
                    kRetryHintMs);
    return false;
  }

  auto session = std::make_unique<Session>(workload::OnlineWorkloadExtractor(ks));
  session->id = req.session_id;
  session->tenant = req.tenant;
  session->ks_used = std::move(ks);
  session->grid_cost = static_cast<std::int64_t>(session->ks_used.size());
  session->bytes_cost = bytes;
  session->degraded = degraded;
  grid_leased_ += session->grid_cost;
  bytes_leased_ += session->bytes_cost;

  OpenReply ok;
  ok.ks_used = session->ks_used;
  ok.events_seen = 0;
  ok.resumed = false;
  ok.degraded = degraded;

  Session& ref = *session;
  sessions_[req.session_id] = std::move(session);
  WLC_COUNTER_ADD("serve.sessions.admitted", 1);
  if (degraded) WLC_COUNTER_ADD("serve.sessions.degraded", 1);
  WLC_GAUGE_SET("serve.sessions.live", static_cast<std::int64_t>(sessions_.size()));
  WLC_GAUGE_SET("serve.pool.grid_leased", grid_leased_);
  WLC_GAUGE_SET("serve.pool.bytes_leased", bytes_leased_);
  tenant_count(req.tenant, "admitted", 1);
  if (degraded) tenant_count(req.tenant, "degraded", 1);
  // Snapshot-on-admit: makes the fresh session durable immediately and
  // overwrites any stale snapshot left by an earlier incarnation of the id.
  if (!cfg_.state_dir.empty()) snapshot_session(ref);

  *reply = std::move(ok);
  return true;
}

SessionManager::OpenOutcome SessionManager::open(const OpenRequest& req, Clock::time_point now) {
  OpenOutcome out;
  if (req.protocol_version != kProtocolVersion) {
    out.reply = reject(RejectCode::BadRequest,
                       "protocol version " + std::to_string(req.protocol_version) +
                           " not supported (daemon speaks " +
                           std::to_string(kProtocolVersion) + ")",
                       0);
    return out;
  }
  if (!valid_identifier(req.session_id)) {
    out.reply = reject(RejectCode::BadRequest,
                       "invalid session id (want [A-Za-z0-9_.-]{1,128}, no leading dot)", 0);
    return out;
  }
  if (!valid_identifier(req.tenant)) {
    out.reply = reject(RejectCode::BadRequest, "invalid tenant name", 0);
    return out;
  }
  if (req.ks.empty() || req.ks.size() > kMaxGridRequest) {
    out.reply = reject(RejectCode::BadRequest,
                       "grid must have 1.." + std::to_string(kMaxGridRequest) + " window sizes",
                       0);
    return out;
  }
  for (EventCount k : req.ks) {
    if (k < 1 || k > kMaxWindowSize) {
      out.reply = reject(RejectCode::BadRequest,
                         "window sizes must be in 1.." + std::to_string(kMaxWindowSize), 0);
      return out;
    }
  }

  if (Session* s = find(req.session_id)) {
    // Resume: the id is live (or was recovered at startup). The session
    // keeps its own grid; the reply tells the client where to continue.
    if (s->tenant != req.tenant) {
      out.reply = reject(RejectCode::BadRequest,
                         "session '" + req.session_id + "' belongs to tenant '" + s->tenant +
                             "', not '" + req.tenant + "'",
                         0);
      return out;
    }
    OpenReply ok;
    ok.ks_used = s->ks_used;
    // The resume cursor is the *stream position*: demands consumed,
    // including quarantined ones. Resuming at events_seen() alone would
    // make a client re-send (and the extractor re-quarantine) every
    // invalid demand in the gap — diverging from the uninterrupted run.
    ok.events_seen = s->extractor.events_seen() + s->extractor.health().quarantined;
    ok.resumed = true;
    ok.degraded = s->degraded;
    WLC_COUNTER_ADD("serve.sessions.resumed", 1);
    out.reply = std::move(ok);
    return out;
  }

  const bool allow_degrade = cfg_.admission == AdmissionPolicy::Degrade;
  if (try_admit(req, allow_degrade, &out.reply)) return out;

  if (cfg_.admission == AdmissionPolicy::Queue &&
      std::get<RejectReply>(out.reply).code != RejectCode::BadRequest) {
    out.kind = OpenOutcome::Kind::Queued;
    out.cookie = next_cookie_++;
    queue_.push_back({out.cookie, req, now + cfg_.queue_timeout});
    WLC_COUNTER_ADD("serve.sessions.queued", 1);
    return out;
  }

  WLC_COUNTER_ADD("serve.sessions.rejected", 1);
  tenant_count(req.tenant, "rejected", 1);
  return out;
}

Reply SessionManager::push(const PushRequest& req) {
  Session* s = find(req.session_id);
  if (s == nullptr)
    return reject(RejectCode::UnknownSession, "no session '" + req.session_id + "'", 0);
  s->extractor.try_push_all(req.demands);
  const auto n = static_cast<std::int64_t>(req.demands.size());
  s->dirty = true;
  s->events_since_snapshot += n;
  WLC_COUNTER_ADD("serve.events.pushed", n);
  tenant_count(s->tenant, "events", n);
  if (!cfg_.state_dir.empty() && cfg_.snapshot_every > 0 && !s->memory_only &&
      s->events_since_snapshot >= cfg_.snapshot_every)
    snapshot_session(*s);
  const auto health = s->extractor.health();
  PushReply ok;
  ok.events_seen = s->extractor.events_seen() + health.quarantined;  // stream position
  ok.quarantined = health.quarantined;
  return ok;
}

Reply SessionManager::query(const QueryRequest& req) const {
  const Session* s = find(req.session_id);
  if (s == nullptr)
    return reject(RejectCode::UnknownSession, "no session '" + req.session_id + "'", 0);
  CurveReply rep;
  const auto health = s->extractor.health();
  rep.accepted = health.accepted;
  rep.quarantined = health.quarantined;
  rep.windows_reset = health.windows_reset;
  rep.saturated = health.saturated;
  rep.ready = s->extractor.ready();
  if (rep.ready) {
    rep.upper = s->extractor.upper().points();
    rep.lower = s->extractor.lower().points();
  }
  return rep;
}

Reply SessionManager::close(const CloseRequest& req) {
  Session* s = find(req.session_id);
  if (s == nullptr)
    return reject(RejectCode::UnknownSession, "no session '" + req.session_id + "'", 0);
  CloseReply rep;
  rep.events_seen = s->extractor.events_seen() + s->extractor.health().quarantined;
  if (!cfg_.state_dir.empty()) {
    if (req.discard_snapshot)
      std::remove(snapshot_path(s->id).c_str());
    else
      snapshot_session(*s);
  }
  grid_leased_ -= s->grid_cost;
  bytes_leased_ -= s->bytes_cost;
  sessions_.erase(req.session_id);
  WLC_COUNTER_ADD("serve.sessions.closed", 1);
  WLC_GAUGE_SET("serve.sessions.live", static_cast<std::int64_t>(sessions_.size()));
  WLC_GAUGE_SET("serve.pool.grid_leased", grid_leased_);
  WLC_GAUGE_SET("serve.pool.bytes_leased", bytes_leased_);
  return rep;
}

PongReply SessionManager::stats() const {
  PongReply p;
  p.live_sessions = static_cast<std::int64_t>(sessions_.size());
  p.max_sessions = cfg_.limits.max_sessions;
  p.grid_leased = grid_leased_;
  p.max_grid_points = cfg_.limits.max_grid_points;
  p.bytes_leased = bytes_leased_;
  p.max_resident_bytes = cfg_.limits.max_resident_bytes;
  p.queued_opens = queued_opens();
  p.recovered_sessions = recovered_;
  return p;
}

std::vector<SessionManager::SessionInfo> SessionManager::describe_sessions() const {
  std::vector<SessionInfo> rows;
  rows.reserve(sessions_.size());
  // sessions_ is an ordered map, so the rows come out id-sorted — the Stats
  // document is stable across polls of an unchanged daemon.
  for (const auto& [id, s] : sessions_) {
    SessionInfo row;
    row.id = id;
    row.tenant = s->tenant;
    row.grid_points = s->grid_cost;
    row.bytes_cost = s->bytes_cost;
    const auto health = s->extractor.health();
    row.events_seen = s->extractor.events_seen() + health.quarantined;
    row.quarantined = health.quarantined;
    row.ready = s->extractor.ready();
    row.degraded = s->degraded;
    row.dirty = s->dirty;
    row.memory_only = s->memory_only;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string SessionManager::tenant_of(const std::string& session_id) const {
  const Session* s = find(session_id);
  return s != nullptr ? s->tenant : std::string();
}

Reply SessionManager::migrate_in(const MigrateRequest& req) {
  SessionSnapshot snap;
  std::unique_ptr<Session> session;
  try {
    // Same strict path as crash recovery: decode validates magic, version,
    // CRC, payload structure and extractor-state consistency.
    snap = decode_snapshot(req.snapshot);
    session =
        std::make_unique<Session>(workload::OnlineWorkloadExtractor::from_state(snap.extractor));
  } catch (const wlc::Error& e) {
    WLC_COUNTER_ADD("serve.migrate.refused", 1);
    log_line("migrate refused: snapshot rejected (" + std::string(e.kind()) +
             "): " + e.message());
    return ErrReply{"migrate refused: snapshot rejected (" + std::string(e.kind()) +
                    "): " + e.message()};
  }
  if (!valid_identifier(snap.session_id) || !valid_identifier(snap.tenant)) {
    WLC_COUNTER_ADD("serve.migrate.refused", 1);
    return reject(RejectCode::BadRequest, "migrate refused: invalid session id or tenant", 0);
  }
  if (find(snap.session_id) != nullptr) {
    WLC_COUNTER_ADD("serve.migrate.refused", 1);
    return reject(RejectCode::BadRequest,
                  "migrate refused: session '" + snap.session_id + "' is already live here", 0);
  }
  session->id = snap.session_id;
  session->tenant = snap.tenant;
  session->ks_used = snap.extractor.ks;
  session->grid_cost = static_cast<std::int64_t>(session->ks_used.size());
  session->bytes_cost = session_bytes_estimate(session->ks_used);
  adopt_tier(*session, std::move(snap.tier));
  // Like recovery: the session was already admitted (by the origin daemon),
  // so it re-leases unconditionally rather than being re-subjected to this
  // pool's admission — dropping an accepted session's guarantees mid-flight
  // would be worse than a transient overcommit.
  grid_leased_ += session->grid_cost;
  bytes_leased_ += session->bytes_cost;
  Session& ref = *session;
  sessions_[ref.id] = std::move(session);
  tenant_count(ref.tenant, "migrated_in", 1);
  WLC_COUNTER_ADD("serve.sessions.migrated_in", 1);
  WLC_GAUGE_SET("serve.sessions.live", static_cast<std::int64_t>(sessions_.size()));
  WLC_GAUGE_SET("serve.pool.grid_leased", grid_leased_);
  WLC_GAUGE_SET("serve.pool.bytes_leased", bytes_leased_);
  // Persist before acknowledging: once the origin sees MigrateOk it deletes
  // its copy, so this daemon must be able to survive its own crash from
  // here on. A disk-full receiver still accepts (memory-only degrade).
  if (!cfg_.state_dir.empty()) snapshot_session(ref);
  log_line("session '" + ref.id + "' migrated in (cursor " +
           std::to_string(ref.extractor.events_seen() + ref.extractor.health().quarantined) +
           ")");
  MigrateOkReply ok;
  ok.events_seen = ref.extractor.events_seen() + ref.extractor.health().quarantined;
  return ok;
}

std::vector<std::string> SessionManager::session_ids() const {
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) ids.push_back(id);
  return ids;
}

bool SessionManager::export_session_snapshot(const std::string& id, std::string* bytes) const {
  const Session* s = find(id);
  if (s == nullptr) return false;
  SessionSnapshot snap;
  snap.session_id = s->id;
  snap.tenant = s->tenant;
  snap.extractor = s->extractor.export_state();
  snap.tier = s->tier.has_value() ? s->tier : make_tier(*s);
  *bytes = encode_snapshot(snap);
  return true;
}

void SessionManager::drop_migrated(const std::string& id) {
  Session* s = find(id);
  if (s == nullptr) return;
  if (!cfg_.state_dir.empty()) std::remove(snapshot_path(id).c_str());
  grid_leased_ -= s->grid_cost;
  bytes_leased_ -= s->bytes_cost;
  tenant_count(s->tenant, "migrated_out", 1);
  sessions_.erase(id);
  WLC_COUNTER_ADD("serve.sessions.migrated_out", 1);
  WLC_GAUGE_SET("serve.sessions.live", static_cast<std::int64_t>(sessions_.size()));
  WLC_GAUGE_SET("serve.pool.grid_leased", grid_leased_);
  WLC_GAUGE_SET("serve.pool.bytes_leased", bytes_leased_);
}

std::vector<SessionManager::QueueResolution> SessionManager::pump_queue(Clock::time_point now) {
  std::vector<QueueResolution> resolved;
  // Strict FIFO: once the head does not fit, later entries only get their
  // deadlines checked — no queue-jumping, no starvation of large requests.
  bool blocked = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    Reply reply;
    if (!blocked && try_admit(it->request, /*allow_degrade=*/false, &reply)) {
      resolved.push_back({it->cookie, std::move(reply)});
      it = queue_.erase(it);
      continue;
    }
    blocked = true;
    if (now >= it->deadline) {
      WLC_COUNTER_ADD("serve.sessions.queue_timeouts", 1);
      tenant_count(it->request.tenant, "rejected", 1);
      resolved.push_back(
          {it->cookie, reject(RejectCode::QueueTimeout,
                              "queued open timed out after " +
                                  std::to_string(cfg_.queue_timeout.count()) + " ms",
                              kRetryHintMs)});
      it = queue_.erase(it);
      continue;
    }
    ++it;
  }
  return resolved;
}

void SessionManager::cancel_queued(std::uint64_t cookie) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->cookie == cookie) {
      queue_.erase(it);
      return;
    }
  }
}

std::optional<PwlTier> SessionManager::make_tier(const Session& s) const {
  if (!cfg_.compact_tier || !s.extractor.ready()) return std::nullopt;
  const curve::DiscreteCurve upper = index_curve(s.extractor.upper().points());
  const curve::DiscreteCurve lower = index_curve(s.extractor.lower().points());
  return PwlTier{curve::CompactCurve::compact_upper(upper, cfg_.compact),
                 curve::CompactCurve::compact_lower(lower, cfg_.compact)};
}

void SessionManager::adopt_tier(Session& s, std::optional<PwlTier> tier) {
  if (!cfg_.compact_tier) {
    // Tiering is off in this daemon: a persisted tier is neither validated
    // nor carried forward (the next snapshot would drop it anyway).
    s.tier.reset();
    return;
  }
  if (tier.has_value()) {
    if (tier_sound(*tier, s.extractor)) {
      WLC_COUNTER_ADD("serve.compact.tier_reused", 1);
      s.tier = std::move(tier);
      return;
    }
    WLC_COUNTER_ADD("serve.compact.tier_rejected", 1);
    log_line("session '" + s.id +
             "': persisted pwl tier failed the dominance re-check, recomputing");
  }
  s.tier = make_tier(s);
  if (tier.has_value() && s.tier.has_value()) WLC_COUNTER_ADD("serve.compact.recomputes", 1);
}

void SessionManager::snapshot_session(Session& s) {
  const auto start = std::chrono::steady_clock::now();
  // Recompute the tier from the live curves at every persist — the compact
  // fit is deterministic, so two snapshots of the same stream position
  // carry byte-identical tiers (what the kill -9 soak asserts).
  s.tier = make_tier(s);
  SessionSnapshot snap;
  snap.session_id = s.id;
  snap.tenant = s.tenant;
  snap.extractor = s.extractor.export_state();
  snap.tier = s.tier;
  if (snap.tier.has_value()) WLC_COUNTER_ADD("serve.compact.tier_written", 1);
  std::string error;
  int write_errno = 0;
  if (!write_snapshot_file(snapshot_path(s.id), snap, &error, &write_errno)) {
    WLC_COUNTER_ADD("serve.snapshots.failed", 1);
    if (write_errno == ENOSPC || write_errno == EDQUOT) {
      // Disk full is the one I/O failure with a sound degraded mode:
      // suspend this session's cadence snapshots (analysis stays exact,
      // only crash-durability is lost) instead of hammering a full disk —
      // snapshot_all and Close keep retrying, and success re-arms.
      WLC_COUNTER_ADD("serve.snapshots.disk_full", 1);
      if (!s.memory_only) {
        s.memory_only = true;
        WLC_COUNTER_ADD("serve.sessions.memory_only", 1);
        const DiskFullError e("session degraded to in-memory-only: " + error, s.id);
        log_line(std::string(e.kind()) + ": " + e.message());
      }
    } else {
      log_line("snapshot of session '" + s.id + "' failed: " + error);
    }
    return;
  }
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  WLC_COUNTER_ADD("serve.snapshots.written", 1);
  WLC_HISTOGRAM_OBSERVE("serve.snapshot_us", us);
  s.events_since_snapshot = 0;
  s.dirty = false;
  if (s.memory_only) {
    s.memory_only = false;
    log_line("session '" + s.id + "' snapshots re-enabled (disk has space again)");
  }
}

void SessionManager::snapshot_all() {
  if (cfg_.state_dir.empty()) return;
  for (auto& [id, s] : sessions_)
    if (s->dirty) snapshot_session(*s);
}

std::size_t SessionManager::recover() {
  if (cfg_.state_dir.empty()) return 0;
  std::size_t loaded = 0;
  std::error_code ec;
  std::filesystem::directory_iterator dir(cfg_.state_dir, ec);
  if (ec) {
    log_line("cannot scan state dir '" + cfg_.state_dir + "': " + ec.message());
    return 0;
  }
  // Deterministic recovery order (directory iteration order is not).
  std::vector<std::filesystem::path> files;
  for (const auto& entry : dir)
    if (entry.is_regular_file(ec) && entry.path().extension() == ".wlcs")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    SessionSnapshot snap;
    std::string error;
    try {
      if (!read_snapshot_file(path.string(), &snap, &error)) {
        log_line("cannot read snapshot " + path.string() + ": " + error);
        WLC_COUNTER_ADD("serve.sessions.recover_failed", 1);
        continue;
      }
      if (!valid_identifier(snap.session_id) || sessions_.count(snap.session_id) > 0) {
        throw ParseError("snapshot carries an invalid or duplicate session id",
                         snap.session_id, 0, 0, __FILE__, __LINE__);
      }
      auto session = std::make_unique<Session>(
          workload::OnlineWorkloadExtractor::from_state(snap.extractor));
      session->id = snap.session_id;
      session->tenant = snap.tenant;
      session->ks_used = snap.extractor.ks;
      session->grid_cost = static_cast<std::int64_t>(session->ks_used.size());
      session->bytes_cost = session_bytes_estimate(session->ks_used);
      // Recovered sessions were admitted before the crash; they re-lease
      // unconditionally (the pool may transiently overcommit until some
      // close — preferable to dropping accepted sessions' guarantees).
      grid_leased_ += session->grid_cost;
      bytes_leased_ += session->bytes_cost;
      tenant_count(session->tenant, "recovered", 1);
      adopt_tier(*session, std::move(snap.tier));
      sessions_[snap.session_id] = std::move(session);
      ++recovered_;
      ++loaded;
    } catch (const wlc::Error& e) {
      // Strictly rejected (truncated / bit-flipped / version-skewed):
      // quarantine the file so the next restart is not stuck on it too.
      WLC_COUNTER_ADD("serve.sessions.recover_failed", 1);
      const std::string corrupt = path.string() + ".corrupt";
      std::rename(path.string().c_str(), corrupt.c_str());
      log_line("snapshot " + path.string() + " rejected (" + e.kind() +
               "), quarantined as .corrupt: " + e.message());
    }
  }
  WLC_COUNTER_ADD("serve.sessions.recovered", static_cast<std::int64_t>(loaded));
  WLC_GAUGE_SET("serve.sessions.live", static_cast<std::int64_t>(sessions_.size()));
  WLC_GAUGE_SET("serve.pool.grid_leased", grid_leased_);
  WLC_GAUGE_SET("serve.pool.bytes_leased", bytes_leased_);
  return loaded;
}

}  // namespace wlc::serve
