// Crash-safe session snapshots for the serve daemon.
//
// A snapshot captures one analysis session completely: its identity
// (session id, tenant) and the full OnlineExtractorState, so a daemon
// restarted after SIGKILL rebuilds the session bit-identically and the
// client only re-sends demands from the snapshotted position onward.
//
// On-disk layout (all integers little-endian):
//
//   offset  size  field
//        0     8  magic "WLCSNAP\0"
//        8     4  format version (1 or 2; new files are written as 2)
//       12     8  payload size in bytes
//       20     4  CRC-32 of the payload bytes
//       24     n  payload (wire.h encoding of SessionSnapshot)
//
// Version 2 appends an optional PWL tier to the payload: the session's
// bounded-error compact γᵘ/γˡ curves (curve::CompactCurve over the grid of
// workload-curve breakpoint indices, dt = 1). The tier block is itself
// versioned, length-prefixed and CRC'd, so tier corruption is detected
// independently of the outer checksum and a version-skewed tier is refused
// rather than misread. Structural tier corruption throws ParseError like
// any other payload damage; *semantic* tier validation (dominance against
// the curves rebuilt from the extractor state) is the session layer's job —
// an unsound-but-well-formed tier is dropped and recomputed there, never a
// reason to lose the whole session.
//
// Validation on load is *strict by construction*: wrong magic, unknown
// version, a size field disagreeing with the actual byte count, a checksum
// mismatch, a truncated payload, an over-long length prefix inside the
// payload, trailing bytes, or a structurally inconsistent extractor state
// all throw wlc::ParseError. A corrupted snapshot can be refused; it can
// never be half-loaded or provoke UB (fault-injection tests flip, truncate
// and version-skew real snapshots to pin this).
//
// Files are written via common::atomic_write_file (temp + fsync + atomic
// rename), so a crash mid-write leaves the previous snapshot intact; there
// is no torn-file state to validate against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "curve/compact.h"
#include "workload/online_extract.h"

namespace wlc::serve {

inline constexpr std::string_view kSnapshotMagic{"WLCSNAP\0", 8};
inline constexpr std::uint32_t kSnapshotVersion = 2;
/// Oldest format this build still decodes (v1 = no PWL tier).
inline constexpr std::uint32_t kSnapshotMinVersion = 1;
inline constexpr std::uint32_t kPwlTierVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 24;

/// Compact PWL forms of a session's workload curves, over the grid of
/// breakpoint indices (dt = 1, values in cycles). upper is rounded Up,
/// lower Down — decode enforces the pairing.
struct PwlTier {
  curve::CompactCurve upper;
  curve::CompactCurve lower;
};

/// One persisted session.
struct SessionSnapshot {
  std::string session_id;
  std::string tenant;
  workload::OnlineExtractorState extractor;
  /// Present when the daemon runs with a compaction budget and the session
  /// had closed its smallest window at snapshot time.
  std::optional<PwlTier> tier;
};

/// Serializes header + payload into one byte string.
std::string encode_snapshot(const SessionSnapshot& snap);

/// Strictly validates and decodes bytes produced by encode_snapshot.
/// Throws wlc::ParseError on any corruption (see header comment).
SessionSnapshot decode_snapshot(std::string_view bytes);

/// Writes `snap` to `path` atomically (temp + fsync + rename). Throws
/// wlc::Error-derived exceptions never; returns false with `*error` filled
/// on I/O failure. `*errno_out` (when non-null) receives the failing
/// step's errno — the daemon keys its ENOSPC → in-memory-only degradation
/// off it.
bool write_snapshot_file(const std::string& path, const SessionSnapshot& snap,
                         std::string* error = nullptr, int* errno_out = nullptr);

/// Reads and strictly validates a snapshot file. Throws wlc::ParseError on
/// corruption; returns false with `*error` filled when the file cannot be
/// read at all.
bool read_snapshot_file(const std::string& path, SessionSnapshot* snap,
                        std::string* error = nullptr);

}  // namespace wlc::serve
