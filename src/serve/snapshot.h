// Crash-safe session snapshots for the serve daemon.
//
// A snapshot captures one analysis session completely: its identity
// (session id, tenant) and the full OnlineExtractorState, so a daemon
// restarted after SIGKILL rebuilds the session bit-identically and the
// client only re-sends demands from the snapshotted position onward.
//
// On-disk layout (all integers little-endian):
//
//   offset  size  field
//        0     8  magic "WLCSNAP\0"
//        8     4  format version (currently 1)
//       12     8  payload size in bytes
//       20     4  CRC-32 of the payload bytes
//       24     n  payload (wire.h encoding of SessionSnapshot)
//
// Validation on load is *strict by construction*: wrong magic, unknown
// version, a size field disagreeing with the actual byte count, a checksum
// mismatch, a truncated payload, an over-long length prefix inside the
// payload, trailing bytes, or a structurally inconsistent extractor state
// all throw wlc::ParseError. A corrupted snapshot can be refused; it can
// never be half-loaded or provoke UB (fault-injection tests flip, truncate
// and version-skew real snapshots to pin this).
//
// Files are written via common::atomic_write_file (temp + fsync + atomic
// rename), so a crash mid-write leaves the previous snapshot intact; there
// is no torn-file state to validate against.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "workload/online_extract.h"

namespace wlc::serve {

inline constexpr std::string_view kSnapshotMagic{"WLCSNAP\0", 8};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 24;

/// One persisted session.
struct SessionSnapshot {
  std::string session_id;
  std::string tenant;
  workload::OnlineExtractorState extractor;
};

/// Serializes header + payload into one byte string.
std::string encode_snapshot(const SessionSnapshot& snap);

/// Strictly validates and decodes bytes produced by encode_snapshot.
/// Throws wlc::ParseError on any corruption (see header comment).
SessionSnapshot decode_snapshot(std::string_view bytes);

/// Writes `snap` to `path` atomically (temp + fsync + rename). Throws
/// wlc::Error-derived exceptions never; returns false with `*error` filled
/// on I/O failure. `*errno_out` (when non-null) receives the failing
/// step's errno — the daemon keys its ENOSPC → in-memory-only degradation
/// off it.
bool write_snapshot_file(const std::string& path, const SessionSnapshot& snap,
                         std::string* error = nullptr, int* errno_out = nullptr);

/// Reads and strictly validates a snapshot file. Throws wlc::ParseError on
/// corruption; returns false with `*error` filled when the file cannot be
/// read at all.
bool read_snapshot_file(const std::string& path, SessionSnapshot* snap,
                        std::string* error = nullptr);

}  // namespace wlc::serve
