// Binary wire encoding shared by the serve protocol and the session
// snapshot format: little-endian fixed-width scalars, length-prefixed
// strings and vectors, and a CRC-32 for payload integrity.
//
// The shape follows the serialize(Archive&, T&) idiom (one function per
// type, reading and writing driven by the same field order), specialized to
// the two archives this repo needs: Writer appends to a byte string, Reader
// consumes a byte view with *strict* bounds checking. Every Reader
// primitive throws wlc::ParseError on underrun, and every length prefix is
// validated against the bytes actually remaining before anything is
// allocated — a hostile or bit-flipped length field can therefore neither
// over-allocate nor read out of bounds; it fails the same way a truncated
// buffer does. Decoders finish with expect_done(), so trailing garbage is
// an error too, never silently ignored.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace wlc::serve {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `bytes`.
/// Delegates to common::crc32 — the same checksum the columnar trace format
/// uses, so snapshot bytes written before the extraction-engine refactor
/// verify unchanged.
std::uint32_t crc32(std::string_view bytes);

/// Append-only encoder. All scalars little-endian.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { append(&v, sizeof v); }

  /// u32 length + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  /// u32 count + count i64 values.
  void vec_i64(const std::vector<std::int64_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::int64_t x : v) i64(x);
  }

  /// u32 count + count raw bytes.
  void vec_u8(const std::vector<std::uint8_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint8_t x : v) u8(x);
  }

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void append(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }

  std::string out_;
};

/// Bounds-checked decoder over a borrowed byte view. `what` names the
/// enclosing format ("snapshot", "request") in error messages.
class Reader {
 public:
  Reader(std::string_view data, const char* what) : data_(data), what_(what) {}

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v;
    copy(&v, sizeof v, "u32");
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    copy(&v, sizeof v, "u64");
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    double v;
    copy(&v, sizeof v, "f64");
    return v;
  }

  std::string str() {
    const std::size_t n = checked_count(1, "string");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::vector<std::int64_t> vec_i64() {
    const std::size_t n = checked_count(8, "i64 vector");
    std::vector<std::int64_t> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(i64());
    return v;
  }

  std::vector<std::uint8_t> vec_u8() {
    const std::size_t n = checked_count(1, "u8 vector");
    std::vector<std::uint8_t> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(u8());
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws unless every byte was consumed — trailing garbage is a fault.
  void expect_done() const {
    if (pos_ != data_.size())
      throw ParseError(std::string(what_) + " has " + std::to_string(remaining()) +
                           " trailing bytes after the last field",
                       "", 0, 0, __FILE__, __LINE__);
  }

 private:
  void need(std::size_t n, const char* field) const {
    if (remaining() < n)
      throw ParseError(std::string(what_) + " truncated: need " + std::to_string(n) +
                           " bytes for " + field + ", have " + std::to_string(remaining()),
                       "", 0, 0, __FILE__, __LINE__);
  }

  void copy(void* p, std::size_t n, const char* field) {
    need(n, field);
    data_.copy(static_cast<char*>(p), n, pos_);
    pos_ += n;
  }

  /// Reads a u32 element count and verifies count * elem_size fits the
  /// remaining bytes *before* any allocation.
  std::size_t checked_count(std::size_t elem_size, const char* field) {
    const std::uint32_t n = u32();
    if (static_cast<std::uint64_t>(n) * elem_size > remaining())
      throw ParseError(std::string(what_) + " corrupt: " + field + " claims " +
                           std::to_string(n) + " elements but only " +
                           std::to_string(remaining()) + " bytes remain",
                       std::to_string(n), 0, 0, __FILE__, __LINE__);
    return n;
  }

  std::string_view data_;
  const char* what_;
  std::size_t pos_ = 0;
};

}  // namespace wlc::serve
