// Structured request log of the serve reactor: one JSONL record per handled
// frame — who (tenant, session), what (opcode, payload bytes), how it went
// (admission outcome, degradation) and how long it took (latency µs).
//
// Write discipline. Records are built fully in memory (newline included)
// and appended with a single write(2) on an O_APPEND descriptor. A record
// therefore either reaches the file whole or not at all under kill -9 — the
// soak harness asserts exactly that (last line absent or valid JSON). This
// is the append-side analogue of common::atomic_write_file's
// temp+fsync+rename discipline: that one makes whole *files* atomic, this
// makes individual *records* atomic on a file that must survive the writer.
//
// Rotation. When a record would push the file past max_bytes, the current
// file is renamed to "<path>.1" (replacing any previous rotation) and a
// fresh file is opened — bounded disk, and the tail of history survives one
// rotation for post-mortems.
//
// Threshold mode. slow_us > 0 keeps only records at or above the threshold
// — the "log only outliers" soak configuration, cheap enough to leave on in
// production.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace wlc::serve {

struct RequestLogConfig {
  std::string path;                        ///< empty = logging disabled
  std::int64_t slow_us = 0;                ///< 0 = every frame; else latency floor
  std::int64_t max_bytes = 64ll << 20;     ///< rotate to <path>.1 past this size
};

class RequestLog {
 public:
  RequestLog() = default;
  /// Opens (creating if needed) cfg.path for appending. I/O problems are
  /// reported to `diag` (may be null) and disable the log — a broken log
  /// never takes the daemon down.
  RequestLog(RequestLogConfig cfg, std::ostream* diag);
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  bool enabled() const { return fd_ >= 0; }

  struct Record {
    std::int64_t ts_us = 0;       ///< wall clock, microseconds since the epoch
    std::string session;          ///< empty for Ping/Stats and undecodable frames
    std::string tenant;           ///< empty when unknown
    const char* opcode = "";      ///< "open", "push", ..., "invalid"
    std::int64_t bytes = 0;       ///< frame payload size
    std::int64_t latency_us = 0;  ///< decode + handle, microseconds
    std::string outcome;          ///< "ok", "queued", "rejected:<code>", "err"
    bool degraded = false;        ///< admission coarsened the grid
  };

  /// Appends one record (subject to the slow_us threshold). One write(2)
  /// per record; never throws.
  void append(const Record& rec);

 private:
  void rotate();
  void report(const std::string& what);

  RequestLogConfig cfg_;
  std::ostream* diag_ = nullptr;
  int fd_ = -1;
  std::int64_t size_ = 0;
};

}  // namespace wlc::serve
