#include "curve/op_cache.h"

#include <bit>
#include <cstring>

namespace wlc::curve {

namespace {

// splitmix64-style word mixer; two independently seeded lanes give the
// 128-bit fingerprint. Inputs are the raw IEEE-754 bit patterns — two curves
// fingerprint equal iff they are bit-identical (including -0.0 vs 0.0 and
// NaN payloads), which is exactly the equivalence the bit-identity contract
// of the engine needs.
std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t fingerprint(const DiscreteCurve& c, std::uint64_t seed) {
  std::uint64_t h = mix(seed, c.size());
  h = mix(h, std::bit_cast<std::uint64_t>(c.dt()));
  for (double v : c.values()) h = mix(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

std::size_t entry_bytes(std::size_t n) {
  // Sample storage plus a flat estimate of list/map node overhead.
  return n * sizeof(double) + 128;
}

// Compact fingerprints cover everything that identifies the PWL form —
// knot bytes, grid, rounding side, budget — with a domain-separation word
// so a compact key can never collide with the dense key of the same curve.
std::uint64_t fingerprint_compact(const CompactCurve& c, std::uint64_t seed) {
  std::uint64_t h = mix(seed, 0xC0339AC7C0339AC7ULL);
  h = mix(h, c.dense_size());
  h = mix(h, std::bit_cast<std::uint64_t>(c.dt()));
  h = mix(h, static_cast<std::uint64_t>(c.rounding()));
  h = mix(h, std::bit_cast<std::uint64_t>(c.budget().eps_abs));
  h = mix(h, std::bit_cast<std::uint64_t>(c.budget().eps_rel));
  for (const CompactCurve::Knot& k : c.knots()) {
    h = mix(h, k.i);
    h = mix(h, std::bit_cast<std::uint64_t>(k.y));
    h = mix(h, std::bit_cast<std::uint64_t>(k.slope));
  }
  return h;
}

std::size_t compact_entry_bytes(std::size_t knot_count) {
  return knot_count * sizeof(CompactCurve::Knot) + 192;
}

}  // namespace

std::size_t OpCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = k.fp_f_lo;
  h = mix(h, k.fp_g_lo);
  h = mix(h, k.op);
  return static_cast<std::size_t>(h);
}

OpCache::Key OpCache::make_key(CurveOp op, const DiscreteCurve& f,
                               const DiscreteCurve& g) {
  return Key{fingerprint(f, 0x1234567890abcdefULL), fingerprint(f, 0xfedcba0987654321ULL),
             fingerprint(g, 0x1234567890abcdefULL), fingerprint(g, 0xfedcba0987654321ULL),
             static_cast<std::uint8_t>(op)};
}

OpCache::Key OpCache::make_compact_key(CurveOp op, const CompactCurve& f,
                                       const CompactCurve& g) {
  return Key{fingerprint_compact(f, 0x1234567890abcdefULL),
             fingerprint_compact(f, 0xfedcba0987654321ULL),
             fingerprint_compact(g, 0x1234567890abcdefULL),
             fingerprint_compact(g, 0xfedcba0987654321ULL),
             static_cast<std::uint8_t>(op)};
}

OpCache::OpCache(std::size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

void OpCache::set_capacity_bytes(std::size_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = capacity_bytes;
  evict_to_fit_locked(0);
}

std::size_t OpCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

std::optional<DiscreteCurve> OpCache::lookup(CurveOp op, const DiscreteCurve& f,
                                             const DiscreteCurve& g) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_bytes_ == 0) {
    ++misses_;
    return std::nullopt;
  }
  const auto it = index_.find(make_key(op, f, g));
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return DiscreteCurve(it->second->values, it->second->dt);
}

std::size_t OpCache::insert(CurveOp op, const DiscreteCurve& f, const DiscreteCurve& g,
                            const DiscreteCurve& result) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t bytes = entry_bytes(result.size());
  if (capacity_bytes_ == 0 || bytes > capacity_bytes_) return 0;
  const Key key = make_key(op, f, g);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Another thread raced the same computation in; results are
    // bit-identical, so just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  const std::size_t evicted = evict_to_fit_locked(bytes);
  lru_.push_front(Entry{key, result.values(), result.dt(), bytes, std::nullopt});
  index_.emplace(key, lru_.begin());
  resident_bytes_ += bytes;
  ++inserts_;
  return evicted;
}

std::optional<CompactCurve> OpCache::lookup_compact(CurveOp op, const CompactCurve& f,
                                                    const CompactCurve& g) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_bytes_ == 0) {
    ++misses_;
    return std::nullopt;
  }
  const auto it = index_.find(make_compact_key(op, f, g));
  if (it == index_.end() || !it->second->compact) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return *it->second->compact;
}

std::size_t OpCache::insert_compact(CurveOp op, const CompactCurve& f,
                                    const CompactCurve& g, const CompactCurve& result) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t bytes = compact_entry_bytes(result.size());
  if (capacity_bytes_ == 0 || bytes > capacity_bytes_) return 0;
  const Key key = make_compact_key(op, f, g);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  const std::size_t evicted = evict_to_fit_locked(bytes);
  lru_.push_front(Entry{key, {}, result.dt(), bytes, result});
  index_.emplace(key, lru_.begin());
  resident_bytes_ += bytes;
  ++inserts_;
  return evicted;
}

std::size_t OpCache::evict_to_fit_locked(std::size_t needed) {
  std::size_t evicted = 0;
  while (!lru_.empty() && resident_bytes_ + needed > capacity_bytes_) {
    const Entry& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    ++evicted;
  }
  return evicted;
}

OpCache::Stats OpCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.inserts = inserts_;
  s.entries = lru_.size();
  s.resident_bytes = resident_bytes_;
  s.capacity_bytes = capacity_bytes_;
  return s;
}

void OpCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  resident_bytes_ = 0;
  hits_ = misses_ = evictions_ = inserts_ = 0;
}

OpCache& OpCache::global() {
  // Leaked singleton, same lifetime discipline as obs::registry(): worker
  // threads may touch the cache during static destruction otherwise.
  static OpCache* cache = new OpCache();
  return *cache;
}

}  // namespace wlc::curve
