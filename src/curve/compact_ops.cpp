// Knot-level (min,+)/(max,+) kernels for the compact PWL tier.
//
// Soundness rests on grid-aligned knots (see compact.h): both operands are
// linear between grid points, so the split objective of every operator is
// itself PWL in the split position with breakpoints on the grid, the
// continuous optimum is attained at a grid split, and the knot-level answer
// agrees with the dense-grid semantics up to floating-point rounding. Each
// kernel tags its result with the composed budget ε_f + ε_g and the
// a-priori composed error bound max_error_f + max_error_g; the dominance
// direction of f.rounding() is preserved (both conv kernels evaluate exact
// split candidates at grid points, the deconv shortcuts shift f by a
// constant, and the fallback recompacts exactly).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "curve/engine.h"
#include "obs/obs.h"

namespace wlc::curve::engine {

namespace {

std::atomic<std::int64_t> g_compact_knot{0};
std::atomic<std::int64_t> g_compact_expand{0};

double grid_x(std::uint64_t i, double dt) { return static_cast<double>(i) * dt; }

// The same expression CompactCurve::eval uses — kernels chain anchors
// through it so result knots evaluate exactly where the construction put
// them (and slope-merge results classify continuous).
double eval_with(double y, double s, double xa, double x) { return y + s * (x - xa); }

CompactBudget composed_budget(const CompactCurve& f, const CompactCurve& g) {
  return CompactBudget{f.budget().eps_abs + g.budget().eps_abs,
                       f.budget().eps_rel + g.budget().eps_rel};
}

double composed_error(const CompactCurve& f, const CompactCurve& g) {
  return f.max_error() + g.max_error();
}

/// Segment list of a knot curve: (length in grid steps, slope), the last
/// segment clipped to the dense horizon. Zero-length entries (a knot at the
/// horizon) are dropped.
struct Seg {
  std::uint64_t len;
  double slope;
};

std::vector<Seg> segments(const CompactCurve& c) {
  const std::vector<CompactCurve::Knot>& ks = c.knots();
  std::vector<Seg> out;
  out.reserve(ks.size());
  for (std::size_t k = 0; k < ks.size(); ++k) {
    const std::uint64_t next = k + 1 < ks.size() ? ks[k + 1].i : c.dense_size() - 1;
    if (next > ks[k].i) out.push_back(Seg{next - ks[k].i, ks[k].slope});
  }
  return out;
}

/// Index of the knot segment owning grid index i (last knot with i_k ≤ i).
std::size_t seg_index(const std::vector<CompactCurve::Knot>& ks, std::uint64_t i) {
  std::size_t lo = 0, hi = ks.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ks[mid].i <= i)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double eval_knots(const std::vector<CompactCurve::Knot>& ks, double dt, std::uint64_t i) {
  const CompactCurve::Knot& k = ks[seg_index(ks, i)];
  return eval_with(k.y, k.slope, grid_x(k.i, dt), grid_x(i, dt));
}

}  // namespace

namespace detail {

void compact_counts(std::int64_t& knot, std::int64_t& expand) {
  knot = g_compact_knot.load(std::memory_order_relaxed);
  expand = g_compact_expand.load(std::memory_order_relaxed);
}

void reset_compact_counts() {
  g_compact_knot.store(0, std::memory_order_relaxed);
  g_compact_expand.store(0, std::memory_order_relaxed);
}

}  // namespace detail

CompactCurve compact_conv_merge(CurveOp op, const CompactCurve& f, const CompactCurve& g) {
  // Inf-convolution of convex PWL (resp. sup-convolution of concave PWL) is
  // the slope profile of both operands merged in ascending (descending)
  // order, started at f(0) + g(0) — the k = 0 split, which is optimal at
  // x = 0. O(k_f + k_g).
  const bool ascending = op == CurveOp::MinPlusConv;
  const double dt = f.dt();
  const std::uint64_t n_out = std::min(f.dense_size(), g.dense_size());
  const std::vector<Seg> sf = segments(f);
  const std::vector<Seg> sg = segments(g);

  std::vector<Seg> merged;
  merged.reserve(sf.size() + sg.size());
  const auto push = [&](const Seg& s) {
    if (!merged.empty() && merged.back().slope == s.slope)
      merged.back().len += s.len;
    else
      merged.push_back(s);
  };
  std::size_t a = 0, b = 0;
  while (a < sf.size() || b < sg.size()) {
    const bool from_f =
        b == sg.size() ||
        (a < sf.size() &&
         (ascending ? sf[a].slope <= sg[b].slope : sf[a].slope >= sg[b].slope));
    push(from_f ? sf[a++] : sg[b++]);
  }

  std::vector<CompactCurve::Knot> out;
  out.reserve(merged.size());
  double y = f.knots().front().y + g.knots().front().y;
  std::uint64_t cum = 0;
  for (const Seg& s : merged) {
    if (cum >= n_out - 1) break;
    const std::uint64_t take = std::min<std::uint64_t>(s.len, n_out - 1 - cum);
    out.push_back(CompactCurve::Knot{cum, y, s.slope});
    // Eval-chain the next anchor so the result is exactly continuous and
    // keeps its convex/concave classification for further knot dispatch.
    y = eval_with(y, s.slope, grid_x(cum, dt), grid_x(cum + take, dt));
    cum += take;
  }
  if (out.empty()) out.push_back(CompactCurve::Knot{0, y, 0.0});
  return CompactCurve::from_knots(std::move(out), dt, n_out, f.rounding(),
                                  composed_budget(f, g), composed_error(f, g));
}

CompactCurve compact_conv_endpoint(CurveOp op, const CompactCurve& f,
                                   const CompactCurve& g) {
  // Endpoint rule: for concave² (min,+) — resp. convex² (max,+) — the
  // optimal split is always an endpoint, so the result is the pointwise
  // min (max) of A = f + g(0) and B = g + f(0). The extremum of two PWL
  // curves is PWL over the merged knot boundaries with at most one winner
  // flip per interval (both pieces are linear there); a flip is bracketed
  // between grid neighbours j, j+1 with exact extremum knots and a bridge
  // chord, so every grid point evaluates to the true extremum.
  const bool take_min = op == CurveOp::MinPlusConv;
  const double dt = f.dt();
  const std::uint64_t n_out = std::min(f.dense_size(), g.dense_size());
  const double f0 = f.knots().front().y;
  const double g0 = g.knots().front().y;
  std::vector<CompactCurve::Knot> A = f.knots();
  std::vector<CompactCurve::Knot> B = g.knots();
  for (CompactCurve::Knot& k : A) k.y = k.y + g0;
  for (CompactCurve::Knot& k : B) k.y = k.y + f0;

  std::vector<std::uint64_t> bnd;
  bnd.reserve(A.size() + B.size() + 1);
  for (const CompactCurve::Knot& k : A)
    if (k.i < n_out) bnd.push_back(k.i);
  for (const CompactCurve::Knot& k : B)
    if (k.i < n_out) bnd.push_back(k.i);
  bnd.push_back(n_out - 1);
  std::sort(bnd.begin(), bnd.end());
  bnd.erase(std::unique(bnd.begin(), bnd.end()), bnd.end());

  const auto ext = [&](double x, double y) { return take_min ? std::min(x, y) : std::max(x, y); };
  std::vector<CompactCurve::Knot> out;
  const auto emit = [&](std::uint64_t i, double y, double s) {
    if (!out.empty() && out.back().i == i) {
      out.back().y = y;
      out.back().slope = s;
    } else {
      out.push_back(CompactCurve::Knot{i, y, s});
    }
  };

  for (std::size_t t = 0; t + 1 < bnd.size(); ++t) {
    const std::uint64_t p = bnd[t], q = bnd[t + 1];
    const double ap = eval_knots(A, dt, p), bp = eval_knots(B, dt, p);
    const double aq = eval_knots(A, dt, q), bq = eval_knots(B, dt, q);
    const double dp = ap - bp, dq = aq - bq;
    const double sa = A[seg_index(A, p)].slope, sb = B[seg_index(B, p)].slope;
    const bool crossing = (dp > 0.0 && dq < 0.0) || (dp < 0.0 && dq > 0.0);
    if (!crossing) {
      // One curve stays on the winning side across the whole interval (the
      // difference is linear and does not change sign).
      const bool a_wins = take_min ? (dp < 0.0 || (dp == 0.0 && dq <= 0.0))
                                   : (dp > 0.0 || (dp == 0.0 && dq >= 0.0));
      emit(p, a_wins ? ap : bp, a_wins ? sa : sb);
    } else {
      const double xp = grid_x(p, dt), xq = grid_x(q, dt);
      const double xs = xp + dp * (xq - xp) / (dp - dq);
      std::uint64_t j = static_cast<std::uint64_t>(xs / dt);
      if (j < p) j = p;
      if (j > q - 1) j = q - 1;
      const bool pre_a = take_min ? dp < 0.0 : dp > 0.0;
      if (j > p) emit(p, pre_a ? ap : bp, pre_a ? sa : sb);
      const double ej = ext(eval_knots(A, dt, j), eval_knots(B, dt, j));
      const double ej1 = ext(eval_knots(A, dt, j + 1), eval_knots(B, dt, j + 1));
      emit(j, ej, (ej1 - ej) / (grid_x(j + 1, dt) - grid_x(j, dt)));
      const bool post_a = take_min ? dq < 0.0 : dq > 0.0;
      emit(j + 1, ej1,
           post_a ? A[seg_index(A, j + 1)].slope : B[seg_index(B, j + 1)].slope);
    }
  }
  if (out.empty())
    out.push_back(CompactCurve::Knot{0, ext(eval_knots(A, dt, 0), eval_knots(B, dt, 0)), 0.0});
  return CompactCurve::from_knots(std::move(out), dt, n_out, f.rounding(),
                                  composed_budget(f, g), composed_error(f, g));
}

CompactCurve compact_deconv_constant(CurveOp op, const CompactCurve& f,
                                     const CompactCurve& g) {
  // g constant c with g covering f's horizon: the split range at index i is
  // k = 0..n−1−i, so for non-decreasing f the sup of f(i+k) − c is
  // f(horizon) − c at every i (min,+ deconv) and the inf is f(i) − c
  // (max,+ deconv).
  const double c = g.knots().front().y;
  const double dt = f.dt();
  const std::uint64_t n = f.dense_size();
  std::vector<CompactCurve::Knot> out;
  if (op == CurveOp::MinPlusDeconv) {
    out.push_back(CompactCurve::Knot{0, f.eval_index(n - 1) - c, 0.0});
  } else {
    out = f.knots();
    for (CompactCurve::Knot& k : out) k.y = k.y - c;
  }
  return CompactCurve::from_knots(std::move(out), dt, n, f.rounding(),
                                  composed_budget(f, g), composed_error(f, g));
}

CompactCurve compact_fallback(CurveOp op, const CompactCurve& f, const CompactCurve& g) {
  const DiscreteCurve df = f.expand();
  const DiscreteCurve dg = g.expand();
  const DiscreteCurve r = apply(op, df, dg);
  // The eps=0 recompaction is exact relative to op(f′, g′), which already
  // sits within ε_f + ε_g of the op on the original dense curves; re-tag
  // with the composed metadata so chained ops keep honest books.
  const CompactCurve exact = CompactCurve::compact(r, CompactBudget{}, f.rounding());
  std::vector<CompactCurve::Knot> ks = exact.knots();
  return CompactCurve::from_knots(std::move(ks), f.dt(), exact.dense_size(),
                                  f.rounding(), composed_budget(f, g),
                                  composed_error(f, g));
}

namespace {

std::optional<CompactCurve> try_fast_compact(CurveOp op, const CompactCurve& f,
                                             const CompactCurve& g) {
  const bool fcx = f.continuous() && shape_is_convex(f.knot_shape());
  const bool fcc = f.continuous() && shape_is_concave(f.knot_shape());
  const bool gcx = g.continuous() && shape_is_convex(g.knot_shape());
  const bool gcc = g.continuous() && shape_is_concave(g.knot_shape());
  switch (op) {
    case CurveOp::MinPlusConv:
      if (fcx && gcx) return compact_conv_merge(op, f, g);
      if (fcc && gcc) return compact_conv_endpoint(op, f, g);
      break;
    case CurveOp::MaxPlusConv:
      if (fcc && gcc) return compact_conv_merge(op, f, g);
      if (fcx && gcx) return compact_conv_endpoint(op, f, g);
      break;
    case CurveOp::MinPlusDeconv:
    case CurveOp::MaxPlusDeconv:
      if (g.knot_shape() == DiscreteCurve::Shape::Constant &&
          g.dense_size() >= f.dense_size() && f.non_decreasing())
        return compact_deconv_constant(op, f, g);
      break;
  }
  return std::nullopt;
}

}  // namespace

CompactCurve apply_compact(CurveOp op, const CompactCurve& f, const CompactCurve& g) {
  WLC_REQUIRE(f.dt() == g.dt(), "compact operands must share the grid spacing");
  const Config cfg = config();
  OpCache& cache = OpCache::global();
  const bool use_cache = cfg.use_cache && cache.enabled();
  if (use_cache) {
    if (std::optional<CompactCurve> hit = cache.lookup_compact(op, f, g)) {
      WLC_COUNTER_ADD("curve.cache.hits", 1);
      return *hit;
    }
    WLC_COUNTER_ADD("curve.cache.misses", 1);
  }
  std::optional<CompactCurve> result;
  if (cfg.fast_paths) result = try_fast_compact(op, f, g);
  if (result) {
    g_compact_knot.fetch_add(1, std::memory_order_relaxed);
    WLC_COUNTER_ADD("curve.compact.dispatch.knot", 1);
  } else {
    g_compact_expand.fetch_add(1, std::memory_order_relaxed);
    WLC_COUNTER_ADD("curve.compact.dispatch.expand", 1);
    result = compact_fallback(op, f, g);
  }
  if (use_cache) {
    const std::size_t evicted = cache.insert_compact(op, f, g, *result);
    if (evicted > 0)
      WLC_COUNTER_ADD("curve.cache.evictions", static_cast<std::int64_t>(evicted));
  }
  return *result;
}

}  // namespace wlc::curve::engine
