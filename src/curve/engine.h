// Shape-aware dispatch engine for the four (min,+)/(max,+) operators.
//
// Every call to DiscreteCurve::{min,max}_plus_{conv,deconv} routes through
// engine::apply, which picks the cheapest kernel that is *bit-identical* to
// the naive O(n²) oracle (`DiscreteCurve::*_naive`):
//
//   1. OpCache::global() lookup — memoized results of earlier identical
//      calls (content-fingerprint keyed; see op_cache.h).
//   2. A shape fast path when operand shapes admit one (see the table in
//      docs/architecture.md, "Curve algebra & dispatch"):
//        · constant operand        → running/suffix extremum, O(n)
//        · convex ⊗ convex (min,+) → index-tracked slope merge, O(n)
//        · concave ⊗ concave      → endpoint rule, O(n)
//        · convex/concave deconv  → endpoint rule or per-point binary
//                                   search on the unimodal split objective,
//                                   O(n) / O(n log n)
//   3. Otherwise the cache-blocked dense kernel (same O(n²) flop count as
//      the oracle, tiled over split points for locality).
//
// Bit-identity discipline: every fast path emits exactly the expression the
// oracle evaluates at the optimal split — fl(f[a] + g[b]) or
// fl(f[i+k] − g[k]) — never an algebraically equal rearrangement (running
// increment sums drift by ulps; see min_plus_conv_convex for the legacy
// accumulating form, which is deliberately NOT used here). Shape
// classification uses exact (tol = 0) comparisons on the *rounded* sample
// increments, so the optimality arguments hold for the doubles actually
// stored, and fl(·) monotonicity (a ≤ b ⇒ fl(a+c) ≤ fl(b+c)) turns
// extremum-of-rounded into rounded-of-extremum. The differential suite
// (tests/curve_engine_test.cpp, CTest label `curve`) enforces byte equality
// across shapes × sizes × operators.
// Compact dispatch (PWL tier): apply_compact mirrors apply for CompactCurve
// operands — cache → knot-level kernel when the operand PWL shapes admit
// one → expand-to-dense fallback (dense apply, then an *exact* eps=0
// recompaction). Knot kernels are sound because knots sit on the dense
// grid: the (min,+)/(max,+) split objective over two grid-aligned PWL
// operands is itself PWL in the split with grid-aligned breakpoints, so the
// continuous optimum is attained at a grid split and the knot-level answer
// agrees with the dense-grid semantics up to floating-point rounding. The
// result carries the composed budget (ε_f + ε_g) and the a-priori composed
// error bound max_error_f + max_error_g — the differential suite
// (tests/pwl_compact_ops_test.cpp, CTest label `pwl`) checks both.
#pragma once

#include <cstdint>

#include "curve/compact.h"
#include "curve/discrete_curve.h"
#include "curve/op_cache.h"

namespace wlc::curve::engine {

/// Process-wide engine switches (atomically read per call; wired to
/// `wlc_analyze --no-fast-paths` / `--curve-cache`).
struct Config {
  bool fast_paths = true;  ///< shape-aware O(n)/O(n log n) kernels
  bool use_cache = true;   ///< consult/populate OpCache::global()
};

Config config();
void set_config(const Config& cfg);

/// How many operator applications were served by a shape fast path vs the
/// dense fallback since the last reset (cache hits count as neither — the
/// kernel never ran). Mirrored to the obs counters
/// curve.dispatch.{fast,dense}.
struct DispatchStats {
  std::int64_t fast = 0;
  std::int64_t dense = 0;
  std::int64_t compact_knot = 0;    ///< apply_compact served by a knot kernel
  std::int64_t compact_expand = 0;  ///< apply_compact fell back to expansion
};

DispatchStats dispatch_stats();
void reset_stats_for_testing();

/// Full dispatch: cache → fast path → dense. Bit-identical to the oracle.
DiscreteCurve apply(CurveOp op, const DiscreteCurve& f, const DiscreteCurve& g);

/// Compact dispatch: cache → knot kernel (O(k), dispatching on knot count)
/// → expand-to-dense fallback. Result stays within ε_f + ε_g of the op on
/// the *original* dense curves and preserves the dominance direction of
/// `f.rounding()`. Mirrored to curve.compact.dispatch.{knot,expand}.
CompactCurve apply_compact(CurveOp op, const CompactCurve& f, const CompactCurve& g);

// Knot-level kernels, exposed for the pwl differential tests/benchmarks.
// Preconditions (checked by apply_compact's dispatcher, NOT re-checked
// here): operands share dt; conv_merge needs continuous convex² (min,+) or
// concave² (max,+); conv_endpoint needs continuous concave² (min,+) or
// convex² (max,+); deconv_constant needs a constant g with
// g.dense_size() ≥ f.dense_size() and a non-decreasing f.
CompactCurve compact_conv_merge(CurveOp op, const CompactCurve& f, const CompactCurve& g);
CompactCurve compact_conv_endpoint(CurveOp op, const CompactCurve& f,
                                   const CompactCurve& g);
CompactCurve compact_deconv_constant(CurveOp op, const CompactCurve& f,
                                     const CompactCurve& g);
/// expand → dense apply → exact (eps=0) recompaction, re-tagged with the
/// composed budget/error. The always-correct slow path.
CompactCurve compact_fallback(CurveOp op, const CompactCurve& f, const CompactCurve& g);

namespace detail {
// Internal bridge: the compact-tier dispatch counters live in
// compact_ops.cpp; engine.cpp folds them into dispatch_stats().
void compact_counts(std::int64_t& knot, std::int64_t& expand);
void reset_compact_counts();
}  // namespace detail

// Individual kernels, exposed for the differential tests and benchmarks.
// The dense forms visit split points in the oracle's order (ascending k per
// output index) inside a blocked loop, so accumulation order — and hence
// every rounded intermediate — matches the oracle exactly.
DiscreteCurve min_plus_conv_dense(const DiscreteCurve& f, const DiscreteCurve& g);
DiscreteCurve max_plus_conv_dense(const DiscreteCurve& f, const DiscreteCurve& g);
DiscreteCurve min_plus_deconv_dense(const DiscreteCurve& f, const DiscreteCurve& g);
DiscreteCurve max_plus_deconv_dense(const DiscreteCurve& f, const DiscreteCurve& g);

}  // namespace wlc::curve::engine
