#include "curve/pwl_curve.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wlc::curve {

namespace {
constexpr double kInfSearchCap = 1e18;  // doubling cap for pseudo-inverse search
}

PwlCurve::PwlCurve(std::vector<Segment> segments) : segs_(std::move(segments)) { validate(); }

PwlCurve::PwlCurve(std::vector<Segment> segments, double pstart, double period, double height)
    : segs_(std::move(segments)), periodic_(true), pstart_(pstart), period_(period),
      height_(height) {
  validate();
}

void PwlCurve::validate() const {
  WLC_REQUIRE(!segs_.empty(), "curve needs at least one segment");
  WLC_REQUIRE(segs_.front().x == 0.0, "first segment must start at x = 0");
  for (std::size_t i = 1; i < segs_.size(); ++i)
    WLC_REQUIRE(segs_[i - 1].x < segs_[i].x, "segment x positions must strictly increase");
  if (periodic_) {
    WLC_REQUIRE(period_ > 0.0, "period must be positive");
    WLC_REQUIRE(pstart_ >= period_, "periodic base region must lie in [0, inf)");
    WLC_REQUIRE(segs_.back().x < pstart_, "segments beyond the periodic start are unreachable");
  }
}

std::size_t PwlCurve::find_segment(double x) const {
  // Last segment with seg.x <= x — where a query within drift tolerance
  // below a breakpoint counts as sitting on it (queries routinely come from
  // periodic breakpoint arithmetic with ~1 ulp-per-period drift, and the
  // mathematically intended point is the jump itself).
  const double eps = 1e-9 * std::max(1.0, std::fabs(x));
  auto it = std::upper_bound(segs_.begin(), segs_.end(), x + eps,
                             [](double v, const Segment& s) { return v < s.x; });
  WLC_ASSERT(it != segs_.begin());
  return static_cast<std::size_t>(std::distance(segs_.begin(), it)) - 1;
}

double PwlCurve::unwrap(double x, double& offset) const {
  if (!periodic_ || x < pstart_) return x;
  const double eps = 1e-9 * std::max(1.0, std::fabs(x));
  const double base_start = pstart_ - period_;
  double n = std::floor((x - base_start) / period_);
  double xr = x - n * period_;
  // Guard floating-point drift: keep xr inside [base_start, pstart), and
  // snap a drifted landing just below the seam back onto it (the query is a
  // jump point of a periodic copy).
  if (xr >= pstart_) {
    n += 1.0;
    xr -= period_;
  }
  if (xr < base_start) {
    if (base_start - xr <= eps) {
      xr = base_start;
    } else {
      n -= 1.0;
      xr += period_;
    }
  }
  // Symmetrically, a landing just below the next seam is that seam.
  if (pstart_ - xr <= eps) {
    n += 1.0;
    xr = base_start;
  }
  offset += n * height_;
  return xr;
}

double PwlCurve::eval(double x) const {
  WLC_REQUIRE(x >= 0.0, "curves are defined on [0, inf)");
  double offset = 0.0;
  const double xr = unwrap(x, offset);
  const Segment& s = segs_[find_segment(xr)];
  return s.y + s.slope * (xr - s.x) + offset;
}

double PwlCurve::eval_left(double x) const {
  WLC_REQUIRE(x >= 0.0, "curves are defined on [0, inf)");
  if (x == 0.0) return eval(0.0);
  // Queries frequently come from breakpoint lists whose periodic copies
  // carry ~1 ulp-per-period drift; snap within this tolerance so a drifted
  // breakpoint still resolves to the limit from the correct side.
  const double eps = 1e-9 * std::max(1.0, std::fabs(x));
  double offset = 0.0;
  double xr = x;
  if (periodic_ && x >= pstart_) {
    const double base_start = pstart_ - period_;
    double n = std::floor((x - base_start) / period_);
    xr = x - n * period_;
    if (xr >= pstart_) {
      n += 1.0;
      xr -= period_;
    }
    if (xr < base_start) {
      n -= 1.0;
      xr += period_;
    }
    // The left neighbourhood of a point sitting (up to drift) on the
    // base-region start belongs to the *previous* period.
    if (xr <= base_start + eps) {
      xr += period_;
      n -= 1.0;
    }
    offset = n * height_;
  }
  // Last segment strictly below xr (a segment starting within eps of xr
  // counts as starting at xr), extended to xr.
  auto it = std::lower_bound(segs_.begin(), segs_.end(), xr - eps,
                             [](const Segment& s, double v) { return s.x < v; });
  WLC_ASSERT(it != segs_.begin());
  const Segment& s = *std::prev(it);
  return s.y + s.slope * (xr - s.x) + offset;
}

bool PwlCurve::non_decreasing() const {
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    if (segs_[i].slope < 0.0) return false;
    if (i + 1 < segs_.size()) {
      const double end = segs_[i].y + segs_[i].slope * (segs_[i + 1].x - segs_[i].x);
      if (segs_[i + 1].y < end - 1e-12 * std::max(1.0, std::fabs(end))) return false;
    }
  }
  if (periodic_) {
    if (height_ < 0.0) return false;
    // Wrap-around: value entering the next period must not drop.
    const double end_of_base = eval_left(pstart_) - 0.0;
    const double start_of_next = eval(pstart_);
    if (start_of_next < end_of_base - 1e-12 * std::max(1.0, std::fabs(end_of_base))) return false;
  }
  return true;
}

std::optional<double> PwlCurve::inverse_lower(double y) const {
  WLC_REQUIRE(non_decreasing(), "pseudo-inverse requires a non-decreasing curve");
  if (eval(0.0) >= y) return 0.0;
  // Exponential search for an upper bracket, then bisection. The set
  // {x : f(x) >= y} is right-closed for a right-continuous non-decreasing f,
  // so bisection converges to its infimum (up to double precision).
  double hi = 1.0;
  while (eval(hi) < y) {
    hi *= 2.0;
    if (hi > kInfSearchCap) return std::nullopt;
  }
  double lo = 0.0;
  for (int i = 0; i < 200 && hi - lo > 1e-12 * std::max(1.0, hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    (eval(mid) >= y ? hi : lo) = mid;
  }
  return hi;
}

std::optional<double> PwlCurve::inverse_upper(double y) const {
  WLC_REQUIRE(non_decreasing(), "pseudo-inverse requires a non-decreasing curve");
  if (eval(0.0) > y) return std::nullopt;  // sup of the empty set
  double hi = 1.0;
  while (eval(hi) <= y) {
    hi *= 2.0;
    if (hi > kInfSearchCap) return std::nullopt;  // f never exceeds y
  }
  double lo = 0.0;
  for (int i = 0; i < 200 && hi - lo > 1e-12 * std::max(1.0, hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    (eval(mid) <= y ? lo : hi) = mid;
  }
  return hi;
}

std::vector<double> PwlCurve::breakpoints(double horizon) const {
  WLC_REQUIRE(horizon >= 0.0, "horizon must be non-negative");
  std::vector<double> out;
  for (const auto& s : segs_) {
    if (s.x > horizon) break;
    out.push_back(s.x);
  }
  if (periodic_) {
    const double base_start = pstart_ - period_;
    std::vector<double> base;
    base.push_back(base_start);
    for (const auto& s : segs_)
      if (s.x > base_start && s.x < pstart_) base.push_back(s.x);
    for (int n = 1;; ++n) {
      const double shift = static_cast<double>(n) * period_;
      if (base_start + shift > horizon) break;
      for (double b : base) {
        const double candidate = b + shift;
        if (candidate <= horizon) out.push_back(candidate);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

namespace {

/// Merged, deduplicated breakpoints of two curves on [0, horizon], with the
/// horizon appended as the terminal sentinel.
std::vector<double> merged_breakpoints(const PwlCurve& a, const PwlCurve& b, double horizon) {
  std::vector<double> xs = a.breakpoints(horizon);
  const std::vector<double> bx = b.breakpoints(horizon);
  xs.insert(xs.end(), bx.begin(), bx.end());
  xs.push_back(horizon);
  std::sort(xs.begin(), xs.end());
  // Dedupe with drift tolerance: the same mathematical breakpoint generated
  // by two periodic tails differs by a few ulps, and keeping both would
  // produce degenerate intervals.
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double u, double v) {
                         return std::fabs(v - u) <= 1e-9 * std::max(1.0, std::fabs(u));
                       }),
           xs.end());
  return xs;
}

void append_segment(std::vector<Segment>& segs, double x, double y, double slope) {
  if (!segs.empty()) {
    const Segment& last = segs.back();
    const double reach = last.y + last.slope * (x - last.x);
    // Coalesce collinear continuation.
    if (last.slope == slope && std::fabs(reach - y) <= 1e-12 * std::max(1.0, std::fabs(y))) return;
  }
  segs.push_back({x, y, slope});
}

/// Slope of `c` immediately to the right of u, given the interval [u, v)
/// contains no breakpoint of c.
double interval_slope(const PwlCurve& c, double u, double v) {
  if (v <= u) return 0.0;
  return (c.eval_left(v) - c.eval(u)) / (v - u);
}

PwlCurve combine(const PwlCurve& a, const PwlCurve& b, double horizon, bool want_min,
                 bool want_add) {
  WLC_REQUIRE(horizon > 0.0, "horizon must be positive");
  const std::vector<double> xs = merged_breakpoints(a, b, horizon);
  std::vector<Segment> segs;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double u = xs[i];
    const double v = (i + 1 < xs.size()) ? xs[i + 1] : horizon;
    const double ya = a.eval(u);
    const double yb = b.eval(u);
    const double sa = interval_slope(a, u, std::max(v, u + 1e-9));
    const double sb = interval_slope(b, u, std::max(v, u + 1e-9));
    if (want_add) {
      append_segment(segs, u, ya + yb, sa + sb);
      continue;
    }
    // min / max of two lines on [u, v): at most one crossing.
    const double d0 = ya - yb;
    const double w = v - u;
    const double d1 = d0 + (sa - sb) * w;  // difference at the left limit of v
    const bool a_first = want_min ? (d0 < 0.0 || (d0 == 0.0 && sa <= sb))
                                  : (d0 > 0.0 || (d0 == 0.0 && sa >= sb));
    const double y0 = a_first ? ya : yb;
    const double s0 = a_first ? sa : sb;
    append_segment(segs, u, y0, s0);
    // Strict sign change inside the open interval => insert the crossing and
    // switch to the other curve's slope from there on.
    if (w > 0.0 && ((d0 < 0.0 && d1 > 0.0) || (d0 > 0.0 && d1 < 0.0))) {
      const double t = u + d0 / (sb - sa);
      if (t > u && t < v) {
        const double yc = ya + sa * (t - u);
        append_segment(segs, t, yc, a_first ? sb : sa);
      }
    }
  }
  if (segs.empty() || segs.front().x != 0.0)
    segs.insert(segs.begin(),
                {0.0, want_add ? a.eval(0.0) + b.eval(0.0)
                               : (want_min ? std::min(a.eval(0.0), b.eval(0.0))
                                           : std::max(a.eval(0.0), b.eval(0.0))),
                 0.0});
  return PwlCurve(std::move(segs));
}

}  // namespace

PwlCurve PwlCurve::min(const PwlCurve& a, const PwlCurve& b, double horizon) {
  return combine(a, b, horizon, /*want_min=*/true, /*want_add=*/false);
}

PwlCurve PwlCurve::max(const PwlCurve& a, const PwlCurve& b, double horizon) {
  return combine(a, b, horizon, /*want_min=*/false, /*want_add=*/false);
}

PwlCurve PwlCurve::add(const PwlCurve& a, const PwlCurve& b, double horizon) {
  return combine(a, b, horizon, /*want_min=*/false, /*want_add=*/true);
}

PwlCurve PwlCurve::scale_y(double s) const {
  WLC_REQUIRE(s >= 0.0, "vertical scale must be non-negative");
  PwlCurve out = *this;
  for (auto& seg : out.segs_) {
    seg.y *= s;
    seg.slope *= s;
  }
  out.height_ *= s;
  return out;
}

PwlCurve PwlCurve::shift_y(double dy) const {
  PwlCurve out = *this;
  for (auto& seg : out.segs_) seg.y += dy;
  return out;
}

PwlCurve PwlCurve::zero() { return constant(0.0); }

PwlCurve PwlCurve::constant(double c) { return PwlCurve({{0.0, c, 0.0}}); }

PwlCurve PwlCurve::affine(double y0, double slope) { return PwlCurve({{0.0, y0, slope}}); }

PwlCurve PwlCurve::rate_latency(double rate, double latency) {
  WLC_REQUIRE(rate >= 0.0 && latency >= 0.0, "rate-latency parameters must be non-negative");
  if (latency == 0.0) return PwlCurve({{0.0, 0.0, rate}});
  return PwlCurve({{0.0, 0.0, 0.0}, {latency, 0.0, rate}});
}

PwlCurve PwlCurve::token_bucket(double burst, double rate) {
  WLC_REQUIRE(burst >= 0.0 && rate >= 0.0, "token-bucket parameters must be non-negative");
  return PwlCurve({{0.0, burst, rate}});
}

PwlCurve PwlCurve::staircase(double init, double step, double period, double first_jump) {
  WLC_REQUIRE(period > 0.0, "staircase period must be positive");
  WLC_REQUIRE(first_jump > 0.0, "first jump must be after x = 0");
  std::vector<Segment> segs{{0.0, init, 0.0}, {first_jump, init + step, 0.0}};
  return PwlCurve(std::move(segs), first_jump + period, period, step);
}

PwlCurve PwlCurve::periodic_upper(double p, double j) {
  WLC_REQUIRE(p > 0.0 && j >= 0.0, "need positive period and non-negative jitter");
  const double whole = std::floor(j / p);
  const double init = whole + 1.0;
  double first_jump = p * (whole + 1.0) - j;
  if (first_jump <= 0.0) first_jump = p;  // j is an exact multiple of p
  return staircase(init, 1.0, p, first_jump);
}

PwlCurve PwlCurve::periodic_lower(double p, double j) {
  WLC_REQUIRE(p > 0.0 && j >= 0.0, "need positive period and non-negative jitter");
  return staircase(0.0, 1.0, p, j + p);
}

PwlCurve PwlCurve::pjd_upper(double p, double j, double d, double horizon) {
  WLC_REQUIRE(d > 0.0, "minimum spacing must be positive");
  const PwlCurve jitter_bound = periodic_upper(p, j);
  const PwlCurve spacing_bound = staircase(1.0, 1.0, d, d);
  return min(jitter_bound, spacing_bound, horizon);
}

std::string PwlCurve::to_string() const {
  std::ostringstream os;
  os << "PwlCurve{";
  for (const auto& s : segs_) os << "(" << s.x << "," << s.y << "," << s.slope << ")";
  if (periodic_)
    os << " periodic(start=" << pstart_ << ",period=" << period_ << ",height=" << height_ << ")";
  os << "}";
  return os.str();
}

}  // namespace wlc::curve
