// Bounded-error piecewise-linear compaction of dense discrete curves.
//
// Long traces produce DiscreteCurves with millions of samples; every
// downstream operator — the §3.1/§3.2 algebra, the OpCache, serve
// snapshots — pays per point. CompactCurve re-represents such a curve as a
// short knot list (grid-anchored PWL segments) fitted greedily within a
// user-set absolute + relative error budget, with *one-sided* rounding:
//
//   · CompactRounding::Up   (γᵘ-family):  compact(x) ≥ original(x)
//   · CompactRounding::Down (γˡ-family):  compact(x) ≤ original(x)
//
// Dominance is an invariant, never a hope: after fitting each segment the
// constructor re-evaluates every covered sample through the *same*
// floating-point expression eval() uses and repairs the segment (shifting
// it away from the original by the measured deficit) until the one-sided
// inequality holds for the doubles actually stored. The error budget is
// enforced against the full ε(v) = eps_abs + eps_rel·|v| corridor; fitting
// targets a corridor shrunk by a few-ulp margin so the repair can never
// push a value past the user's budget. With a zero budget the fit only
// merges runs that floating-point interpolation reproduces *exactly*, so
// expand() is bit-identical to the input — the eps=0 golden tests rest on
// this.
//
// Knots sit on the dense grid (stored as sample indices, never as raw x),
// which is what makes the knot-level algebra in the engine sound: a PWL
// function with grid-aligned knots is linear between grid points, so the
// grid-restricted (min,+)/(max,+) optima coincide with the continuous PWL
// optima and knot-level kernels agree with the dense semantics (see
// engine.h "Compact dispatch" and docs/architecture.md "PWL tiering").
//
// Segments are (index, y, slope) triples; segment k owns [x_k, x_{k+1})
// (the last owns through the horizon). Evaluation at a knot position
// returns the stored y exactly (the x − x_k subtraction cancels to zero by
// construction), so per-sample fallback knots reproduce their sample
// bit-for-bit. Upward repair can introduce ulp-scale upward jumps at knot
// boundaries in Up mode (and downward in Down mode); eval is therefore
// right-continuous at knots and the monotonicity guarantee is exact for Up
// compaction of non-decreasing non-negative curves and holds within a few
// ulps for Down (the jump direction is the conservative one in both modes).
#pragma once

#include <cstdint>
#include <vector>

#include "curve/discrete_curve.h"

namespace wlc::curve {

/// Pointwise error budget ε(v) = eps_abs + eps_rel·|v|. Both terms must be
/// ≥ 0 and finite; zero() selects the exact (bit-identical) fit.
struct CompactBudget {
  double eps_abs = 0.0;
  double eps_rel = 0.0;

  bool zero() const { return eps_abs == 0.0 && eps_rel == 0.0; }
  bool enabled() const { return !zero(); }
  double at(double v) const { return eps_abs + eps_rel * (v < 0 ? -v : v); }
};

/// Which side of the original the compact curve must stay on.
enum class CompactRounding : std::uint8_t {
  Up = 0,   ///< compact ⪰ original (γᵘ, αᵘ — over-approximation is sound)
  Down = 1, ///< compact ⪯ original (γˡ, αˡ — under-approximation is sound)
};

class CompactCurve {
 public:
  /// One PWL segment: value fl(y + slope·(x − i·dt)) on [i·dt, next·dt).
  struct Knot {
    std::uint64_t i;  ///< grid index of the segment start (exact integer)
    double y;         ///< value at the knot — eval(i·dt) returns this bit-exactly
    double slope;     ///< cycles per second (per x unit) within the segment
  };

  /// Fits `c` within `budget`, rounded per `rounding`. O(n). Throws
  /// wlc::DomainError on a non-finite budget/sample or a grid whose
  /// positions collide in double precision.
  static CompactCurve compact(const DiscreteCurve& c, const CompactBudget& budget,
                              CompactRounding rounding);
  /// γᵘ-family convenience: compact(c, budget, CompactRounding::Up).
  static CompactCurve compact_upper(const DiscreteCurve& c, const CompactBudget& budget);
  /// γˡ-family convenience: compact(c, budget, CompactRounding::Down).
  static CompactCurve compact_lower(const DiscreteCurve& c, const CompactBudget& budget);

  /// Rebuilds a curve from persisted knots (snapshot decode path). Strictly
  /// validates structure — first index 0, strictly increasing indices, all
  /// indices < dense_size, finite values/slopes, dt > 0 — and throws
  /// wlc::DomainError otherwise. Does NOT re-establish dominance against
  /// any original; callers holding the original must re-verify (the serve
  /// recovery path does) or treat the result as untrusted.
  static CompactCurve from_knots(std::vector<Knot> knots, double dt,
                                 std::uint64_t dense_size, CompactRounding rounding,
                                 CompactBudget budget, double max_error);

  /// Exact PWL evaluation at arbitrary x ∈ [0, horizon]; clamps outside.
  double eval(double x) const;
  /// eval(i·dt) — the expression the fit verified every sample against.
  double eval_index(std::uint64_t i) const;
  /// Re-densifies onto the original grid. Bit-identical to the input when
  /// the curve was fitted with a zero budget.
  DiscreteCurve expand() const;

  std::size_t size() const { return knots_.size(); }
  std::uint64_t dense_size() const { return n_; }
  double dt() const { return dt_; }
  double horizon() const { return static_cast<double>(n_ - 1) * dt_; }
  CompactRounding rounding() const { return rounding_; }
  const CompactBudget& budget() const { return budget_; }
  const std::vector<Knot>& knots() const { return knots_; }
  /// Largest |eval(i·dt) − v[i]| measured during the fit (0 for from_knots
  /// round-trips of an eps=0 fit).
  double max_error() const { return max_error_; }
  /// dense_size / knot count — the headline point-reduction factor.
  double reduction() const {
    return static_cast<double>(n_) / static_cast<double>(knots_.size());
  }

  /// Shape of the PWL function the knots define, classified on the stored
  /// slopes with exact comparisons (the same discipline as
  /// DiscreteCurve::shape). A curve whose repair introduced a knot
  /// discontinuity reports General — the knot-level kernels require the
  /// continuous convex/concave arguments. Computed once at construction
  /// (O(k)), so reads are trivially thread-safe.
  DiscreteCurve::Shape knot_shape() const { return shape_; }
  /// True when every knot joins the previous segment's end value exactly.
  bool continuous() const { return continuous_; }
  /// True when the PWL never decreases: all slopes ≥ 0 and every knot jump
  /// (repair discontinuity) points upward. Valid with or without
  /// continuity — the deconv-constant kernel keys off this.
  bool non_decreasing() const { return non_decreasing_; }

  bool operator==(const CompactCurve& o) const {
    return n_ == o.n_ && dt_ == o.dt_ && rounding_ == o.rounding_ &&
           knots_.size() == o.knots_.size() && [&] {
             for (std::size_t k = 0; k < knots_.size(); ++k)
               if (knots_[k].i != o.knots_[k].i || knots_[k].y != o.knots_[k].y ||
                   knots_[k].slope != o.knots_[k].slope)
                 return false;
             return true;
           }();
  }

 private:
  CompactCurve(std::vector<Knot> knots, double dt, std::uint64_t n,
               CompactRounding rounding, CompactBudget budget, double max_error);

  /// Index of the segment owning x (last knot with i·dt ≤ x).
  std::size_t segment_for(double x) const;

  std::vector<Knot> knots_;
  double dt_;
  std::uint64_t n_;
  CompactRounding rounding_;
  CompactBudget budget_;
  double max_error_;
  DiscreteCurve::Shape shape_;
  bool continuous_;
  bool non_decreasing_;
};

}  // namespace wlc::curve
