#include "curve/pwl_minplus.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace wlc::curve {

namespace {

/// One linear piece materialized on a closed interval [x1, x2]; the value at
/// x2 is the left limit (jumps belong to the next piece's left endpoint).
struct Piece {
  double x1, x2;
  double y1;     ///< value at x1
  double slope;
  double value_at(double x) const { return y1 + slope * (x - x1); }
};

/// Materializes a curve on [0, horizon] as closed pieces.
std::vector<Piece> materialize(const PwlCurve& c, double horizon) {
  std::vector<double> bps = c.breakpoints(horizon);
  if (bps.empty() || bps.back() < horizon) bps.push_back(horizon);
  std::vector<Piece> pieces;
  pieces.reserve(bps.size());
  for (std::size_t i = 0; i + 1 < bps.size(); ++i) {
    const double u = bps[i];
    const double v = bps[i + 1];
    if (v <= u) continue;
    const double yu = c.eval(u);
    pieces.push_back(Piece{u, v, yu, (c.eval_left(v) - yu) / (v - u)});
  }
  if (pieces.empty()) pieces.push_back(Piece{0.0, horizon, c.eval(0.0), 0.0});
  return pieces;
}

/// Candidate sub-segment of the convolution result.
struct Candidate {
  double x1, x2;
  double y1;
  double slope;
};

/// Walks pieces `a` then `b` starting at (x0, y0): contributes one candidate
/// per non-empty piece, in the given order.
void emit_path(std::vector<Candidate>& out, double x0, double y0, const Piece& first,
               const Piece& second) {
  const double len_f = first.x2 - first.x1;
  const double len_s = second.x2 - second.x1;
  double x = x0;
  double y = y0;
  if (len_f > 0.0) {
    out.push_back(Candidate{x, x + len_f, y, first.slope});
    x += len_f;
    y += first.slope * len_f;
  }
  if (len_s > 0.0) out.push_back(Candidate{x, x + len_s, y, second.slope});
}

/// A line y = m·x + b.
struct Line {
  double m, b;
};

/// Lower (want_min) or upper envelope of `lines` on [u, v], appended to
/// `segs` as PwlCurve segments. Classic convex-hull-trick: along a lower
/// envelope slopes decrease left to right (the min of affine functions is
/// concave); for the upper envelope they increase.
void envelope_on_interval(std::vector<Line> lines, double u, double v, bool want_min,
                          std::vector<Segment>& segs) {
  WLC_ASSERT(!lines.empty() && v > u);
  // Sort so that the first line is the leftmost winner: slope descending for
  // the lower envelope, ascending for the upper; ties keep the better offset.
  std::sort(lines.begin(), lines.end(), [&](const Line& a, const Line& b) {
    if (a.m != b.m) return want_min ? a.m > b.m : a.m < b.m;
    return want_min ? a.b < b.b : a.b > b.b;
  });
  // Drop dominated duplicates (same slope, worse offset).
  std::vector<Line> hull;
  for (const Line& l : lines) {
    if (!hull.empty() && hull.back().m == l.m) continue;
    // Pop while the previous hull line becomes useless before the new line's
    // crossing with the one before it.
    while (hull.size() >= 2) {
      const Line& l1 = hull[hull.size() - 2];
      const Line& l2 = hull.back();
      // x where l meets l1 vs where l2 meets l1.
      const double x_new = (l.b - l1.b) / (l1.m - l.m);
      const double x_old = (l2.b - l1.b) / (l1.m - l2.m);
      if (x_new <= x_old)
        hull.pop_back();
      else
        break;
    }
    if (hull.size() == 1) {
      // Keep hull[0] only if it wins somewhere left of its crossing with l.
      const Line& l1 = hull[0];
      const double cross = (l.b - l1.b) / (l1.m - l.m);
      if (cross <= u) hull.pop_back();
    }
    hull.push_back(l);
  }
  // Emit hull pieces clipped to [u, v].
  double x = u;
  for (std::size_t i = 0; i < hull.size() && x < v; ++i) {
    double until = v;
    if (i + 1 < hull.size()) {
      const double cross =
          (hull[i + 1].b - hull[i].b) / (hull[i].m - hull[i + 1].m);
      until = std::min(v, std::max(x, cross));
    }
    if (until > x) {
      segs.push_back(Segment{x, hull[i].m * x + hull[i].b, hull[i].m});
      x = until;
    }
  }
}

void append_coalesced(std::vector<Segment>& out, const Segment& s) {
  if (!out.empty()) {
    const Segment& last = out.back();
    const double reach = last.y + last.slope * (s.x - last.x);
    if (last.slope == s.slope && std::fabs(reach - s.y) <= 1e-9 * std::max(1.0, std::fabs(s.y)))
      return;
    if (s.x <= last.x) return;  // numerical duplicate breakpoint
  }
  out.push_back(s);
}

PwlCurve convolve(const PwlCurve& f, const PwlCurve& g, double horizon, bool want_min) {
  WLC_REQUIRE(horizon > 0.0, "horizon must be positive");
  WLC_REQUIRE(f.non_decreasing() && g.non_decreasing(),
              "pw-linear convolution expects non-decreasing curves");
  const std::vector<Piece> fp = materialize(f, horizon);
  const std::vector<Piece> gp = materialize(g, horizon);
  WLC_REQUIRE(fp.size() * gp.size() <= 20000,
              "too many segment pairs; use DiscreteCurve for trace-scale curves");

  // Candidate paths: for every piece pair start at the summed left endpoints
  // and walk the better slope first (smaller for inf, larger for sup).
  std::vector<Candidate> cands;
  cands.reserve(fp.size() * gp.size() * 2);
  for (const Piece& a : fp) {
    for (const Piece& b : gp) {
      const double x0 = a.x1 + b.x1;
      if (x0 > horizon) continue;
      const double y0 = a.y1 + b.y1;
      const bool a_first = want_min ? (a.slope <= b.slope) : (a.slope >= b.slope);
      if (a_first)
        emit_path(cands, x0, y0, a, b);
      else
        emit_path(cands, x0, y0, b, a);
    }
  }
  WLC_ASSERT(!cands.empty());

  // Clip candidates to [0, horizon] and gather the interval grid.
  std::vector<double> xs{0.0, horizon};
  for (auto& c : cands) {
    c.x2 = std::min(c.x2, horizon);
    if (c.x1 <= horizon) {
      xs.push_back(c.x1);
      xs.push_back(c.x2);
    }
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double a, double b) { return std::fabs(a - b) < 1e-12; }),
           xs.end());

  // Per interval: envelope of the active candidates (each a line there).
  std::vector<Segment> segs;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const double u = xs[i];
    const double v = xs[i + 1];
    if (v - u < 1e-12) continue;
    std::vector<Line> lines;
    for (const auto& c : cands)
      if (c.x1 <= u + 1e-12 && c.x2 >= v - 1e-12)
        lines.push_back(Line{c.slope, c.y1 - c.slope * c.x1});
    if (lines.empty()) continue;  // cannot happen for t in [0,H], defensive
    std::vector<Segment> interval_segs;
    envelope_on_interval(std::move(lines), u, v, want_min, interval_segs);
    for (const auto& s : interval_segs) append_coalesced(segs, s);
  }
  WLC_ASSERT(!segs.empty());
  if (segs.front().x != 0.0)
    segs.insert(segs.begin(), Segment{0.0, f.eval(0.0) + g.eval(0.0), 0.0});
  return PwlCurve(std::move(segs));
}

}  // namespace

PwlCurve pwl_min_plus_conv(const PwlCurve& f, const PwlCurve& g, double horizon) {
  return convolve(f, g, horizon, /*want_min=*/true);
}

PwlCurve pwl_max_plus_conv(const PwlCurve& f, const PwlCurve& g, double horizon) {
  return convolve(f, g, horizon, /*want_min=*/false);
}

}  // namespace wlc::curve
