// Exact (min,+) algebra on piecewise-linear curves over a finite horizon.
//
// For piecewise-linear f and g, the convolution
//
//   (f ⊗ g)(t) = inf_{0<=s<=t} f(t-s) + g(s)
//
// is again piecewise-linear: every pair of linear segments (one from f, one
// from g) contributes a candidate path — starting from the sum of the
// segments' left endpoints, walk the smaller slope first, then the larger
// (the classical two-segment convolution) — and f ⊗ g is the lower envelope
// of all candidate paths. This module materializes both curves on
// [0, horizon], enumerates the O(n·m) candidates, and computes the exact
// envelope interval by interval (between consecutive candidate breakpoints
// every candidate is a straight line, so the envelope there is the lower
// hull of at most O(n·m) lines).
//
// The result is exact on [0, horizon] — cross-validated in the test suite
// against the O(N²) sampled reference of DiscreteCurve. The max-plus
// convolution (sup of sums, larger slope first) is provided symmetrically.
//
// Complexity: O((n·m)² log(n·m)) worst case — intended for the closed-form
// curves of specifications (tens of segments), not for trace-derived curves
// with thousands of breakpoints (use DiscreteCurve for those).
#pragma once

#include "curve/pwl_curve.h"

namespace wlc::curve {

/// Exact (f ⊗ g) on [0, horizon]. Requires non-decreasing operands (the
/// curve class of Network Calculus); the result is aperiodic and valid on
/// [0, horizon].
PwlCurve pwl_min_plus_conv(const PwlCurve& f, const PwlCurve& g, double horizon);

/// Exact max-plus convolution (f ⊗̄ g)(t) = sup_{0<=s<=t} f(t-s) + g(s).
PwlCurve pwl_max_plus_conv(const PwlCurve& f, const PwlCurve& g, double horizon);

}  // namespace wlc::curve
