#include "curve/compact.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.h"

namespace wlc::curve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double grid_x(std::uint64_t i, double dt) { return static_cast<double>(i) * dt; }

/// The one floating-point expression every sample is verified through and
/// eval() replays: fl(y + s·(x − xa)). At x == xa the subtraction cancels
/// exactly, so knot values round-trip bit-for-bit.
double eval_with(double y, double s, double xa, double x) { return y + s * (x - xa); }

/// Few-ulp corridor shrink reserved for the repair pass: fitting targets
/// ε − margin so post-fit dominance repair (which moves values by rounding
/// noise only) can never push a sample past the user's ε. 64 ulps of the
/// local value scale dwarfs the ≤ ~4-ulp noise of quotient + interpolation
/// rounding while staying negligible against any budget a caller would set.
double corridor_margin(double vj, double ya) {
  const double scale = std::max(std::fabs(vj), std::fabs(ya));
  return 64.0 * std::numeric_limits<double>::epsilon() * scale;
}

}  // namespace

CompactCurve::CompactCurve(std::vector<Knot> knots, double dt, std::uint64_t n,
                           CompactRounding rounding, CompactBudget budget,
                           double max_error)
    : knots_(std::move(knots)),
      dt_(dt),
      n_(n),
      rounding_(rounding),
      budget_(budget),
      max_error_(max_error) {
  // Continuity + knot-level shape, once per curve (the engine dispatches on
  // these; see knot_shape()). Exact comparisons, same discipline as
  // DiscreteCurve::shape.
  continuous_ = true;
  non_decreasing_ = true;
  for (std::size_t k = 0; k + 1 < knots_.size(); ++k) {
    const double end = eval_with(knots_[k].y, knots_[k].slope, grid_x(knots_[k].i, dt_),
                                 grid_x(knots_[k + 1].i, dt_));
    if (end != knots_[k + 1].y) continuous_ = false;
    if (end > knots_[k + 1].y) non_decreasing_ = false;  // downward jump
  }
  for (const Knot& kn : knots_)
    if (kn.slope < 0.0) non_decreasing_ = false;
  if (!continuous_) {
    shape_ = DiscreteCurve::Shape::General;
    return;
  }
  bool all_zero = true, all_equal = true, non_dec = true, non_inc = true;
  for (std::size_t k = 0; k < knots_.size(); ++k) {
    if (knots_[k].slope != 0.0) all_zero = false;
    if (knots_[k].slope != knots_[0].slope) all_equal = false;
    if (k > 0) {
      if (knots_[k].slope < knots_[k - 1].slope) non_dec = false;
      if (knots_[k].slope > knots_[k - 1].slope) non_inc = false;
    }
  }
  if (all_zero)
    shape_ = DiscreteCurve::Shape::Constant;
  else if (all_equal)
    shape_ = DiscreteCurve::Shape::Affine;
  else if (non_dec)
    shape_ = DiscreteCurve::Shape::Convex;
  else if (non_inc)
    shape_ = DiscreteCurve::Shape::Concave;
  else
    shape_ = DiscreteCurve::Shape::General;
}

CompactCurve CompactCurve::compact(const DiscreteCurve& c, const CompactBudget& budget,
                                   CompactRounding rounding) {
  if (!(budget.eps_abs >= 0.0) || !(budget.eps_rel >= 0.0) ||
      !std::isfinite(budget.eps_abs) || !std::isfinite(budget.eps_rel))
    throw DomainError("compact: error budget must be finite and non-negative",
                      std::to_string(budget.eps_abs) + "/" + std::to_string(budget.eps_rel),
                      __FILE__, __LINE__);
  const std::vector<double>& v = c.values();
  const std::uint64_t n = c.size();
  const double dt = c.dt();
  for (double x : v)
    if (!std::isfinite(x))
      throw DomainError("compact: curve has a non-finite sample", std::to_string(x),
                        __FILE__, __LINE__);
  // Grid positions must be distinct in double precision (ulp spacing grows
  // with magnitude, so the top pair is the tightest; if it is strict, every
  // pair is).
  if (n >= 2 && !(grid_x(n - 1, dt) > grid_x(n - 2, dt)))
    throw DomainError("compact: grid positions collide in double precision",
                      std::to_string(dt), __FILE__, __LINE__);

  const bool up = rounding == CompactRounding::Up;
  // The monotone-preservation guarantee (and its slope clamp) applies to
  // the curves the paper produces: non-decreasing and non-negative.
  const bool monotone = c.is_non_decreasing(0.0) && v[0] >= 0.0;

  std::vector<Knot> knots;
  double max_err = 0.0;

  if (n == 1) {
    knots.push_back(Knot{0, v[0], 0.0});
    return CompactCurve(std::move(knots), dt, n, rounding, budget, 0.0);
  }

  // Emits exact per-sample knots for [a, b): y pinned to the sample
  // bit-for-bit (zero error at every grid point — the one representation
  // that honors any budget), slope aimed at the next sample and nudged so
  // non-grid evaluation stays on the sound side. The terminal fallback for
  // windows whose fitted segment could not be repaired within budget.
  const auto emit_exact_run = [&](std::uint64_t a, std::uint64_t b) {
    for (std::uint64_t j = a; j < b; ++j) {
      const double xj = grid_x(j, dt);
      double s = (v[j + 1] - v[j]) / (grid_x(j + 1, dt) - xj);
      if (up && monotone && s < 0) s = 0.0;
      for (int it = 0; it < 8; ++it) {
        const double end = eval_with(v[j], s, xj, grid_x(j + 1, dt));
        if (up ? end >= v[j + 1] : end <= v[j + 1]) break;
        s = std::nextafter(s, up ? kInf : -kInf);
      }
      knots.push_back(Knot{j, v[j], s});
    }
    // A run ending at the horizon leaves the last sample owned by the
    // nudged segment before it; pin it exactly with a terminal flat knot
    // (the main loops emit the knot at b themselves for interior windows).
    if (b == n - 1) knots.push_back(Knot{n - 1, v[n - 1], 0.0});
  };

  std::uint64_t a = 0;
  double ya = v[0];

  if (budget.zero()) {
    // Exact tier: merge only runs that floating-point interpolation
    // reproduces bit-for-bit; anything else becomes a per-sample knot.
    // expand() is then bit-identical to the input by construction.
    while (a < n - 1) {
      const double xa = grid_x(a, dt);
      const double s = (v[a + 1] - ya) / (grid_x(a + 1, dt) - xa);
      std::uint64_t b = a;
      while (b + 1 <= n - 1 &&
             eval_with(ya, s, xa, grid_x(b + 1, dt)) == v[b + 1])
        ++b;
      if (b == a) {
        emit_exact_run(a, a + 1);
        ++a;
      } else {
        knots.push_back(Knot{a, ya, s});
        a = b;
      }
      ya = v[a];
    }
    return CompactCurve(std::move(knots), dt, n, rounding, budget, 0.0);
  }

  while (a < n - 1) {
    const double xa = grid_x(a, dt);
    // Greedy slope cone: the set of slopes keeping every covered sample
    // inside its (margin-shrunk) corridor. Intersect one constraint pair
    // per sample; close the segment when the cone empties.
    double smin = (up && monotone) ? 0.0 : -kInf;
    double smax = kInf;
    std::uint64_t b = a;
    for (std::uint64_t j = a + 1; j <= n - 1; ++j) {
      const double dx = grid_x(j, dt) - xa;
      const double eps_eff = std::max(0.0, budget.at(v[j]) - corridor_margin(v[j], ya));
      const double lo = up ? (v[j] - ya) / dx : (v[j] - eps_eff - ya) / dx;
      const double hi = up ? (v[j] + eps_eff - ya) / dx : (v[j] - ya) / dx;
      const double nsmin = std::max(smin, lo);
      const double nsmax = std::min(smax, hi);
      if (nsmin > nsmax) break;
      smin = nsmin;
      smax = nsmax;
      b = j;
    }
    if (b == a) {
      // Only reachable under the monotone slope clamp (an unclamped cone
      // always admits the first step). A flat single step is sound there:
      // ya dominates v[a+1]'s corridor from above within ε (monotone
      // non-negative ⇒ ε is non-decreasing along the curve).
      b = a + 1;
      smin = smax = 0.0;
    }
    // Hug the original: smallest feasible slope from above, largest from
    // below.
    double s = up ? smin : smax;

    // Verify every covered sample through eval's own expression and repair
    // by shifting the whole segment away from the original — the measured
    // deficit first, then single-ulp nudges for the rounding of the shift
    // itself. Dominance is re-established exactly; the shift is rounding
    // noise, absorbed by the corridor margin.
    double y0 = ya;
    const auto deficit = [&](double y) {
      double worst = 0.0;
      for (std::uint64_t j = a; j <= b; ++j) {
        const double val = eval_with(y, s, xa, grid_x(j, dt));
        worst = std::max(worst, up ? v[j] - val : val - v[j]);
      }
      return worst;
    };
    double def = deficit(y0);
    for (int it = 0; it < 12 && def > 0.0; ++it) {
      y0 = it == 0 ? (up ? y0 + def : y0 - def) : std::nextafter(y0, up ? kInf : -kInf);
      def = deficit(y0);
    }
    bool within_budget = def <= 0.0;
    double seg_err = 0.0;
    if (within_budget) {
      for (std::uint64_t j = a; j <= b; ++j) {
        const double err = std::fabs(eval_with(y0, s, xa, grid_x(j, dt)) - v[j]);
        if (err > budget.at(v[j])) {
          within_budget = false;
          break;
        }
        seg_err = std::max(seg_err, err);
      }
    }
    if (!within_budget) {
      emit_exact_run(a, b);
      a = b;
      ya = v[b];
      continue;
    }
    knots.push_back(Knot{a, y0, s});
    max_err = std::max(max_err, seg_err);
    ya = eval_with(y0, s, xa, grid_x(b, dt));  // continuity anchor
    a = b;
  }
  return CompactCurve(std::move(knots), dt, n, rounding, budget, max_err);
}

CompactCurve CompactCurve::compact_upper(const DiscreteCurve& c,
                                         const CompactBudget& budget) {
  return compact(c, budget, CompactRounding::Up);
}

CompactCurve CompactCurve::compact_lower(const DiscreteCurve& c,
                                         const CompactBudget& budget) {
  return compact(c, budget, CompactRounding::Down);
}

CompactCurve CompactCurve::from_knots(std::vector<Knot> knots, double dt,
                                      std::uint64_t dense_size, CompactRounding rounding,
                                      CompactBudget budget, double max_error) {
  if (!(dt > 0.0) || !std::isfinite(dt))
    throw DomainError("compact knots: dt must be positive and finite", std::to_string(dt),
                      __FILE__, __LINE__);
  if (dense_size == 0)
    throw DomainError("compact knots: dense size must be positive", "0", __FILE__,
                      __LINE__);
  if (knots.empty())
    throw DomainError("compact knots: knot list is empty", "", __FILE__, __LINE__);
  if (knots.front().i != 0)
    throw DomainError("compact knots: first knot must sit at index 0",
                      std::to_string(knots.front().i), __FILE__, __LINE__);
  for (std::size_t k = 0; k < knots.size(); ++k) {
    if (knots[k].i >= dense_size)
      throw DomainError("compact knots: knot index beyond the dense horizon",
                        std::to_string(knots[k].i), __FILE__, __LINE__);
    if (k > 0 && knots[k].i <= knots[k - 1].i)
      throw DomainError("compact knots: indices must be strictly increasing",
                        std::to_string(knots[k].i), __FILE__, __LINE__);
    if (!std::isfinite(knots[k].y) || !std::isfinite(knots[k].slope))
      throw DomainError("compact knots: non-finite knot value or slope",
                        std::to_string(knots[k].y), __FILE__, __LINE__);
  }
  if (!(max_error >= 0.0) || !std::isfinite(max_error))
    throw DomainError("compact knots: recorded max error must be finite and non-negative",
                      std::to_string(max_error), __FILE__, __LINE__);
  if (!(budget.eps_abs >= 0.0) || !(budget.eps_rel >= 0.0) ||
      !std::isfinite(budget.eps_abs) || !std::isfinite(budget.eps_rel))
    throw DomainError("compact knots: budget must be finite and non-negative",
                      std::to_string(budget.eps_abs), __FILE__, __LINE__);
  return CompactCurve(std::move(knots), dt, dense_size, rounding, budget, max_error);
}

std::size_t CompactCurve::segment_for(double x) const {
  // Last knot with i·dt ≤ x. Grid positions are strictly increasing, so
  // binary search on the integer index is equivalent.
  std::size_t lo = 0, hi = knots_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (grid_x(knots_[mid].i, dt_) <= x)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double CompactCurve::eval(double x) const {
  if (x < 0.0) x = 0.0;
  const double h = horizon();
  if (x > h) x = h;
  const Knot& k = knots_[segment_for(x)];
  return eval_with(k.y, k.slope, grid_x(k.i, dt_), x);
}

double CompactCurve::eval_index(std::uint64_t i) const {
  WLC_ASSERT(i < n_);
  return eval(grid_x(i, dt_));
}

DiscreteCurve CompactCurve::expand() const {
  std::vector<double> out(n_);
  std::size_t k = 0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    while (k + 1 < knots_.size() && knots_[k + 1].i <= i) ++k;
    out[i] = eval_with(knots_[k].y, knots_[k].slope, grid_x(knots_[k].i, dt_),
                       grid_x(i, dt_));
  }
  return DiscreteCurve(std::move(out), dt_);
}

}  // namespace wlc::curve
