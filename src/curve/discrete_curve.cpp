#include "curve/discrete_curve.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "curve/engine.h"
#include "curve/pwl_curve.h"

namespace wlc::curve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void require_compatible(const DiscreteCurve& a, const DiscreteCurve& b) {
  WLC_REQUIRE(a.dt() == b.dt(), "operands must share the grid spacing");
}
}  // namespace

DiscreteCurve::DiscreteCurve(std::vector<double> values, double dt)
    : v_(std::move(values)), dt_(dt) {
  WLC_REQUIRE(!v_.empty(), "curve needs at least one sample");
  WLC_REQUIRE(dt_ > 0.0, "grid spacing must be positive");
}

DiscreteCurve::DiscreteCurve(const DiscreteCurve& other)
    : v_(other.v_),
      dt_(other.dt_),
      shape_cache_(other.shape_cache_.load(std::memory_order_relaxed)),
      monotone_cache_(other.monotone_cache_.load(std::memory_order_relaxed)) {}

DiscreteCurve::DiscreteCurve(DiscreteCurve&& other) noexcept
    : v_(std::move(other.v_)),
      dt_(other.dt_),
      shape_cache_(other.shape_cache_.load(std::memory_order_relaxed)),
      monotone_cache_(other.monotone_cache_.load(std::memory_order_relaxed)) {}

DiscreteCurve& DiscreteCurve::operator=(const DiscreteCurve& other) {
  v_ = other.v_;
  dt_ = other.dt_;
  shape_cache_.store(other.shape_cache_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  monotone_cache_.store(other.monotone_cache_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return *this;
}

DiscreteCurve& DiscreteCurve::operator=(DiscreteCurve&& other) noexcept {
  v_ = std::move(other.v_);
  dt_ = other.dt_;
  shape_cache_.store(other.shape_cache_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  monotone_cache_.store(other.monotone_cache_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return *this;
}

DiscreteCurve DiscreteCurve::sample(const PwlCurve& c, double dt, std::size_t n) {
  WLC_REQUIRE(n > 0, "need at least one sample");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = c.eval(dt * static_cast<double>(i));
  return DiscreteCurve(std::move(v), dt);
}

DiscreteCurve DiscreteCurve::zeros(std::size_t n, double dt) {
  return DiscreteCurve(std::vector<double>(n, 0.0), dt);
}

double DiscreteCurve::eval_floor(double x) const {
  WLC_REQUIRE(x >= 0.0, "curves are defined on [0, inf)");
  const auto i = static_cast<std::size_t>(std::floor(x / dt_));
  WLC_REQUIRE(i < v_.size(), "evaluation beyond curve horizon");
  return v_[i];
}

double DiscreteCurve::eval_linear(double x) const {
  WLC_REQUIRE(x >= 0.0, "curves are defined on [0, inf)");
  const double pos = x / dt_;
  const auto i = static_cast<std::size_t>(std::floor(pos));
  WLC_REQUIRE(i < v_.size(), "evaluation beyond curve horizon");
  if (i + 1 == v_.size()) return v_[i];
  const double frac = pos - static_cast<double>(i);
  return v_[i] + frac * (v_[i + 1] - v_[i]);
}

DiscreteCurve operator+(const DiscreteCurve& a, const DiscreteCurve& b) {
  require_compatible(a, b);
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = a[i] + b[i];
  return DiscreteCurve(std::move(v), a.dt());
}

DiscreteCurve operator-(const DiscreteCurve& a, const DiscreteCurve& b) {
  require_compatible(a, b);
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = a[i] - b[i];
  return DiscreteCurve(std::move(v), a.dt());
}

DiscreteCurve operator*(double s, const DiscreteCurve& a) {
  std::vector<double> v(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) v[i] = s * a[i];
  return DiscreteCurve(std::move(v), a.dt());
}

DiscreteCurve DiscreteCurve::pointwise_min(const DiscreteCurve& a, const DiscreteCurve& b) {
  require_compatible(a, b);
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::min(a[i], b[i]);
  return DiscreteCurve(std::move(v), a.dt());
}

DiscreteCurve DiscreteCurve::pointwise_max(const DiscreteCurve& a, const DiscreteCurve& b) {
  require_compatible(a, b);
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::max(a[i], b[i]);
  return DiscreteCurve(std::move(v), a.dt());
}

DiscreteCurve DiscreteCurve::clamp_floor(double floor_value) const {
  std::vector<double> v(v_);
  for (double& x : v) x = std::max(x, floor_value);
  return DiscreteCurve(std::move(v), dt_);
}

DiscreteCurve DiscreteCurve::non_decreasing_closure() const {
  std::vector<double> v(v_);
  for (std::size_t i = 1; i < v.size(); ++i) v[i] = std::max(v[i], v[i - 1]);
  return DiscreteCurve(std::move(v), dt_);
}

DiscreteCurve DiscreteCurve::with_origin(double y0) const {
  std::vector<double> v(v_);
  v[0] += y0;
  return DiscreteCurve(std::move(v), dt_);
}

// ---- engine dispatch --------------------------------------------------------
// The public operators route through the shape-aware engine; the *_naive
// forms below keep the original double loops as the differential oracle.

DiscreteCurve DiscreteCurve::min_plus_conv(const DiscreteCurve& f, const DiscreteCurve& g) {
  return engine::apply(CurveOp::MinPlusConv, f, g);
}

DiscreteCurve DiscreteCurve::min_plus_deconv(const DiscreteCurve& f, const DiscreteCurve& g) {
  return engine::apply(CurveOp::MinPlusDeconv, f, g);
}

DiscreteCurve DiscreteCurve::max_plus_conv(const DiscreteCurve& f, const DiscreteCurve& g) {
  return engine::apply(CurveOp::MaxPlusConv, f, g);
}

DiscreteCurve DiscreteCurve::max_plus_deconv(const DiscreteCurve& f, const DiscreteCurve& g) {
  return engine::apply(CurveOp::MaxPlusDeconv, f, g);
}

DiscreteCurve DiscreteCurve::min_plus_conv_naive(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = std::min(f.size(), g.size());
  std::vector<double> v(n, kInf);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k <= i; ++k) v[i] = std::min(v[i], f[i - k] + g[k]);
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve DiscreteCurve::min_plus_deconv_naive(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = f.size();
  std::vector<double> v(n, -kInf);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(g.size(), n - i);
    for (std::size_t k = 0; k < kmax; ++k) v[i] = std::max(v[i], f[i + k] - g[k]);
  }
  // Defensive: positions with an empty split window would inherit f. With
  // non-empty operands kmax >= 1 everywhere, so this never fires — see the
  // split-window convention in the header.
  for (std::size_t i = 0; i < n; ++i)
    if (v[i] == -kInf) v[i] = f[i];
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve DiscreteCurve::max_plus_conv_naive(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = std::min(f.size(), g.size());
  std::vector<double> v(n, -kInf);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k <= i; ++k) v[i] = std::max(v[i], f[i - k] + g[k]);
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve DiscreteCurve::max_plus_deconv_naive(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = f.size();
  std::vector<double> v(n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(g.size(), n - i);
    for (std::size_t k = 0; k < kmax; ++k) v[i] = std::min(v[i], f[i + k] - g[k]);
  }
  for (std::size_t i = 0; i < n; ++i)
    if (v[i] == kInf) v[i] = f[i];
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve DiscreteCurve::min_plus_conv_convex(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  WLC_REQUIRE(f[0] == 0.0 && g[0] == 0.0, "slope-merge convolution requires f(0) = g(0) = 0");
  WLC_REQUIRE(f.is_convex() && g.is_convex(), "slope-merge convolution requires convexity");
  // (f ⊗ g)(i) minimizes f(i−k) + g(k). For convex curves through the origin
  // the increments of the result are the ascending merge of the operands'
  // (non-decreasing) increment sequences: always advance along the curve
  // whose next increment is cheaper.
  const std::size_t n = std::min(f.size(), g.size());
  std::vector<double> v(n);
  v[0] = 0.0;
  std::size_t fi = 0;  // consumed increments of f
  std::size_t gi = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double df = (fi + 1 < f.size()) ? f[fi + 1] - f[fi] : kInf;
    const double dg = (gi + 1 < g.size()) ? g[gi + 1] - g[gi] : kInf;
    if (df <= dg) {
      v[i] = v[i - 1] + df;
      ++fi;
    } else {
      v[i] = v[i - 1] + dg;
      ++gi;
    }
  }
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve DiscreteCurve::min_plus_conv_concave(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  WLC_REQUIRE(f[0] == 0.0 && g[0] == 0.0, "concave rule requires f(0) = g(0) = 0");
  WLC_REQUIRE(f.is_concave() && g.is_concave(), "concave rule requires concavity");
  // k ↦ f(i−k) + g(k) is concave, hence minimized at a boundary:
  // (f ⊗ g)(i) = min(f(i), g(i)).
  return pointwise_min(f, g);
}

DiscreteCurve DiscreteCurve::sub_additive_closure() const {
  for (double x : v_) WLC_REQUIRE(x >= 0.0, "closure requires a non-negative curve");
  std::vector<double> g(v_);
  g[0] = 0.0;  // the closure is anchored at the origin
  DiscreteCurve cur(std::move(g), dt_);
  for (std::size_t iter = 0; iter < 8 * sizeof(std::size_t); ++iter) {
    DiscreteCurve next = pointwise_min(cur, min_plus_conv(cur, cur));
    if (next.values() == cur.values()) break;
    cur = std::move(next);
  }
  return cur;
}

double DiscreteCurve::sup_diff(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = std::min(f.size(), g.size());
  double best = -kInf;
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, f[i] - g[i]);
  return best;
}

double DiscreteCurve::horizontal_deviation(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  WLC_REQUIRE(g.is_non_decreasing(), "horizontal deviation needs a non-decreasing g");
  double worst = 0.0;
  const auto& gv = g.values();
  for (std::size_t i = 0; i < f.size(); ++i) {
    // Smallest j >= i with g(j) >= f(i); binary search is valid because g is
    // non-decreasing (f need not be).
    if (i >= gv.size()) return kInf;
    const auto it = std::lower_bound(gv.begin() + static_cast<std::ptrdiff_t>(i), gv.end(), f[i]);
    if (it == gv.end()) return kInf;
    const auto j = static_cast<std::size_t>(std::distance(gv.begin(), it));
    worst = std::max(worst, static_cast<double>(j - i) * f.dt());
  }
  return worst;
}

DiscreteCurve::Shape DiscreteCurve::shape() const {
  const auto cached = shape_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return static_cast<Shape>(cached);
  // Exact classification on the rounded increments. Differences of doubles
  // are zero iff the samples are equal, so Constant detection is exact too.
  bool nondecr = true;   // increments non-decreasing → convex
  bool nonincr = true;   // increments non-increasing → concave
  bool all_equal = true; // all increments equal      → affine
  bool all_zero = true;  // all samples equal         → constant
  const double d0 = v_.size() > 1 ? v_[1] - v_[0] : 0.0;
  for (std::size_t i = 1; i < v_.size(); ++i) {
    const double d = v_[i] - v_[i - 1];
    const double prev = i > 1 ? v_[i - 1] - v_[i - 2] : d;
    if (d < prev) nondecr = false;
    if (d > prev) nonincr = false;
    if (d != d0) all_equal = false;
    if (d != 0.0) all_zero = false;
  }
  Shape s = Shape::General;
  if (all_zero) s = Shape::Constant;
  else if (all_equal) s = Shape::Affine;
  else if (nondecr) s = Shape::Convex;
  else if (nonincr) s = Shape::Concave;
  shape_cache_.store(static_cast<std::uint8_t>(s), std::memory_order_relaxed);
  return s;
}

bool DiscreteCurve::is_concave(double tol) const {
  if (tol == 0.0) return shape_is_concave(shape());
  for (std::size_t i = 2; i < v_.size(); ++i)
    if (v_[i] - v_[i - 1] > v_[i - 1] - v_[i - 2] + tol) return false;
  return true;
}

bool DiscreteCurve::is_convex(double tol) const {
  if (tol == 0.0) return shape_is_convex(shape());
  for (std::size_t i = 2; i < v_.size(); ++i)
    if (v_[i] - v_[i - 1] < v_[i - 1] - v_[i - 2] - tol) return false;
  return true;
}

bool DiscreteCurve::is_non_decreasing(double tol) const {
  if (tol == 0.0) {
    const auto cached = monotone_cache_.load(std::memory_order_relaxed);
    if (cached != 0) return cached == 1;
  }
  bool ok = true;
  for (std::size_t i = 1; i < v_.size(); ++i)
    if (v_[i] < v_[i - 1] - tol) {
      ok = false;
      break;
    }
  if (tol == 0.0)
    monotone_cache_.store(ok ? 1 : 2, std::memory_order_relaxed);
  return ok;
}

double DiscreteCurve::inverse_lower(double y) const {
  if (is_non_decreasing()) {
    // O(log n): first grid point with f >= y.
    const auto it = std::lower_bound(v_.begin(), v_.end(), y);
    if (it == v_.end()) return kInf;
    return dt_ * static_cast<double>(std::distance(v_.begin(), it));
  }
  for (std::size_t i = 0; i < v_.size(); ++i)
    if (v_[i] >= y) return dt_ * static_cast<double>(i);
  return kInf;
}

double DiscreteCurve::inverse_upper(double y) const {
  if (is_non_decreasing()) {
    // O(log n): last grid point before f first exceeds y.
    const auto it = std::upper_bound(v_.begin(), v_.end(), y);
    if (it == v_.begin()) return -1.0;
    if (it == v_.end()) return horizon();
    return dt_ * static_cast<double>(std::distance(v_.begin(), it) - 1);
  }
  if (v_[0] > y) return -1.0;
  for (std::size_t i = 1; i < v_.size(); ++i)
    if (v_[i] > y) return dt_ * static_cast<double>(i - 1);
  return horizon();
}

}  // namespace wlc::curve
