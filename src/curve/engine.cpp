#include "curve/engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::curve::engine {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
using Shape = DiscreteCurve::Shape;

std::atomic<bool> g_fast_paths{true};
std::atomic<bool> g_use_cache{true};
std::atomic<std::int64_t> g_fast_count{0};
std::atomic<std::int64_t> g_dense_count{0};

void require_compatible(const DiscreteCurve& a, const DiscreteCurve& b) {
  WLC_REQUIRE(a.dt() == b.dt(), "operands must share the grid spacing");
}

// ---- convolution fast paths -------------------------------------------------
//
// Each kernel emits exactly the oracle's expression at the optimal split —
// fl(f[a] + g[b]) — so the result is one of the oracle's candidates, and
// optimality of the split in real arithmetic plus monotonicity of rounding
// (x ≤ y ⇒ fl(x+c) ≤ fl(y+c)) makes it *the* extremal candidate. The split
// arguments compare rounded quantities, which is exact whenever the sample
// increments are representable (integer cycle counts, dyadic grids) — the
// regime the differential suite pins bit-identity in.

// One operand constant (= c): every split collapses to other[j] + c, so the
// conv is the running extremum of fl(other[j] + c). Addition commutes in
// IEEE-754, so which operand was constant does not matter.
template <bool kMin>
DiscreteCurve conv_constant(const DiscreteCurve& other, double c, std::size_t n) {
  std::vector<double> v(n);
  double best = kMin ? kInf : -kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const double cand = other[i] + c;
    best = kMin ? std::min(best, cand) : std::max(best, cand);
    v[i] = best;
  }
  return DiscreteCurve(std::move(v), other.dt());
}

// Endpoint rule: the split objective k ↦ f(i−k) + g(k) is concave when both
// operands are concave (second difference = Δg − Δf reversed-index ≤ 0), so
// the min sits at k = 0 or k = i; dually the max over convex operands.
template <bool kMin>
DiscreteCurve conv_endpoint(const DiscreteCurve& f, const DiscreteCurve& g,
                            std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = f[i] + g[0];
    const double b = f[0] + g[i];
    v[i] = kMin ? std::min(a, b) : std::max(a, b);
  }
  return DiscreteCurve(std::move(v), f.dt());
}

// Slope merge with index tracking: for convex operands the optimal split of
// step i is one step further along f or g than the optimal split of step
// i−1 (the classical ascending-increment merge). We advance whichever curve
// yields the smaller *candidate value* — comparing fl(f[fi+1]+g[gi]) with
// fl(f[fi]+g[gi+1]) is the increment comparison Δf ≤ Δg in disguise — and
// emit that candidate directly instead of accumulating increments (which
// drifts by ulps; cf. the legacy min_plus_conv_convex). Dually, concave
// operands take the larger candidate for the (max,+) conv.
template <bool kMin>
DiscreteCurve conv_merge(const DiscreteCurve& f, const DiscreteCurve& g,
                         std::size_t n) {
  std::vector<double> v(n);
  v[0] = f[0] + g[0];
  std::size_t fi = 0, gi = 0;  // fi + gi == i - 1 inside the loop
  for (std::size_t i = 1; i < n; ++i) {
    const double via_f = f[fi + 1] + g[gi];
    const double via_g = f[fi] + g[gi + 1];
    const bool advance_f = kMin ? (via_f <= via_g) : (via_f >= via_g);
    if (advance_f) {
      ++fi;
      v[i] = via_f;
    } else {
      ++gi;
      v[i] = via_g;
    }
  }
  return DiscreteCurve(std::move(v), f.dt());
}

// ---- deconvolution fast paths ----------------------------------------------
//
// (f ⊘ g)(i) extremizes h(k) = f(i+k) − g(k) over k < kmax(i) =
// min(g.size, f.size − i). The second difference of h is Δf − Δg, so
// convex-f/concave-g makes h convex (extrema at the window endpoints for the
// max, at the valley for the min) and concave-f/convex-g makes h concave
// (peak for the max, endpoints for the min). The valley/peak is found by
// binary search on the monotone predicate Δf ≷ Δg; the extremal candidate's
// two neighbours are also evaluated, which costs nothing and absorbs
// ulp-level predicate wobble on non-dyadic inputs.

// g constant (= c) covering f's whole horizon: kmax(i) = n − i, so the
// window is the full suffix and fl(ext_k f[i+k] − c) = ext_k fl(f[i+k] − c)
// by rounding monotonicity; the suffix extremum itself is exact.
template <bool kMaxExtremum>
DiscreteCurve deconv_constant(const DiscreteCurve& f, double c) {
  const std::size_t n = f.size();
  std::vector<double> v(n);
  double ext = kMaxExtremum ? -kInf : kInf;
  for (std::size_t i = n; i-- > 0;) {
    ext = kMaxExtremum ? std::max(ext, f[i]) : std::min(ext, f[i]);
    v[i] = ext - c;
  }
  return DiscreteCurve(std::move(v), f.dt());
}

template <bool kMaxExtremum>
DiscreteCurve deconv_endpoint(const DiscreteCurve& f, const DiscreteCurve& g) {
  const std::size_t n = f.size();
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(g.size(), n - i);  // >= 1 always
    double best = f[i] - g[0];
    if (kmax > 1) {
      const double far = f[i + kmax - 1] - g[kmax - 1];
      best = kMaxExtremum ? std::max(best, far) : std::min(best, far);
    }
    v[i] = best;
  }
  return DiscreteCurve(std::move(v), f.dt());
}

template <bool kMaxExtremum>
DiscreteCurve deconv_search(const DiscreteCurve& f, const DiscreteCurve& g) {
  const std::size_t n = f.size();
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(g.size(), n - i);
    // Partition point of "h still moving toward the extremum": for the max
    // (h concave) that is Δf > Δg; for the min (h convex) it is Δf < Δg.
    std::size_t lo = 0, hi = kmax - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const double df = f[i + mid + 1] - f[i + mid];
      const double dg = g[mid + 1] - g[mid];
      const bool keep_going = kMaxExtremum ? (df > dg) : (df < dg);
      if (keep_going) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    double best = f[i + lo] - g[lo];
    if (lo > 0) {
      const double c = f[i + lo - 1] - g[lo - 1];
      best = kMaxExtremum ? std::max(best, c) : std::min(best, c);
    }
    if (lo + 1 < kmax) {
      const double c = f[i + lo + 1] - g[lo + 1];
      best = kMaxExtremum ? std::max(best, c) : std::min(best, c);
    }
    v[i] = best;
  }
  return DiscreteCurve(std::move(v), f.dt());
}

std::optional<DiscreteCurve> try_fast(CurveOp op, const DiscreteCurve& f,
                                      const DiscreteCurve& g) {
  const Shape sf = f.shape();
  const Shape sg = g.shape();
  switch (op) {
    case CurveOp::MinPlusConv: {
      const std::size_t n = std::min(f.size(), g.size());
      if (sg == Shape::Constant) return conv_constant<true>(f, g[0], n);
      if (sf == Shape::Constant) return conv_constant<true>(g, f[0], n);
      if (shape_is_concave(sf) && shape_is_concave(sg)) return conv_endpoint<true>(f, g, n);
      if (shape_is_convex(sf) && shape_is_convex(sg)) return conv_merge<true>(f, g, n);
      return std::nullopt;
    }
    case CurveOp::MaxPlusConv: {
      const std::size_t n = std::min(f.size(), g.size());
      if (sg == Shape::Constant) return conv_constant<false>(f, g[0], n);
      if (sf == Shape::Constant) return conv_constant<false>(g, f[0], n);
      if (shape_is_convex(sf) && shape_is_convex(sg)) return conv_endpoint<false>(f, g, n);
      if (shape_is_concave(sf) && shape_is_concave(sg)) return conv_merge<false>(f, g, n);
      return std::nullopt;
    }
    case CurveOp::MinPlusDeconv: {
      if (sg == Shape::Constant && g.size() >= f.size())
        return deconv_constant<true>(f, g[0]);
      if (shape_is_convex(sf) && shape_is_concave(sg)) return deconv_endpoint<true>(f, g);
      if (shape_is_concave(sf) && shape_is_convex(sg)) return deconv_search<true>(f, g);
      return std::nullopt;
    }
    case CurveOp::MaxPlusDeconv: {
      if (sg == Shape::Constant && g.size() >= f.size())
        return deconv_constant<false>(f, g[0]);
      if (shape_is_concave(sf) && shape_is_convex(sg)) return deconv_endpoint<false>(f, g);
      if (shape_is_convex(sf) && shape_is_concave(sg)) return deconv_search<false>(f, g);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

DiscreteCurve run_dense(CurveOp op, const DiscreteCurve& f, const DiscreteCurve& g) {
  switch (op) {
    case CurveOp::MinPlusConv:
      return min_plus_conv_dense(f, g);
    case CurveOp::MaxPlusConv:
      return max_plus_conv_dense(f, g);
    case CurveOp::MinPlusDeconv:
      return min_plus_deconv_dense(f, g);
    case CurveOp::MaxPlusDeconv:
      return max_plus_deconv_dense(f, g);
  }
  WLC_REQUIRE(false, "unknown curve operator");
  return f;  // unreachable
}

}  // namespace

Config config() {
  return Config{g_fast_paths.load(std::memory_order_relaxed),
                g_use_cache.load(std::memory_order_relaxed)};
}

void set_config(const Config& cfg) {
  g_fast_paths.store(cfg.fast_paths, std::memory_order_relaxed);
  g_use_cache.store(cfg.use_cache, std::memory_order_relaxed);
}

DispatchStats dispatch_stats() {
  DispatchStats s{g_fast_count.load(std::memory_order_relaxed),
                  g_dense_count.load(std::memory_order_relaxed), 0, 0};
  detail::compact_counts(s.compact_knot, s.compact_expand);
  return s;
}

void reset_stats_for_testing() {
  g_fast_count.store(0, std::memory_order_relaxed);
  g_dense_count.store(0, std::memory_order_relaxed);
  detail::reset_compact_counts();
}

// ---- dense fallback kernels -------------------------------------------------
//
// Same flop count as the naive oracles, but the split loop is blocked so the
// g-tile stays in L1 while f slides past it. For a fixed output index the
// split points are still visited in ascending order across tiles, so the
// accumulation sequence — and every rounded intermediate — matches the
// oracle's exactly.

namespace {
constexpr std::size_t kTile = 256;
}

DiscreteCurve min_plus_conv_dense(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = std::min(f.size(), g.size());
  std::vector<double> v(n, kInf);
  for (std::size_t kb = 0; kb < n; kb += kTile) {
    const std::size_t kend = std::min(kb + kTile, n);
    for (std::size_t i = kb; i < n; ++i) {
      double acc = v[i];
      const std::size_t kstop = std::min(kend, i + 1);
      for (std::size_t k = kb; k < kstop; ++k) acc = std::min(acc, f[i - k] + g[k]);
      v[i] = acc;
    }
  }
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve max_plus_conv_dense(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = std::min(f.size(), g.size());
  std::vector<double> v(n, -kInf);
  for (std::size_t kb = 0; kb < n; kb += kTile) {
    const std::size_t kend = std::min(kb + kTile, n);
    for (std::size_t i = kb; i < n; ++i) {
      double acc = v[i];
      const std::size_t kstop = std::min(kend, i + 1);
      for (std::size_t k = kb; k < kstop; ++k) acc = std::max(acc, f[i - k] + g[k]);
      v[i] = acc;
    }
  }
  return DiscreteCurve(std::move(v), f.dt());
}

// The deconv windows walk f and g forward with unit stride — already the
// cache-optimal order — so the dense forms mirror the oracle loops directly.
DiscreteCurve min_plus_deconv_dense(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = f.size();
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(g.size(), n - i);
    double acc = -kInf;
    for (std::size_t k = 0; k < kmax; ++k) acc = std::max(acc, f[i + k] - g[k]);
    v[i] = acc;
  }
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve max_plus_deconv_dense(const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const std::size_t n = f.size();
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t kmax = std::min(g.size(), n - i);
    double acc = kInf;
    for (std::size_t k = 0; k < kmax; ++k) acc = std::min(acc, f[i + k] - g[k]);
    v[i] = acc;
  }
  return DiscreteCurve(std::move(v), f.dt());
}

DiscreteCurve apply(CurveOp op, const DiscreteCurve& f, const DiscreteCurve& g) {
  require_compatible(f, g);
  const Config cfg = config();
  OpCache& cache = OpCache::global();
  const bool use_cache = cfg.use_cache && cache.enabled();
  if (use_cache) {
    if (auto hit = cache.lookup(op, f, g)) {
      WLC_COUNTER_ADD("curve.cache.hits", 1);
      return std::move(*hit);
    }
    WLC_COUNTER_ADD("curve.cache.misses", 1);
  }
  std::optional<DiscreteCurve> result;
  if (cfg.fast_paths) result = try_fast(op, f, g);
  if (result) {
    g_fast_count.fetch_add(1, std::memory_order_relaxed);
    WLC_COUNTER_ADD("curve.dispatch.fast", 1);
  } else {
    g_dense_count.fetch_add(1, std::memory_order_relaxed);
    WLC_COUNTER_ADD("curve.dispatch.dense", 1);
    result = run_dense(op, f, g);
  }
  if (use_cache) {
    const std::size_t evicted = cache.insert(op, f, g, *result);
    if (evicted > 0)
      WLC_COUNTER_ADD("curve.cache.evictions", static_cast<std::int64_t>(evicted));
  }
  return std::move(*result);
}

}  // namespace wlc::curve::engine
