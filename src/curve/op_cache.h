// Fingerprint-keyed memo cache for (min,+)/(max,+) curve operations.
//
// The sizing sweeps in rtc::sizing / rtc::mpa and the GPC chains re-convolve
// the same α/β/γ operands for every candidate frequency or chain stage; the
// dense kernels are O(n²), so recomputation dominates. OpCache memoizes the
// four binary operators keyed by (op tag, operand fingerprints), where a
// fingerprint is a 128-bit byte-hash of the sample vector plus dt and size —
// curves are value types with no identity, so content hashing is the only
// sound key. A hit returns a copy of the stored result, which is
// bit-identical to recomputation (the engine only inserts kernel outputs),
// so caching is invisible to analysis results by construction.
//
// Replacement is LRU by resident bytes. Capacity 0 disables the cache
// entirely (lookups miss, inserts drop). The global() instance is what the
// engine consults; its capacity is wired to `wlc_analyze --curve-cache` and
// clamped by RunPolicy's max_resident_bytes budget (cache residency is
// accounted memory like any other).
//
// Thread safety: all methods are mutex-serialized; the cache is shared
// process-wide (thread pools in mpeg::analyze_clips may hit it
// concurrently). Collisions: a 2×64-bit independent-seed fingerprint makes
// accidental collision probability ~2⁻¹²⁸ per pair; there is no bucket
// chaining on full key bytes beyond that by design.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "curve/compact.h"
#include "curve/discrete_curve.h"

namespace wlc::curve {

/// Tag naming one of the four binary curve operators (the cache key must
/// distinguish min_plus_conv(f,g) from max_plus_conv(f,g) on equal operands).
enum class CurveOp : std::uint8_t {
  MinPlusConv = 0,
  MinPlusDeconv = 1,
  MaxPlusConv = 2,
  MaxPlusDeconv = 3,
};

class OpCache {
 public:
  static constexpr std::size_t kDefaultCapacityBytes = 16u << 20;  // 16 MiB

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t inserts = 0;
    std::size_t entries = 0;
    std::size_t resident_bytes = 0;
    std::size_t capacity_bytes = 0;
  };

  explicit OpCache(std::size_t capacity_bytes = kDefaultCapacityBytes);

  /// Resizing below the resident set evicts LRU entries; 0 disables.
  void set_capacity_bytes(std::size_t capacity_bytes);
  std::size_t capacity_bytes() const;
  bool enabled() const { return capacity_bytes() > 0; }

  /// Returns a copy of the memoized result, refreshing its LRU position.
  std::optional<DiscreteCurve> lookup(CurveOp op, const DiscreteCurve& f,
                                      const DiscreteCurve& g);
  /// Stores `result` for (op, f, g); entries larger than capacity are
  /// dropped. Returns the number of LRU entries evicted to make room.
  std::size_t insert(CurveOp op, const DiscreteCurve& f, const DiscreteCurve& g,
                     const DiscreteCurve& result);

  /// Compact-tier variants: same LRU list, byte accounting, and stats
  /// counters, keyed by knot-byte fingerprints (domain-separated seeds, so
  /// a compact key can never alias the dense key of the expanded curve).
  std::optional<CompactCurve> lookup_compact(CurveOp op, const CompactCurve& f,
                                             const CompactCurve& g);
  std::size_t insert_compact(CurveOp op, const CompactCurve& f, const CompactCurve& g,
                             const CompactCurve& result);

  Stats stats() const;
  /// Drops all entries and zeroes the counters (capacity unchanged).
  void clear();

  /// Process-wide instance used by the dispatch engine.
  static OpCache& global();

 private:
  struct Key {
    std::uint64_t fp_f_lo, fp_f_hi, fp_g_lo, fp_g_hi;
    std::uint8_t op;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    std::vector<double> values;  // dense payload (empty for compact entries)
    double dt;
    std::size_t bytes;
    std::optional<CompactCurve> compact;  // compact payload, when set
  };

  static Key make_key(CurveOp op, const DiscreteCurve& f, const DiscreteCurve& g);
  static Key make_compact_key(CurveOp op, const CompactCurve& f, const CompactCurve& g);
  std::size_t evict_to_fit_locked(std::size_t needed);

  mutable std::mutex mu_;
  std::size_t capacity_bytes_;
  std::size_t resident_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::int64_t hits_ = 0, misses_ = 0, evictions_ = 0, inserts_ = 0;
};

}  // namespace wlc::curve
