// Uniform-grid sampled curves and exact (min,+)/(max,+) algebra on them.
//
// A DiscreteCurve holds samples v[i] = f(i·dt) for i = 0..n-1 on a uniform
// grid. All operations are *exact with respect to the sampled points*: a
// convolution result at grid point i is the true inf/sup over grid-aligned
// split points. When the operand curves are themselves exact on the grid
// (staircase event curves with dt dividing the step, trace-derived curves
// sampled at their own breakpoints, affine curves), the results are exact;
// otherwise grid granularity bounds the error and the caller chooses dt.
//
// Horizon discipline: a curve only speaks for [0, (n-1)·dt]. Deconvolutions
// quantify over shifts that leave the horizon; those terms are dropped and
// the result's horizon shrinks accordingly (see each operation's comment).
// This mirrors what one can soundly conclude from finite traces, which is
// exactly the regime of the paper's case study.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace wlc::curve {

class PwlCurve;

class DiscreteCurve {
 public:
  /// Takes ownership of samples; dt > 0, at least one sample.
  DiscreteCurve(std::vector<double> values, double dt);

  // Copies/moves carry the shape/monotonicity caches along (they describe
  // the sample values, which the copy shares). Explicit because the caches
  // are atomics. A moved-from curve is valueless and must not be used.
  DiscreteCurve(const DiscreteCurve& other);
  DiscreteCurve(DiscreteCurve&& other) noexcept;
  DiscreteCurve& operator=(const DiscreteCurve& other);
  DiscreteCurve& operator=(DiscreteCurve&& other) noexcept;

  /// Samples a closed-form curve at 0, dt, ..., (n-1)·dt.
  static DiscreteCurve sample(const PwlCurve& c, double dt, std::size_t n);
  /// n zero samples.
  static DiscreteCurve zeros(std::size_t n, double dt);

  std::size_t size() const { return v_.size(); }
  double dt() const { return dt_; }
  double horizon() const { return dt_ * static_cast<double>(v_.size() - 1); }
  double operator[](std::size_t i) const { return v_[i]; }
  const std::vector<double>& values() const { return v_; }

  /// Step evaluation: f(x) = v[floor(x/dt)] for x in [0, horizon+dt).
  double eval_floor(double x) const;
  /// Linear interpolation between samples.
  double eval_linear(double x) const;

  // ---- pointwise ops (operands must share dt; result is truncated to the
  //      shorter operand) ----------------------------------------------------
  friend DiscreteCurve operator+(const DiscreteCurve& a, const DiscreteCurve& b);
  friend DiscreteCurve operator-(const DiscreteCurve& a, const DiscreteCurve& b);
  friend DiscreteCurve operator*(double s, const DiscreteCurve& a);
  static DiscreteCurve pointwise_min(const DiscreteCurve& a, const DiscreteCurve& b);
  static DiscreteCurve pointwise_max(const DiscreteCurve& a, const DiscreteCurve& b);

  /// Clamp below at `floor_value` (default 0).
  DiscreteCurve clamp_floor(double floor_value = 0.0) const;
  /// Running maximum — the smallest non-decreasing curve above f.
  DiscreteCurve non_decreasing_closure() const;
  /// f(x) := f(x) + y0 only at x = 0 (useful for closed-window corrections).
  DiscreteCurve with_origin(double y0) const;

  // ---- (min,+) / (max,+) algebra -------------------------------------------
  //
  // The four binary operators dispatch through the shape-aware engine
  // (curve/engine.h): memo cache → exact O(n)/O(n log n) fast path when the
  // operand shapes admit one → cache-blocked dense kernel. Results are
  // bit-identical to the `*_naive` reference forms below, which keep the
  // original O(n²) loops alive as the differential oracle.

  /// (f ⊗ g)(i) = min_{0<=k<=i} f(i-k) + g(k). Result size =
  /// min(f.size, g.size) — beyond that the inf could pick split points
  /// outside either horizon.
  static DiscreteCurve min_plus_conv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// (f ⊘ g)(i) = max_{k>=0, i+k<f.size, k<g.size} f(i+k) - g(k).
  /// Horizon caveat: true deconvolution takes sup over all k; restricting to
  /// the observed horizon yields a *lower* bound on the true sup at each i,
  /// which is the best statement a finite trace supports.
  ///
  /// Split-window convention: the window at position i holds
  /// kmax(i) = min(g.size, f.size − i) shifts. Both operands are non-empty,
  /// so kmax(i) ≥ 1 and the k = 0 term f(i) − g(0) is always admissible —
  /// no position is ever left without a split. In particular a g shorter
  /// than f only *shrinks* the windows (positions i ≥ f.size − g.size use
  /// fewer than g.size shifts; the last position always uses exactly one),
  /// it never empties them. The "inherit f" branch in the naive kernels
  /// (result −∞/+∞ → copy f(i)) is therefore unreachable, defensive code
  /// defining what an empty window *would* mean; tests pin both the
  /// shrinking-window values and the k = 0 floor (tests/curve_engine_test).
  static DiscreteCurve min_plus_deconv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// (f ⊗̄ g)(i) = max_{0<=k<=i} f(i-k) + g(k).
  static DiscreteCurve max_plus_conv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// (f ⊘̄ g)(i) = min_{k>=0, i+k<f.size, k<g.size} f(i+k) - g(k)  (infimum
  /// analogue; same horizon caveat, yielding an *upper* bound on the true
  /// inf, and the same split-window convention as min_plus_deconv).
  static DiscreteCurve max_plus_deconv(const DiscreteCurve& f, const DiscreteCurve& g);

  // Naive O(n²) reference kernels — the differential oracle the engine's
  // fast paths and cache are pinned bit-identical against. Semantics are
  // exactly the operators above; only the evaluation strategy differs.
  static DiscreteCurve min_plus_conv_naive(const DiscreteCurve& f, const DiscreteCurve& g);
  static DiscreteCurve min_plus_deconv_naive(const DiscreteCurve& f, const DiscreteCurve& g);
  static DiscreteCurve max_plus_conv_naive(const DiscreteCurve& f, const DiscreteCurve& g);
  static DiscreteCurve max_plus_deconv_naive(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Fast (min,+) convolution for CONVEX f, g with f(0)=g(0)=0: the result's
  /// increment sequence is the ascending merge of the operands' increment
  /// sequences (classical inf-convolution slope merge). O(n). Cross-checked
  /// against the O(n²) form in tests.
  static DiscreteCurve min_plus_conv_convex(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Fast (min,+) convolution for CONCAVE f, g with f(0)=g(0)=0:
  /// f ⊗ g = min(f, g) pointwise (the split objective is concave in the
  /// split point, so the optimum sits at an endpoint). O(n).
  static DiscreteCurve min_plus_conv_concave(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Sub-additive closure f* — the largest sub-additive curve below f with
  /// f*(0) = 0: the tightest upper arrival/workload bound derivable from f
  /// by self-composition (f*(a+b) <= f*(a) + f*(b)). Computed by repeated
  /// squaring, g <- min(g, g ⊗ g), O(n² log n). Requires f non-negative.
  DiscreteCurve sub_additive_closure() const;

  /// sup_i { f(i) - g(i) } — the vertical deviation; eq. (6)'s backlog bound
  /// when f is a (cycle-based) arrival curve and g a service curve.
  static double sup_diff(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Horizontal deviation sup_i inf{ d : g(i+d) >= f(i) } in seconds — the
  /// delay bound of Network Calculus. Returns +inf if g never catches up
  /// within the horizon.
  static double horizontal_deviation(const DiscreteCurve& f, const DiscreteCurve& g);

  // ---- shape tests -----------------------------------------------------------

  /// Exact shape class of the sample sequence, most specific first:
  /// Constant ⊂ Affine ⊂ (Convex ∩ Concave). Classified with tol = 0 on the
  /// *rounded* increments v[i+1]−v[i] — the doubles the kernels actually
  /// combine — so the engine's optimal-split arguments hold for the stored
  /// values, not an idealized real-valued curve. Computed once per curve and
  /// cached (thread-safe: racing initializers store the same byte).
  enum class Shape : std::uint8_t {
    Unknown = 0,  ///< cache sentinel, never returned
    General,
    Convex,   ///< increments non-decreasing (and not affine)
    Concave,  ///< increments non-increasing (and not affine)
    Affine,   ///< all increments equal (and not zero)
    Constant, ///< all samples equal (single-sample curves included)
  };
  Shape shape() const;

  bool is_concave(double tol = 1e-9) const;
  bool is_convex(double tol = 1e-9) const;
  /// tol == 0 uses the same per-curve cache as the inverse dispatch.
  bool is_non_decreasing(double tol = 0.0) const;

  // ---- pseudo-inverses -------------------------------------------------------
  // O(log n) binary search when the curve is non-decreasing (checked once,
  // cached), mirroring WorkloadCurve::inverse; linear scan otherwise with
  // identical first-crossing semantics.
  /// min{ x on grid : f(x) >= y }; +inf if unreached within horizon.
  double inverse_lower(double y) const;
  /// max{ x on grid : f(x) <= y }; -1 if even f(0) > y, horizon if never exceeded.
  double inverse_upper(double y) const;

 private:
  std::vector<double> v_;
  double dt_;
  mutable std::atomic<std::uint8_t> shape_cache_{0};     // Shape::Unknown
  mutable std::atomic<std::uint8_t> monotone_cache_{0};  // 0 unknown, 1 yes, 2 no
};

/// Shape admits the convex fast paths (affine and constant curves are convex).
constexpr bool shape_is_convex(DiscreteCurve::Shape s) {
  return s == DiscreteCurve::Shape::Convex || s == DiscreteCurve::Shape::Affine ||
         s == DiscreteCurve::Shape::Constant;
}
/// Shape admits the concave fast paths.
constexpr bool shape_is_concave(DiscreteCurve::Shape s) {
  return s == DiscreteCurve::Shape::Concave || s == DiscreteCurve::Shape::Affine ||
         s == DiscreteCurve::Shape::Constant;
}

}  // namespace wlc::curve
