// Uniform-grid sampled curves and exact (min,+)/(max,+) algebra on them.
//
// A DiscreteCurve holds samples v[i] = f(i·dt) for i = 0..n-1 on a uniform
// grid. All operations are *exact with respect to the sampled points*: a
// convolution result at grid point i is the true inf/sup over grid-aligned
// split points. When the operand curves are themselves exact on the grid
// (staircase event curves with dt dividing the step, trace-derived curves
// sampled at their own breakpoints, affine curves), the results are exact;
// otherwise grid granularity bounds the error and the caller chooses dt.
//
// Horizon discipline: a curve only speaks for [0, (n-1)·dt]. Deconvolutions
// quantify over shifts that leave the horizon; those terms are dropped and
// the result's horizon shrinks accordingly (see each operation's comment).
// This mirrors what one can soundly conclude from finite traces, which is
// exactly the regime of the paper's case study.
#pragma once

#include <vector>

#include "common/assert.h"

namespace wlc::curve {

class PwlCurve;

class DiscreteCurve {
 public:
  /// Takes ownership of samples; dt > 0, at least one sample.
  DiscreteCurve(std::vector<double> values, double dt);

  /// Samples a closed-form curve at 0, dt, ..., (n-1)·dt.
  static DiscreteCurve sample(const PwlCurve& c, double dt, std::size_t n);
  /// n zero samples.
  static DiscreteCurve zeros(std::size_t n, double dt);

  std::size_t size() const { return v_.size(); }
  double dt() const { return dt_; }
  double horizon() const { return dt_ * static_cast<double>(v_.size() - 1); }
  double operator[](std::size_t i) const { return v_[i]; }
  const std::vector<double>& values() const { return v_; }

  /// Step evaluation: f(x) = v[floor(x/dt)] for x in [0, horizon+dt).
  double eval_floor(double x) const;
  /// Linear interpolation between samples.
  double eval_linear(double x) const;

  // ---- pointwise ops (operands must share dt; result is truncated to the
  //      shorter operand) ----------------------------------------------------
  friend DiscreteCurve operator+(const DiscreteCurve& a, const DiscreteCurve& b);
  friend DiscreteCurve operator-(const DiscreteCurve& a, const DiscreteCurve& b);
  friend DiscreteCurve operator*(double s, const DiscreteCurve& a);
  static DiscreteCurve pointwise_min(const DiscreteCurve& a, const DiscreteCurve& b);
  static DiscreteCurve pointwise_max(const DiscreteCurve& a, const DiscreteCurve& b);

  /// Clamp below at `floor_value` (default 0).
  DiscreteCurve clamp_floor(double floor_value = 0.0) const;
  /// Running maximum — the smallest non-decreasing curve above f.
  DiscreteCurve non_decreasing_closure() const;
  /// f(x) := f(x) + y0 only at x = 0 (useful for closed-window corrections).
  DiscreteCurve with_origin(double y0) const;

  // ---- (min,+) / (max,+) algebra -------------------------------------------

  /// (f ⊗ g)(i) = min_{0<=k<=i} f(i-k) + g(k).  O(n²). Result size =
  /// min(f.size, g.size) — beyond that the inf could pick split points
  /// outside either horizon.
  static DiscreteCurve min_plus_conv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// (f ⊘ g)(i) = max_{k>=0, i+k<f.size} f(i+k) - g(k).
  /// Horizon caveat: true deconvolution takes sup over all k; restricting to
  /// the observed horizon yields a *lower* bound on the true sup at each i,
  /// which is the best statement a finite trace supports.
  static DiscreteCurve min_plus_deconv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// (f ⊗̄ g)(i) = max_{0<=k<=i} f(i-k) + g(k).
  static DiscreteCurve max_plus_conv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// (f ⊘̄ g)(i) = min_{k>=0, i+k<f.size} f(i+k) - g(k)  (infimum analogue;
  /// same horizon caveat, yielding an *upper* bound on the true inf).
  static DiscreteCurve max_plus_deconv(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Fast (min,+) convolution for CONVEX f, g with f(0)=g(0)=0: the result's
  /// increment sequence is the ascending merge of the operands' increment
  /// sequences (classical inf-convolution slope merge). O(n). Cross-checked
  /// against the O(n²) form in tests.
  static DiscreteCurve min_plus_conv_convex(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Fast (min,+) convolution for CONCAVE f, g with f(0)=g(0)=0:
  /// f ⊗ g = min(f, g) pointwise (the split objective is concave in the
  /// split point, so the optimum sits at an endpoint). O(n).
  static DiscreteCurve min_plus_conv_concave(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Sub-additive closure f* — the largest sub-additive curve below f with
  /// f*(0) = 0: the tightest upper arrival/workload bound derivable from f
  /// by self-composition (f*(a+b) <= f*(a) + f*(b)). Computed by repeated
  /// squaring, g <- min(g, g ⊗ g), O(n² log n). Requires f non-negative.
  DiscreteCurve sub_additive_closure() const;

  /// sup_i { f(i) - g(i) } — the vertical deviation; eq. (6)'s backlog bound
  /// when f is a (cycle-based) arrival curve and g a service curve.
  static double sup_diff(const DiscreteCurve& f, const DiscreteCurve& g);

  /// Horizontal deviation sup_i inf{ d : g(i+d) >= f(i) } in seconds — the
  /// delay bound of Network Calculus. Returns +inf if g never catches up
  /// within the horizon.
  static double horizontal_deviation(const DiscreteCurve& f, const DiscreteCurve& g);

  // ---- shape tests -----------------------------------------------------------
  bool is_concave(double tol = 1e-9) const;
  bool is_convex(double tol = 1e-9) const;
  bool is_non_decreasing(double tol = 0.0) const;

  // ---- pseudo-inverses (monotone curves) -------------------------------------
  /// min{ x on grid : f(x) >= y }; +inf if unreached within horizon.
  double inverse_lower(double y) const;
  /// max{ x on grid : f(x) <= y }; -1 if even f(0) > y, horizon if never exceeded.
  double inverse_upper(double y) const;

 private:
  std::vector<double> v_;
  double dt_;
};

}  // namespace wlc::curve
