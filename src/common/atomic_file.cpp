#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace wlc::common {

namespace {

void set_error(std::string* error, const std::string& step, const std::string& path) {
  if (error != nullptr)
    *error = step + " '" + path + "': " + std::strerror(errno);
}

/// Best-effort fsync of the directory containing `path`, so the rename that
/// just happened inside it is durable. Some filesystems refuse O_RDONLY
/// directory fsync; that is not a correctness problem for the atomicity
/// guarantee (only for durability across power loss), so errors are ignored.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view bytes, std::string* error) {
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid();
  const std::string tmp = tmp_name.str();

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create temp file", tmp);
    return false;
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "cannot write temp file", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    set_error(error, "cannot fsync temp file", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "cannot close temp file", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "cannot rename temp file over", path);
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

bool read_file_bytes(const std::string& path, std::string* bytes, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    set_error(error, "cannot open", path);
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) {
    set_error(error, "cannot read", path);
    return false;
  }
  *bytes = std::move(ss).str();
  return true;
}

}  // namespace wlc::common
