#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/faultfs.h"

namespace wlc::common {

namespace {

void set_error(std::string* error, int* errno_out, const std::string& step,
               const std::string& path) {
  if (errno_out != nullptr) *errno_out = errno;
  if (error != nullptr)
    *error = step + " '" + path + "': " + std::strerror(errno);
}

/// open(2) with an EINTR retry loop; the direct ::open in this file
/// historically never saw EINTR in practice (no slow device paths), but the
/// faultfs EINTR-storm plans exercise it, and a snapshot must survive one.
int open_retry(const char* path, int flags, unsigned mode) {
  for (;;) {
    const int fd = faultfs::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// fsync(2) with an EINTR retry loop, same rationale as open_retry.
int fsync_retry(int fd) {
  for (;;) {
    const int rc = faultfs::fsync(fd);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

/// Best-effort fsync of the directory containing `path`, so the rename that
/// just happened inside it is durable. Some filesystems refuse O_RDONLY
/// directory fsync; that is not a correctness problem for the atomicity
/// guarantee (only for durability across power loss), so errors are ignored.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = open_retry(dir.c_str(), O_RDONLY, 0);
  if (fd >= 0) {
    fsync_retry(fd);
    ::close(fd);
  }
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view bytes, std::string* error,
                       int* errno_out) {
  if (errno_out != nullptr) *errno_out = 0;
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid();
  const std::string tmp = tmp_name.str();

  const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, errno_out, "cannot create temp file", tmp);
    return false;
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = faultfs::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, errno_out, "cannot write temp file", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync_retry(fd) != 0) {
    set_error(error, errno_out, "cannot fsync temp file", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, errno_out, "cannot close temp file", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, errno_out, "cannot rename temp file over", path);
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

bool read_file_bytes(const std::string& path, std::string* bytes, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    set_error(error, nullptr, "cannot open", path);
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) {
    set_error(error, nullptr, "cannot read", path);
    return false;
  }
  *bytes = std::move(ss).str();
  return true;
}

}  // namespace wlc::common
