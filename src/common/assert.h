// Contract-checking macros used throughout the library.
//
// WLC_REQUIRE  — precondition on public API arguments; always enabled and
//                throws wlc::DomainError (a std::invalid_argument) so misuse
//                is recoverable/testable.
// WLC_ASSERT   — internal invariant; always enabled (the library is analysis
//                tooling, not an inner loop of a shipping product) and throws
//                wlc::SoundnessViolation (a std::logic_error).
//
// Both macros stringify the condition and attach file:line so a failure in a
// long experiment run is immediately locatable; the thrown objects carry the
// structured payload of common/error.h for callers that catch wlc::Error.
#pragma once

#include <string>

#include "common/error.h"

namespace wlc::detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  throw DomainError(std::string("precondition failed: ") + cond +
                        (msg.empty() ? "" : ": " + msg),
                    /*offending=*/"", file, line);
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file, int line) {
  throw SoundnessViolation(std::string("invariant violated: ") + cond, /*offending=*/"", file,
                           line);
}

}  // namespace wlc::detail

#define WLC_REQUIRE(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) ::wlc::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define WLC_ASSERT(cond)                                                  \
  do {                                                                    \
    if (!(cond)) ::wlc::detail::assert_failed(#cond, __FILE__, __LINE__); \
  } while (0)
