#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace wlc::common {

namespace {

using Tables = std::array<std::array<std::uint32_t, 256>, 8>;

Tables make_tables() {
  Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::size_t s = 1; s < 8; ++s)
    for (std::uint32_t i = 0; i < 256; ++i)
      t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
  return t;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const Tables t = make_tables();
  std::uint32_t c = 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  // The eight-byte fold loads two u32 words and assumes their byte order
  // matches the table derivation, which holds on little-endian hosts only.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, sizeof lo);
      std::memcpy(&hi, p + 4, sizeof hi);
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n, ++p)
    c = t[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace wlc::common
