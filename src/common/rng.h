// Deterministic random number generation.
//
// The standard-library engines are portable but the standard *distributions*
// are implementation-defined, which would make experiment outputs differ
// between standard libraries. Every stochastic element of this repository
// (synthetic MPEG-2 clips, task-demand generators, property-test inputs)
// therefore flows through this self-contained generator: xoshiro256**
// seeded via SplitMix64, plus hand-written distributions with fully
// specified semantics. Given the same seed, every experiment in the repo is
// bit-reproducible on any platform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"

namespace wlc::common {

/// SplitMix64 — used to expand a single 64-bit seed into a full xoshiro state.
/// Also a fine stateless hash for decorrelating per-entity seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), the library-wide PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    WLC_REQUIRE(lo <= hi, "empty range");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the inclusive range [lo, hi], bias-free (rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    WLC_REQUIRE(lo <= hi, "empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Samples an index according to non-negative `weights` (need not sum to 1).
  std::size_t discrete(std::span<const double> weights);

  /// Truncated-normal-ish sample: mean + stddev * sum-of-3-uniforms shaping,
  /// clamped to [lo, hi]. Cheap, deterministic, and bounded — ideal for cycle
  /// costs that must stay inside a [BCET, WCET] interval.
  double bounded_noise(double mean, double stddev, double lo, double hi);

  /// Derives an independent child generator (for per-clip / per-task streams)
  /// so that adding an entity never perturbs the draws of another.
  Rng fork(std::uint64_t stream_id) {
    std::uint64_t sm = state_[0] ^ (0x632be59bd9b4e019ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace wlc::common
