#include "common/faultfs.h"

#ifndef WLC_FAULT_DISABLE

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/obs.h"

namespace wlc::common::faultfs {

namespace {

enum class Op { Read, Write, Open, Accept, Fsync };
enum class Kind { Eintr, Short, Enospc, Emfile, Delay };

const char* op_name(Op op) {
  switch (op) {
    case Op::Read: return "read";
    case Op::Write: return "write";
    case Op::Open: return "open";
    case Op::Accept: return "accept";
    case Op::Fsync: return "fsync";
  }
  return "?";
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::Eintr: return "eintr";
    case Kind::Short: return "short";
    case Kind::Enospc: return "enospc";
    case Kind::Emfile: return "emfile";
    case Kind::Delay: return "delay";
  }
  return "?";
}

bool kind_valid_for(Op op, Kind kind) {
  switch (kind) {
    case Kind::Eintr: return true;
    case Kind::Delay: return true;
    case Kind::Short: return op == Op::Read || op == Op::Write;
    case Kind::Enospc: return op == Op::Write || op == Op::Open || op == Op::Fsync;
    case Kind::Emfile: return op == Op::Open || op == Op::Accept;
  }
  return false;
}

struct Rule {
  Op op;
  Kind kind;
  double p = 1.0;
  std::uint64_t after = 0;                 // skip the first N matching calls
  std::uint64_t count = ~std::uint64_t{0}; // fire at most N times
  std::uint64_t delay_ms = 1;
  // Mutable bookkeeping (under Plan::mu):
  std::uint64_t calls = 0;
  std::uint64_t fired = 0;
};

struct Plan {
  std::uint64_t seed = 0;
  std::string spec;
  std::vector<Rule> rules;
  Rng rng{0};
  std::uint64_t injected = 0;
  std::mutex mu;
};

/// What a wrapper should do for one call. `kind` empty (nullopt encoded as
/// fire=false) means passthrough.
struct Decision {
  bool fire = false;
  Kind kind = Kind::Eintr;
  std::size_t short_len = 0;  // for Kind::Short: truncated length to pass on
  std::uint64_t delay_ms = 0;
};

std::mutex g_install_mu;
std::shared_ptr<Plan> g_plan;         // guarded by g_install_mu for writes
std::atomic<bool> g_armed{false};     // fast-path flag mirroring g_plan
std::atomic<bool> g_env_checked{false};

std::shared_ptr<Plan> current_plan() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  return g_plan;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw DomainError("bad fault spec (" + why + ")", spec);
}

std::uint64_t parse_u64(const std::string& spec, const std::string& text) {
  std::uint64_t value = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), value);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size())
    bad_spec(spec, "not an unsigned integer: '" + text + "'");
  return value;
}

std::shared_ptr<Plan> parse_spec(const std::string& spec) {
  auto plan = std::make_shared<Plan>();
  plan->spec = spec;
  std::stringstream clauses(spec);
  std::string clause;
  while (std::getline(clauses, clause, ';')) {
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      plan->seed = parse_u64(spec, clause.substr(5));
      continue;
    }
    const auto colon = clause.find(':');
    if (colon == std::string::npos)
      bad_spec(spec, "clause is neither 'seed=N' nor 'op:kind[,...]': '" + clause + "'");
    Rule rule;
    const std::string op_str = clause.substr(0, colon);
    if (op_str == "read") rule.op = Op::Read;
    else if (op_str == "write") rule.op = Op::Write;
    else if (op_str == "open") rule.op = Op::Open;
    else if (op_str == "accept") rule.op = Op::Accept;
    else if (op_str == "fsync") rule.op = Op::Fsync;
    else bad_spec(spec, "unknown op '" + op_str + "'");

    std::stringstream parts(clause.substr(colon + 1));
    std::string part;
    bool first = true;
    while (std::getline(parts, part, ',')) {
      if (first) {
        first = false;
        if (part == "eintr") rule.kind = Kind::Eintr;
        else if (part == "short") rule.kind = Kind::Short;
        else if (part == "enospc") rule.kind = Kind::Enospc;
        else if (part == "emfile") rule.kind = Kind::Emfile;
        else if (part == "delay") rule.kind = Kind::Delay;
        else bad_spec(spec, "unknown fault kind '" + part + "'");
        continue;
      }
      const auto eq = part.find('=');
      if (eq == std::string::npos) bad_spec(spec, "parameter without '=': '" + part + "'");
      const std::string key = part.substr(0, eq);
      const std::string value = part.substr(eq + 1);
      if (key == "p") {
        char* end = nullptr;
        rule.p = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || rule.p < 0.0 || rule.p > 1.0)
          bad_spec(spec, "p must be a probability in [0,1]: '" + value + "'");
      } else if (key == "after") {
        rule.after = parse_u64(spec, value);
      } else if (key == "count") {
        rule.count = parse_u64(spec, value);
      } else if (key == "ms") {
        rule.delay_ms = parse_u64(spec, value);
      } else {
        bad_spec(spec, "unknown parameter '" + key + "'");
      }
    }
    if (first) bad_spec(spec, "op '" + op_str + "' has no fault kind");
    if (!kind_valid_for(rule.op, rule.kind))
      bad_spec(spec, std::string(kind_name(rule.kind)) + " cannot be injected into " +
                         op_name(rule.op) + "()");
    plan->rules.push_back(rule);
  }
  if (plan->rules.empty()) return nullptr;  // e.g. "seed=7" alone: nothing to do
  plan->rng = Rng(plan->seed);
  return plan;
}

void install_plan(std::shared_ptr<Plan> plan) {
  std::lock_guard<std::mutex> lock(g_install_mu);
  g_plan = std::move(plan);
  g_env_checked.store(true, std::memory_order_release);
  g_armed.store(g_plan != nullptr, std::memory_order_release);
}

/// First wrapper call in a process with WLC_FAULT_SPEC set arms the plan
/// from the environment, so any binary linking wlc_common (daemon, client,
/// test runners) honors the variable without CLI plumbing. An explicit
/// install_spec() call beats the environment.
void maybe_arm_from_env() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (g_env_checked.load(std::memory_order_acquire)) return;
  const char* env = ::getenv("WLC_FAULT_SPEC");
  if (env != nullptr && *env != '\0') {
    // A malformed env spec must not crash arbitrary binaries from a
    // constructor-like path; ignore it here (the CLI validates loudly).
    try {
      g_plan = parse_spec(env);
    } catch (const DomainError&) {
      g_plan = nullptr;
    }
  }
  g_env_checked.store(true, std::memory_order_release);
  g_armed.store(g_plan != nullptr, std::memory_order_release);
}

void count_injection(Op op) {
  WLC_COUNTER_ADD("fault.injected", 1);
  switch (op) {
    case Op::Read: WLC_COUNTER_ADD("fault.injected.read", 1); break;
    case Op::Write: WLC_COUNTER_ADD("fault.injected.write", 1); break;
    case Op::Open: WLC_COUNTER_ADD("fault.injected.open", 1); break;
    case Op::Accept: WLC_COUNTER_ADD("fault.injected.accept", 1); break;
    case Op::Fsync: WLC_COUNTER_ADD("fault.injected.fsync", 1); break;
  }
}

/// Evaluates the armed plan for one `op` call of length `len` (0 for ops
/// without a length). First rule that fires wins.
Decision decide(Op op, std::size_t len) {
  maybe_arm_from_env();
  if (!g_armed.load(std::memory_order_acquire)) return {};
  const std::shared_ptr<Plan> plan = current_plan();
  if (!plan) return {};
  std::lock_guard<std::mutex> lock(plan->mu);
  for (Rule& rule : plan->rules) {
    if (rule.op != op) continue;
    rule.calls += 1;
    if (rule.calls <= rule.after) continue;
    if (rule.fired >= rule.count) continue;
    if (rule.p < 1.0 && plan->rng.uniform() >= rule.p) continue;
    rule.fired += 1;
    plan->injected += 1;
    Decision d;
    d.fire = true;
    d.kind = rule.kind;
    d.delay_ms = rule.delay_ms;
    if (rule.kind == Kind::Short && len > 1)
      d.short_len = 1 + static_cast<std::size_t>(plan->rng() % (len - 1));
    else
      d.short_len = len;
    count_injection(op);
    return d;
  }
  return {};
}

void sleep_ms(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

void install_spec(const std::string& spec) {
  if (spec.empty()) {
    install_plan(nullptr);
    return;
  }
  install_plan(parse_spec(spec));
}

void disarm() noexcept { install_plan(nullptr); }

bool armed() noexcept {
  maybe_arm_from_env();
  return g_armed.load(std::memory_order_acquire);
}

std::string describe() {
  const std::shared_ptr<Plan> plan = current_plan();
  if (!plan) return "";
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(plan->mu);
  out << "fault plan seed=" << plan->seed;
  for (const Rule& rule : plan->rules) {
    out << " " << op_name(rule.op) << ":" << kind_name(rule.kind) << "(p=" << rule.p
        << ",fired=" << rule.fired << "/" << rule.calls << ")";
  }
  return out.str();
}

std::uint64_t injected_total() noexcept {
  const std::shared_ptr<Plan> plan = current_plan();
  if (!plan) return 0;
  std::lock_guard<std::mutex> lock(plan->mu);
  return plan->injected;
}

ssize_t read(int fd, void* buf, std::size_t count) noexcept {
  const Decision d = decide(Op::Read, count);
  if (d.fire) {
    switch (d.kind) {
      case Kind::Eintr: errno = EINTR; return -1;
      case Kind::Short: return ::read(fd, buf, d.short_len);
      case Kind::Delay: sleep_ms(d.delay_ms); break;
      default: break;
    }
  }
  return ::read(fd, buf, count);
}

ssize_t write(int fd, const void* buf, std::size_t count) noexcept {
  const Decision d = decide(Op::Write, count);
  if (d.fire) {
    switch (d.kind) {
      case Kind::Eintr: errno = EINTR; return -1;
      case Kind::Enospc: errno = ENOSPC; return -1;
      case Kind::Short: return ::write(fd, buf, d.short_len);
      case Kind::Delay: sleep_ms(d.delay_ms); break;
      default: break;
    }
  }
  return ::write(fd, buf, count);
}

int open(const char* path, int flags, unsigned mode) noexcept {
  const Decision d = decide(Op::Open, 0);
  if (d.fire) {
    switch (d.kind) {
      case Kind::Eintr: errno = EINTR; return -1;
      case Kind::Enospc: errno = ENOSPC; return -1;
      case Kind::Emfile: errno = EMFILE; return -1;
      case Kind::Delay: sleep_ms(d.delay_ms); break;
      default: break;
    }
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
}

int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) noexcept {
  const Decision d = decide(Op::Accept, 0);
  if (d.fire) {
    switch (d.kind) {
      case Kind::Eintr: errno = EINTR; return -1;
      case Kind::Emfile: errno = EMFILE; return -1;
      case Kind::Delay: sleep_ms(d.delay_ms); break;
      default: break;
    }
  }
  return ::accept(sockfd, addr, addrlen);
}

int fsync(int fd) noexcept {
  const Decision d = decide(Op::Fsync, 0);
  if (d.fire) {
    switch (d.kind) {
      case Kind::Eintr: errno = EINTR; return -1;
      case Kind::Enospc: errno = ENOSPC; return -1;
      case Kind::Delay: sleep_ms(d.delay_ms); break;
      default: break;
    }
  }
  return ::fsync(fd);
}

}  // namespace wlc::common::faultfs

#endif  // WLC_FAULT_DISABLE
