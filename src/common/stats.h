// Streaming descriptive statistics and fixed-bin histograms, used by the
// simulators (backlog/response-time tracking) and by the benchmark harnesses.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace wlc::common {

/// Welford-style single-pass accumulator for count/mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Equal-width histogram over [lo, hi); out-of-range samples clamp to the
/// boundary bins so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::int64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  std::int64_t total() const { return total_; }
  /// Smallest x such that at least `q` fraction of samples are <= x
  /// (resolved to bin granularity).
  double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace wlc::common
