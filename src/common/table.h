// Console table / CSV emission used by the experiment harnesses so that every
// reproduced figure and table prints in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wlc::common {

/// A small right-aligned text table. Cells are strings; numeric formatting is
/// the caller's responsibility (helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with a rule under the header, columns padded to content width.
  void print(std::ostream& os) const;
  /// Comma-separated form (no padding) for machine consumption.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting ("12.35" for fmt_f(12.345, 2)).
std::string fmt_f(double v, int precision);
/// Integer with thousands separators ("38'880").
std::string fmt_i(long long v);
/// Percentage with one decimal ("52.1%").
std::string fmt_pct(double fraction);

/// Renders a horizontal ASCII bar of `width` cells filled proportionally to
/// value/scale — used for the bar-chart style figures (e.g. paper Fig. 7).
std::string ascii_bar(double value, double scale, int width);

}  // namespace wlc::common
