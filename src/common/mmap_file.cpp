#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/faultfs.h"

namespace wlc::common {

namespace {

void set_error(std::string* error, const std::string& path, const char* what) {
  if (error) *error = "cannot map " + path + ": " + what + ": " + std::strerror(errno);
}

}  // namespace

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
}

bool MappedFile::open(const std::string& path, MappedFile* out, std::string* error) {
  out->reset();
  int fd = -1;
  do {
    fd = faultfs::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    set_error(error, path, "open");
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_error(error, path, "fstat");
    ::close(fd);
    return false;
  }
  if (!S_ISREG(st.st_mode)) {
    if (error) *error = "cannot map " + path + ": not a regular file";
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {  // valid empty mapping; mmap(len=0) would be EINVAL
    ::close(fd);
    return true;
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (p == MAP_FAILED) {
    set_error(error, path, "mmap");
    return false;
  }
  ::madvise(p, size, MADV_SEQUENTIAL);
  out->data_ = p;
  out->size_ = size;
  return true;
}

}  // namespace wlc::common
