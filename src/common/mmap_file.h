// Read-only memory-mapped files.
//
// The columnar trace reader serves 2M+-row traces without copying them into
// process memory: the file is mapped once and the typed column spans point
// straight into the page cache. This wrapper owns exactly that mapping —
// move-only RAII, released on destruction.
//
// Failure is reported, not thrown: open() returns false with a
// human-readable reason, because callers differ on what a missing file
// means (the CLI prints and exits 2, format sniffing just falls back to
// CSV). An empty file yields a valid zero-length view without calling
// mmap(2) — mapping zero bytes is an EINVAL on POSIX.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace wlc::common {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only into `*out` (replacing any previous mapping).
  /// Returns false and fills `*error` (when given) on any failure; `*out`
  /// is left unmapped in that case.
  static bool open(const std::string& path, MappedFile* out, std::string* error = nullptr);

  std::size_t size() const { return size_; }

  /// The mapped bytes. Valid until this object is destroyed or reassigned.
  std::string_view view() const {
    return data_ == nullptr ? std::string_view{}
                            : std::string_view(static_cast<const char*>(data_), size_);
  }

  const void* data() const { return data_; }

 private:
  void reset() noexcept;

  void* data_ = nullptr;  ///< null for an unmapped object or an empty file
  std::size_t size_ = 0;
};

}  // namespace wlc::common
