// Structured error taxonomy for the whole library.
//
// Every failure a caller can meaningfully react to is one of seven kinds:
//
//   ParseError          — malformed external input (trace files, CSV rows);
//                         carries the input line/column when known.
//   DomainError         — a precondition on a public API argument was
//                         violated (what WLC_REQUIRE throws).
//   SoundnessViolation  — an internal invariant or a curve soundness
//                         property does not hold (what WLC_ASSERT and the
//                         wlc::validate checkers throw). If one of these
//                         escapes, a *bound* can no longer be trusted.
//   OverflowError       — an exact integer computation (window sums, block
//                         extension) would wrap; the library saturates or
//                         refuses rather than silently producing a wrong
//                         Cycles value.
//   CancelledError      — a cooperative run-policy checkpoint observed a
//                         cancelled CancelToken or an expired Deadline
//                         (wlc::runtime); the operation unwound cleanly and
//                         no partial result was published.
//   BudgetExceededError — a wlc::runtime::Budget axis (k-grid points, trace
//                         rows, resident bytes) would be exceeded and the
//                         policy forbids degrading; carries the axis name
//                         and the requested-vs-allowed amounts.
//   DiskFullError       — ENOSPC/EDQUOT while persisting state; the serve
//                         daemon reacts by degrading the session to
//                         in-memory-only instead of dying.
//
// Each concrete type also derives from the std exception the library
// historically threw (std::invalid_argument / std::logic_error /
// std::overflow_error), so existing `catch` sites and tests keep working;
// new code catches `wlc::Error` to get the structured payload: source
// location, the stringified offending value, and a context chain that
// outer layers append to while propagating (see error_context()).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace wlc {

/// Mixin carrying the structured diagnostic payload. Not itself a
/// std::exception — concrete types inherit both this and a std type.
class Error {
 public:
  virtual ~Error() = default;

  /// Taxonomy tag, e.g. "ParseError".
  virtual const char* kind() const noexcept = 0;

  /// Short human-readable summary (without location/context decoration).
  const std::string& message() const noexcept { return message_; }
  /// Stringified offending value, empty if none applies.
  const std::string& offending() const noexcept { return offending_; }
  /// Source location of the throw site ("" / 0 when unknown).
  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }
  /// Outer-to-inner annotations added while the exception propagated.
  const std::vector<std::string>& context() const noexcept { return context_; }

  /// Appends one annotation ("while extracting curves from clip X").
  /// Returns *this so rethrow sites can chain.
  Error& add_context(std::string note) {
    context_.push_back(std::move(note));
    return *this;
  }

  /// Full multi-part diagnostic: kind, message, offending value, source
  /// location and the context chain.
  std::string detail() const;

 protected:
  Error(std::string message, std::string offending, const char* file, int line)
      : message_(std::move(message)),
        offending_(std::move(offending)),
        file_(file ? file : ""),
        line_(line) {}

  /// The string handed to the std exception base (what() text).
  static std::string format_what(const char* kind, const std::string& message,
                                 const std::string& offending, const char* file, int line);

 private:
  std::string message_;
  std::string offending_;
  const char* file_;
  int line_;
  std::vector<std::string> context_;
};

/// Malformed external input. `input_line`/`input_column` locate the fault in
/// the *parsed stream* (1-based; 0 = not applicable), independent of the
/// C++ source location.
class ParseError : public std::invalid_argument, public Error {
 public:
  ParseError(std::string message, std::string offending = "", std::size_t input_line = 0,
             std::size_t input_column = 0, const char* file = "", int line = 0)
      : std::invalid_argument(format_what("ParseError", decorate(message, input_line, input_column),
                                          offending, file, line)),
        Error(decorate(message, input_line, input_column), std::move(offending), file, line),
        input_line_(input_line),
        input_column_(input_column) {}

  const char* kind() const noexcept override { return "ParseError"; }
  std::size_t input_line() const noexcept { return input_line_; }
  std::size_t input_column() const noexcept { return input_column_; }

 private:
  static std::string decorate(const std::string& message, std::size_t l, std::size_t c);

  std::size_t input_line_;
  std::size_t input_column_;
};

/// Public-API precondition violation (WLC_REQUIRE).
class DomainError : public std::invalid_argument, public Error {
 public:
  explicit DomainError(std::string message, std::string offending = "", const char* file = "",
                       int line = 0)
      : std::invalid_argument(format_what("DomainError", message, offending, file, line)),
        Error(std::move(message), std::move(offending), file, line) {}

  const char* kind() const noexcept override { return "DomainError"; }
};

/// Internal invariant or curve soundness property broken (WLC_ASSERT,
/// wlc::validate::Report::require).
class SoundnessViolation : public std::logic_error, public Error {
 public:
  explicit SoundnessViolation(std::string message, std::string offending = "",
                              const char* file = "", int line = 0)
      : std::logic_error(format_what("SoundnessViolation", message, offending, file, line)),
        Error(std::move(message), std::move(offending), file, line) {}

  const char* kind() const noexcept override { return "SoundnessViolation"; }
};

/// Exact integer arithmetic would wrap.
class OverflowError : public std::overflow_error, public Error {
 public:
  explicit OverflowError(std::string message, std::string offending = "", const char* file = "",
                         int line = 0)
      : std::overflow_error(format_what("OverflowError", message, offending, file, line)),
        Error(std::move(message), std::move(offending), file, line) {}

  const char* kind() const noexcept override { return "OverflowError"; }
};

/// A cooperative checkpoint (wlc::runtime::RunPolicy::checkpoint) observed a
/// cancellation request or an expired deadline. Work unwinds cleanly —
/// pools stay usable, no partial result is published — so catching this is
/// the normal way to stop a long-running analysis.
class CancelledError : public std::runtime_error, public Error {
 public:
  /// What tripped the checkpoint: an explicit CancelToken::cancel() call or
  /// a monotonic-clock Deadline passing.
  enum class Reason { Token, Deadline };

  explicit CancelledError(Reason reason, std::string message, std::string offending = "",
                          const char* file = "", int line = 0)
      : std::runtime_error(format_what("CancelledError", message, offending, file, line)),
        Error(std::move(message), std::move(offending), file, line),
        reason_(reason) {}

  const char* kind() const noexcept override { return "CancelledError"; }
  Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

/// The filesystem ran out of space (ENOSPC/EDQUOT) while persisting state.
/// This is the one I/O failure with a sound degraded mode: the serve daemon
/// catches it during session snapshots and downgrades the session to
/// in-memory-only (bounds stay exact, only crash-durability is lost) rather
/// than dying; one-shot commands surface it with the target path attached.
class DiskFullError : public std::runtime_error, public Error {
 public:
  explicit DiskFullError(std::string message, std::string offending = "", const char* file = "",
                         int line = 0)
      : std::runtime_error(format_what("DiskFullError", message, offending, file, line)),
        Error(std::move(message), std::move(offending), file, line) {}

  const char* kind() const noexcept override { return "DiskFullError"; }
};

/// A wlc::runtime::Budget axis would be exceeded and the RunPolicy says
/// Fail rather than Degrade. `axis` names the budget dimension
/// ("grid_points", "trace_rows", "resident_bytes").
class BudgetExceededError : public std::runtime_error, public Error {
 public:
  BudgetExceededError(std::string axis, std::string message, std::string offending = "",
                      const char* file = "", int line = 0)
      : std::runtime_error(format_what("BudgetExceededError", message, offending, file, line)),
        Error(std::move(message), std::move(offending), file, line),
        axis_(std::move(axis)) {}

  const char* kind() const noexcept override { return "BudgetExceededError"; }
  const std::string& axis() const noexcept { return axis_; }

 private:
  std::string axis_;
};

}  // namespace wlc
