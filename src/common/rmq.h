// Shared sliding-window extraction structure — one build, every grid entry.
//
// Workload curves (workload/extract.h) and arrival spans
// (trace/arrival_extract.h) reduce to the same primitive: given a
// contiguous value array v[0..n-1] (demand prefix sums, or event
// timestamps), answer the exact-distance gap extrema
//
//   max_gap(s) = max_{0 <= j < n-s} ( v[j+s] - v[j] )
//   min_gap(s) = min_{0 <= j < n-s} ( v[j+s] - v[j] )
//
// for every shift s in a k-grid. The classic answer is one full O(n) scan
// per entry — the retained *_oracle kernels. SlidingExtrema is built once
// per trace in O(n + (n/B)·log(n/B)) and answers each entry by block-bound
// pruning:
//
//   * Both producers feed *non-decreasing* v (prefix sums, sorted
//     timestamps), where raw block extrema make useless bounds: min/max of
//     a monotone block are its endpoints, so a block bound carries slack of
//     whole blocks of accumulated demand — orders of magnitude above the
//     fluctuation that separates one window from another. The index
//     therefore detrends for its bounds: with the mean slope
//     μ = (v[n−1] − v[0]) / (n−1) and q[j] = v[j] − j·μ, every gap obeys
//     v[j+s] − v[j] = s·μ + (q[j+s] − q[j]) (exactly, in integer T), and q
//     is a mean-zero fluctuation whose block extrema are tight. One build
//     pass collects per-block min/max of q — the whole index; the
//     range-extremum queries a general RMQ would serve always span at most
//     two consecutive blocks here (a block's B shifted right endpoints
//     cover ≤ 2 blocks), so the O(1) range query is two sequential array
//     reads.
//   * A query with shift s gives every j-block b an O(1) bound,
//     ub(b) = s·μ + max q[bB+s .. bB+B-1+s] − min q[bB .. bB+B-1]: an
//     extremum over a superset of the block's right endpoints minus one
//     over a superset of its left endpoints can only be ≥ the block's true
//     best gap. The best-bounded block is scanned exactly first (on the RAW
//     values — the detrend exists only inside the bounds); the blocks whose
//     bound still beats that exact extremum are then scanned best-first off
//     a heap, stopping as soon as the next bound cannot beat the best
//     exactly-scanned candidate — every block behind it in heap order is
//     bounded even lower and prunes with it.
//   * For floating-point T the detrend identity holds only up to rounding,
//     so the bounds are inflated by a margin dominating the worst-case
//     accumulated error (~eps·|v|·a-few — vastly below any real span), in
//     the direction that keeps them conservative. Integer T needs no
//     margin: the identity is exact and the intermediates cannot overflow
//     (|q[j]| ≤ the value range already validated by the producers).
//
// Traces with any burst structure concentrate the extremum, so the first
// exact scan typically kills the whole heap; a trace whose fluctuations are
// flat at block granularity ties many bounds and the query degrades toward
// the oracle scan plus one O(n/B) bound-and-heap pass — never
// asymptotically worse than the oracle.
//
// Exactness, not approximation. Pruning only skips a block when its bound
// (≥ the block's true extremum) cannot beat an exactly-scanned candidate,
// so the reduction runs over exactly the value set the oracle reduces, and
// every candidate v[j+s] − v[j] is the same IEEE/integer subtraction in
// both paths. Extrema are order-independent for these sets — the inputs are
// validated finite (no NaNs) and gaps of equal value are bitwise equal (for
// doubles, a − b with a ≥ b ≥ 0 never produces −0.0 alongside +0.0) — so
// fast results are bit-identical to the oracle, which the rmq-labelled
// differential suite pins across shapes × grids × threads × budgets.
//
// The streaming kernel (streaming_gaps) answers the same grid in ONE
// forward pass with O(|shifts|) auxiliary memory and no index at all — the
// budget-bounded path: when a RunPolicy byte budget admits the value array
// but not the ~n/4 extra bytes of index, extraction falls back to it with
// bit-identical output. (Both producers feed *non-decreasing* v, so the
// textbook monotonic-deque sliding-window minimum collapses: the minimum of
// a window of non-decreasing values is its left endpoint, the deque never
// holds more than one live candidate, and the "deque" is just the running
// position in the array.)
//
// All queries on a const SlidingExtrema are thread-safe (scratch is local),
// so a thread pool may fan grid entries across workers against one shared
// index.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "obs/obs.h"

namespace wlc::common {

/// Which kernel answers a gap-extrema grid. Auto picks the shared index for
/// long traces when any byte budget admits its auxiliary memory, the
/// streaming kernel when the budget does not, and the plain per-entry scans
/// below the crossover. Forcing a specific engine is a test/benchmark hook;
/// every engine is bit-identical on every input.
enum class GapEngine { Auto, Oracle, SharedIndex, Streaming };

template <typename T>
class SlidingExtrema {
 public:
  static constexpr std::int64_t kBlockSize = 64;

  /// Builds the index over `values` (borrowed — must outlive the index).
  /// `checkpoint`, when given, is polled every few thousand blocks so a
  /// RunPolicy cancel or deadline can abort mid-build.
  explicit SlidingExtrema(std::span<const T> values,
                          const std::function<void()>* checkpoint = nullptr)
      : v_(values), n_(static_cast<std::int64_t>(values.size())) {
    blocks_ = (n_ + kBlockSize - 1) / kBlockSize;
    if (blocks_ == 0) return;
    // Mean slope of the (non-decreasing) values: integer division is fine —
    // any constant detrend preserves the gap identity, the mean merely
    // makes q's fluctuations smallest.
    if (n_ > 1) mu_ = (v_[static_cast<std::size_t>(n_ - 1)] - v_[0]) / static_cast<T>(n_ - 1);
    if constexpr (std::is_floating_point_v<T>) {
      // Conservative cover of the rounding error in q[j] = v[j] − j·μ and
      // in s·μ: a handful of ulps at the magnitude of the largest value
      // involved. Inflating every upper bound (deflating every lower one)
      // by it keeps pruning sound; the margin is ~eps·|v| and therefore
      // invisible next to any real span.
      T scale = T{0};
      for (const T x : {v_[0], v_[static_cast<std::size_t>(n_ - 1)]})
        scale = std::max(scale, std::abs(x));
      scale = std::max(scale, std::abs(mu_) * static_cast<T>(n_));
      margin_ = T{16} * std::numeric_limits<T>::epsilon() * scale;
    }
    blk_min_.resize(static_cast<std::size_t>(blocks_));
    blk_max_.resize(static_cast<std::size_t>(blocks_));
    for (std::int64_t b = 0; b < blocks_; ++b) {
      if (checkpoint && *checkpoint && (b & 0xFFF) == 0) (*checkpoint)();
      const std::int64_t lo = b * kBlockSize;
      const std::int64_t hi = std::min(lo + kBlockSize, n_);
      T mn = detrended(lo);
      T mx = mn;
      for (std::int64_t i = lo + 1; i < hi; ++i) {
        const T x = detrended(i);
        mn = std::min(mn, x);
        mx = std::max(mx, x);
      }
      blk_min_[static_cast<std::size_t>(b)] = mn;
      blk_max_[static_cast<std::size_t>(b)] = mx;
    }
  }

  std::int64_t size() const { return n_; }

  /// Auxiliary bytes an index over n values allocates (the two detrended
  /// block-extrema arrays, ~n/32 of the value array) — what a byte budget
  /// must admit on top of the value array itself before Auto picks the
  /// shared index.
  static std::int64_t index_bytes(std::int64_t n) {
    const std::int64_t blocks = (n + kBlockSize - 1) / kBlockSize;
    return 2 * blocks * static_cast<std::int64_t>(sizeof(T));
  }

  /// max_gap(shift); requires 0 <= shift < size(). `windows_scanned`, when
  /// given, accumulates the number of (j, j+shift) pairs actually examined
  /// — the pruning effectiveness signal behind extract.windows_scanned.
  T max_gap(std::int64_t shift, std::int64_t* windows_scanned = nullptr) const {
    return gap<true>(shift, windows_scanned);
  }

  /// min_gap(shift) analogue.
  T min_gap(std::int64_t shift, std::int64_t* windows_scanned = nullptr) const {
    return gap<false>(shift, windows_scanned);
  }

 private:
  /// q[j] = v[j] − j·μ — the fluctuation the bounds are computed over.
  T detrended(std::int64_t j) const {
    return v_[static_cast<std::size_t>(j)] - static_cast<T>(j) * mu_;
  }

  template <bool Max>
  T scan_block(std::int64_t b, std::int64_t shift, std::int64_t nj) const {
    const std::int64_t lo = b * kBlockSize;
    const std::int64_t m = std::min(lo + kBlockSize, nj) - lo;
    const T* a = v_.data() + lo;
    const T* s = a + shift;
    // Four independent reduction lanes break the serial max/min dependency
    // chain; folding lanes at the end reduces the same value set, and max/
    // min over a set is order-free under the no-NaN/no−0.0 precondition
    // (see the bit-identity argument above), so the result is unchanged.
    T r0 = s[0] - a[0];
    T r1 = r0, r2 = r0, r3 = r0;
    std::int64_t j = 1;
    const auto op = [](T x, T y) { return Max ? std::max(x, y) : std::min(x, y); };
    for (; j + 3 < m; j += 4) {
      r0 = op(r0, s[j] - a[j]);
      r1 = op(r1, s[j + 1] - a[j + 1]);
      r2 = op(r2, s[j + 2] - a[j + 2]);
      r3 = op(r3, s[j + 3] - a[j + 3]);
    }
    for (; j < m; ++j) r0 = op(r0, s[j] - a[j]);
    return op(op(r0, r1), op(r2, r3));
  }

  template <bool Max>
  T gap(std::int64_t shift, std::int64_t* windows_scanned) const {
    WLC_REQUIRE(shift >= 0 && shift < n_, "gap shift must satisfy 0 <= shift < size()");
    const std::int64_t nj = n_ - shift;  // valid left endpoints j in [0, nj)
    const std::int64_t jb = (nj + kBlockSize - 1) / kBlockSize;
    // Seed-then-sweep pruning: the argmax-bound block is scanned exactly
    // first, then one ascending pass re-checks every other block's bound
    // against the running best and scans only the survivors. Scan order
    // cannot change the result — the reduction runs over a value set that
    // always includes the extremum, and max/min over a set is order-free
    // (see the bit-identity argument above) — it only changes how many
    // blocks pruning discards.
    // Every gap with this shift carries the same trend term s·μ; the bounds
    // add it back to the detrended block extrema (plus the float rounding
    // margin, signed toward conservatism). A j-block's B right endpoints
    // [lo+s, lo+s+B−1] straddle at most two consecutive blocks, so the
    // shifted-side extremum is two sequential reads of the block-extrema
    // array — the always-taken two-block specialization of block_range.
    const T trend = static_cast<T>(shift) * mu_;
    const T slack = Max ? margin_ : -margin_;
    const T lift = trend + slack;
    const T* qext = (Max ? blk_max_ : blk_min_).data();
    const T* anch = (Max ? blk_min_ : blk_max_).data();
    // A full j-block starts at a multiple of B, so its shifted endpoints land
    // in blocks b + shift/B and b + (shift+B−1)/B — the SAME two offsets for
    // every full block of a query. That turns the bound pass into a
    // branch-free sequential sweep over the block-extrema arrays; only the
    // ragged last block (fewer than B valid j's) needs the general form.
    const std::int64_t full = nj / kBlockSize;
    const std::int64_t d0 = shift / kBlockSize;
    const std::int64_t d1 = (shift + kBlockSize - 1) / kBlockSize;
    auto bound = std::make_unique_for_overwrite<T[]>(static_cast<std::size_t>(jb));
    for (std::int64_t b = 0; b < full; ++b) {
      const T s0 = qext[b + d0];
      const T s1 = qext[b + d1];  // b+d1 ≤ (n−1)/B for full blocks — in range
      const T shifted = Max ? std::max(s0, s1) : std::min(s0, s1);
      bound[b] = shifted - anch[b] + lift;
    }
    for (std::int64_t b = full; b < jb; ++b) {
      const std::int64_t lo = b * kBlockSize;
      const std::int64_t hi = std::min(lo + kBlockSize, nj) - 1;
      const std::int64_t b0 = (lo + shift) / kBlockSize;
      const std::int64_t b1 = (hi + shift) / kBlockSize;
      T shifted = qext[b0];
      if (b1 != b0) shifted = Max ? std::max(shifted, qext[b1]) : std::min(shifted, qext[b1]);
      bound[b] = shifted - anch[b] + lift;
    }
    std::int64_t seed = 0;
    for (std::int64_t b = 1; b < jb; ++b)
      if (Max ? bound[b] > bound[seed] : bound[b] < bound[seed]) seed = b;
    // Seed from the best-bounded block, then best-first over the (few)
    // blocks whose bound still beats the seed's exact extremum. Scan order
    // cannot change the result — the reduction always covers the block
    // holding the true extremum, and max/min over a set is order-free (see
    // the bit-identity argument above) — it only drives how many blocks
    // pruning discards.
    T best = scan_block<Max>(seed, shift, nj);
    std::int64_t scanned = std::min(seed * kBlockSize + kBlockSize, nj) - seed * kBlockSize;
    // Ascending sweep with a live re-check: a block is scanned only while
    // its bound still beats the best exact value seen so far. Because the
    // seed is the argmax-bound block, `best` is near-final before the sweep
    // starts and almost every block fails its check; when bounds cannot
    // discriminate (tiny shifts, where a block's own fluctuation dwarfs a
    // window's spread) the sweep degrades to the sequential, prefetch-
    // friendly scan the oracle would do — never to a random-order walk.
    for (std::int64_t b = 0; b < jb; ++b) {
      if (b == seed) continue;
      // bound ≥ the block's true extremum (≤ for min): once it cannot beat
      // an exactly-scanned candidate the whole block is ruled out.
      if (Max ? bound[static_cast<std::size_t>(b)] <= best
              : bound[static_cast<std::size_t>(b)] >= best)
        continue;
      const T w = scan_block<Max>(b, shift, nj);
      best = Max ? std::max(best, w) : std::min(best, w);
      scanned += std::min(b * kBlockSize + kBlockSize, nj) - b * kBlockSize;
    }
    if (windows_scanned) *windows_scanned += scanned;
    // Aggregate pruning-effectiveness signal: how much of the trace each
    // index query actually touched, visible in report/stats next to the
    // per-run extract.windows_scanned.
    WLC_COUNTER_ADD("rmq.windows_scanned", scanned);
    return best;
  }

  std::span<const T> v_;
  std::int64_t n_ = 0;
  std::int64_t blocks_ = 0;
  T mu_{};      ///< mean slope (v[n−1] − v[0]) / (n − 1); detrend constant
  T margin_{};  ///< float-only rounding cover added to every bound
  std::vector<T> blk_min_, blk_max_;  ///< per-block extrema of q[j] = v[j] − j·μ
};

/// Auto resolution shared by the extraction call sites: the oracle below
/// `crossover` values (index build and bound passes cost more than they
/// prune on short traces), the streaming kernel when an armed byte cap
/// cannot take the value array plus the index's auxiliary bytes, the shared
/// index otherwise. `max_resident_bytes <= 0` means uncapped.
template <typename T>
GapEngine choose_gap_engine(GapEngine requested, std::int64_t values,
                            std::int64_t max_resident_bytes,
                            std::int64_t crossover = 4096) {
  GapEngine chosen = requested;
  if (requested == GapEngine::Auto) {
    if (values < crossover) {
      chosen = GapEngine::Oracle;
    } else if (max_resident_bytes > 0 &&
               values * static_cast<std::int64_t>(sizeof(T)) +
                       SlidingExtrema<T>::index_bytes(values) >
                   max_resident_bytes) {
      chosen = GapEngine::Streaming;
    } else {
      chosen = GapEngine::SharedIndex;
    }
  }
  // Selection counters (requested or auto-resolved alike): which kernel the
  // extraction stack is actually running with, live in report/stats.
  switch (chosen) {
    case GapEngine::Oracle: WLC_COUNTER_ADD("rmq.engine.oracle", 1); break;
    case GapEngine::Streaming: WLC_COUNTER_ADD("rmq.engine.streaming", 1); break;
    default: WLC_COUNTER_ADD("rmq.engine.shared", 1); break;
  }
  return chosen;
}

/// The budget-bounded streaming kernel: folds every (j, j+shift) gap for
/// every tracked shift in ONE ascending pass over `values`, with
/// O(|shifts|) auxiliary memory and no index. For each shift the windows
/// are visited in exactly the oracle's ascending-j order, so the reductions
/// — and the results, bit for bit — match the per-entry scans.
///
/// `shifts` must be non-negative and < values.size(); `max_out`/`min_out`
/// must have shifts.size() slots. `checkpoint`, when given, is polled every
/// few thousand values.
template <typename T>
void streaming_gaps(std::span<const T> values, std::span<const std::int64_t> shifts,
                    std::span<T> max_out, std::span<T> min_out,
                    const std::function<void()>* checkpoint = nullptr) {
  const auto n = static_cast<std::int64_t>(values.size());
  WLC_REQUIRE(max_out.size() == shifts.size() && min_out.size() == shifts.size(),
              "streaming_gaps output spans must match the shift grid");
  std::int64_t total_windows = 0;
  for (const std::int64_t s : shifts) {
    WLC_REQUIRE(s >= 0 && s < n, "gap shift must satisfy 0 <= shift < size()");
    total_windows += n - s;
  }
  WLC_COUNTER_ADD("rmq.windows_scanned", total_windows);
  std::vector<bool> seeded(shifts.size(), false);
  for (std::int64_t m = 0; m < n; ++m) {
    if (checkpoint && *checkpoint && (m & 0x1FFF) == 0) (*checkpoint)();
    const T right = values[static_cast<std::size_t>(m)];
    for (std::size_t i = 0; i < shifts.size(); ++i) {
      const std::int64_t s = shifts[i];
      if (m < s) continue;
      const T w = right - values[static_cast<std::size_t>(m - s)];
      if (!seeded[i]) {
        max_out[i] = w;
        min_out[i] = w;
        seeded[i] = true;
      } else {
        max_out[i] = std::max(max_out[i], w);
        min_out[i] = std::min(min_out[i], w);
      }
    }
  }
}

}  // namespace wlc::common
