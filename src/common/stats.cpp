#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace wlc::common {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  WLC_REQUIRE(hi > lo, "histogram range must be non-empty");
  WLC_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  WLC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) return bin_low(i) + width_;
  }
  return bin_low(counts_.size() - 1) + width_;
}

}  // namespace wlc::common
