// Crash-safe file replacement: write-to-temp, fsync, atomic rename.
//
// Every user-visible output of the library (curve CSVs, metric snapshots,
// degradation reports) and every serve-daemon session snapshot goes through
// atomic_write_file, so a reader — including the recovering daemon itself —
// can never observe a torn file: it sees either the previous complete
// content or the new complete content, even across SIGKILL or power loss
// mid-write. The sequence is the classic one:
//
//   1. write the bytes to `<path>.tmp.<pid>` in the target directory
//      (same filesystem, so the rename below cannot degrade to a copy),
//   2. fsync the temp file (data durable before it becomes visible),
//   3. rename(2) it over `path` (atomic replacement on POSIX),
//   4. fsync the containing directory (the rename itself durable).
//
// Failures never leave the temp file behind and never touch `path`.
#pragma once

#include <string>
#include <string_view>

namespace wlc::common {

/// Atomically replaces `path` with `bytes`. Returns true on success; on any
/// failure returns false, fills `*error` (when non-null) with a
/// human-readable reason including the failing step and errno text, removes
/// the temp file and leaves any previous `path` content untouched.
/// `*errno_out` (when non-null) receives the failing step's errno (0 on
/// success) so callers can react to specific conditions — the serve daemon
/// degrades a session to in-memory-only on ENOSPC instead of dying.
bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error = nullptr, int* errno_out = nullptr);

/// Reads a whole file into a byte string. Returns false (with `*error`
/// filled when non-null) if the file cannot be opened or read.
bool read_file_bytes(const std::string& path, std::string* bytes, std::string* error = nullptr);

}  // namespace wlc::common
