// Fundamental quantity types shared by every module.
//
// The paper expresses execution demand in processor cycles and task
// activations in event counts; both are exact integers here so that curve
// algebra over them is free of floating-point drift. Simulated wall-clock
// time is a double in seconds (the discrete-event kernel orders events by
// it; nanosecond-scale resolution over minutes of simulated time is well
// within double precision).
#pragma once

#include <cstdint>

namespace wlc {

/// Processor cycles (execution demand). Signed so that differences of
/// cumulative demands are representable without casting.
using Cycles = std::int64_t;

/// Number of task activations / events.
using EventCount = std::int64_t;

/// Simulated wall-clock time in seconds.
using TimeSec = double;

/// Clock frequency in Hz (cycles per second).
using Hertz = double;

}  // namespace wlc
