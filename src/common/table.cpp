#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/assert.h"

namespace wlc::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  WLC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  WLC_REQUIRE(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c == 0 ? 0 : 2);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_i(long long v) {
  const bool neg = v < 0;
  unsigned long long magnitude =
      neg ? -static_cast<unsigned long long>(v) : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back('\'');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_pct(double fraction) { return fmt_f(fraction * 100.0, 1) + "%"; }

std::string ascii_bar(double value, double scale, int width) {
  WLC_REQUIRE(scale > 0.0 && width > 0, "bar needs positive scale and width");
  const int cells = static_cast<int>(std::lround(std::clamp(value / scale, 0.0, 1.0) *
                                                 static_cast<double>(width)));
  std::string bar(static_cast<std::size_t>(cells), '#');
  bar.append(static_cast<std::size_t>(width - cells), '.');
  return bar;
}

}  // namespace wlc::common
