#include "common/error.h"

#include <sstream>

namespace wlc {

std::string Error::detail() const {
  std::ostringstream os;
  os << kind() << ": " << message_;
  if (!offending_.empty()) os << " [offending value: " << offending_ << "]";
  if (file_ && file_[0] != '\0') os << " (" << file_ << ":" << line_ << ")";
  for (auto it = context_.rbegin(); it != context_.rend(); ++it) os << "\n  while " << *it;
  return os.str();
}

std::string Error::format_what(const char* kind, const std::string& message,
                               const std::string& offending, const char* file, int line) {
  std::ostringstream os;
  os << kind << ": " << message;
  if (!offending.empty()) os << " [offending value: " << offending << "]";
  if (file && file[0] != '\0') os << " (" << file << ":" << line << ")";
  return os.str();
}

std::string ParseError::decorate(const std::string& message, std::size_t l, std::size_t c) {
  if (l == 0) return message;
  std::ostringstream os;
  os << message << " at input line " << l;
  if (c != 0) os << ", column " << c;
  return os.str();
}

}  // namespace wlc
