// Shared worker-thread pool and deterministic data-parallel helpers.
//
// Workload-curve extraction is the hot path of the pipeline: every k on the
// grid is an independent sliding-window scan over a shared prefix-sum array,
// and every trace in a batch is an independent extraction. Both shapes map
// onto `parallel_for` / `parallel_map` over a `ThreadPool`.
//
// Determinism contract. The helpers never change *what* is computed, only
// *where*: work is split into contiguous index chunks, each index is
// processed by exactly one thread in ascending order within its chunk, and
// results land in caller-indexed slots — no reduction ever crosses a chunk
// boundary. Parallel results are therefore bit-identical to the serial loop
// (tests/parallel_extract_test.cpp holds the serial implementations up as
// the oracle against this promise).
//
// Exception contract. If body invocations throw, every chunk still runs to
// its own completion or first failure, the pool stays usable, and the
// exception of the *lowest-indexed* failing chunk is rethrown ("first error
// wins" — deterministic, so a differential test that expects DomainError
// from index 3 is not raced by index 7).
//
// Deadlock guard. Calling `parallel_for` from inside a pool worker would
// block that worker on tasks that may be queued behind it. Nested calls are
// therefore detected (thread-local ownership mark) and run inline on the
// calling worker — correct, merely not further parallelized.
//
// Cancellation contract. The four-argument overloads take a checkpoint
// callable that runs once on the calling thread before any work is queued
// and then before every body invocation (inline fallback and worker chunks
// alike). A throwing checkpoint — wlc::runtime::RunPolicy::checkpoint
// raising CancelledError — aborts that chunk's remaining iterations; every
// other chunk observes the same condition at its own next checkpoint, the
// pool itself stays fully usable, and first-error-wins still picks the
// lowest-indexed chunk's exception. The checkpoint must be callable
// concurrently from multiple threads and must not mutate shared state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace wlc::common {

/// Number of hardware threads, never less than 1 (the standard allows
/// hardware_concurrency() to return 0 when unknown).
unsigned hardware_threads();

/// Fixed-size worker pool. Threads are started in the constructor and
/// joined in the destructor; `submit` enqueues fire-and-forget jobs.
/// Prefer the `parallel_for`/`parallel_map` helpers, which add blocking,
/// chunking and exception propagation on top.
class ThreadPool {
 public:
  /// Requires threads >= 1. A 1-thread pool is valid and makes every
  /// helper run inline on the calling thread (serial semantics, no queue
  /// hop), which is what the differential tests pin.
  explicit ThreadPool(unsigned threads = hardware_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a job. Jobs must not throw (the helpers wrap bodies in
  /// try/catch); an exception escaping a bare submitted job terminates.
  /// Instrumented (unless WLC_OBS_DISABLE): queue depth gauge
  /// "pool.queue_depth", wait/run latency histograms "pool.task_wait_us" /
  /// "pool.task_run_us", "pool.tasks"/"pool.busy_us" counters and a
  /// "pool.task" trace span per executed job.
  void submit(std::function<void()> job);

  /// True iff the calling thread is one of this pool's workers — the
  /// condition under which a blocking helper must degrade to inline
  /// execution instead of waiting on its own queue.
  bool on_worker_thread() const;

 private:
  /// Queued job plus its enqueue timestamp (µs, 0 when instrumentation is
  /// compiled out) feeding the task-wait-latency histogram.
  struct Item {
    std::function<void()> fn;
    std::int64_t enqueue_us = 0;
  };

  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Completion latch + first-error-wins exception store for one parallel_for.
class ForkJoinState {
 public:
  explicit ForkJoinState(std::size_t chunks) : pending_(chunks), errors_(chunks) {}

  void record_error(std::size_t chunk, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu_);
    errors_[chunk] = std::move(e);
  }

  void finish_chunk() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  }

  /// Blocks until every chunk finished, then rethrows the exception of the
  /// lowest-indexed failing chunk (if any).
  void wait_and_rethrow() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ == 0; });
    for (auto& e : errors_)
      if (e) std::rethrow_exception(e);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace detail

/// Checkpointed parallel_for: runs body(i) for every i in [0, n), invoking
/// check() on the calling thread before any chunk is queued and then before
/// every body call. Deterministic: contiguous chunks, ascending order within
/// each chunk, lowest-chunk exception (body's or check's) rethrown. Degrades
/// to an inline serial loop — with the same checkpoint cadence — for
/// empty/singleton ranges, 1-thread pools, and nested calls from a worker.
template <typename Body, typename Check>
void parallel_for(ThreadPool& pool, std::size_t n, const Body& body, const Check& check) {
  check();
  if (n == 0) return;
  if (n == 1 || pool.size() <= 1 || pool.on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) {
      check();
      body(i);
    }
    return;
  }
  // A few chunks per worker so an expensive tail (large k scans the same
  // O(n) window count as a small k, but cache behaviour differs) cannot
  // serialize the whole call behind one thread.
  const std::size_t chunks = std::min<std::size_t>(n, static_cast<std::size_t>(pool.size()) * 4);
  detail::ForkJoinState state(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t start = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = start;
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    start = hi;
    pool.submit([&state, &body, &check, c, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          check();
          body(i);
        }
      } catch (...) {
        state.record_error(c, std::current_exception());
      }
      state.finish_chunk();
    });
  }
  state.wait_and_rethrow();
}

namespace detail {
/// The uncheckpointed overloads pay nothing: an empty checkpoint inlines to
/// no code at all.
inline constexpr auto kNoCheck = [] {};
}  // namespace detail

/// Runs body(i) for every i in [0, n), blocking until all complete.
/// Deterministic: contiguous chunks, ascending order within each chunk,
/// lowest-chunk exception rethrown. Degrades to an inline serial loop for
/// empty/singleton ranges, 1-thread pools, and nested calls from a worker.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, const Body& body) {
  parallel_for(pool, n, body, detail::kNoCheck);
}

/// Checkpointed parallel_map; see the checkpointed parallel_for for the
/// cancellation contract.
template <typename T, typename Fn, typename Check>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, const Fn& fn,
                  const Check& check) {
  using R = std::decay_t<decltype(fn(items.front()))>;
  std::vector<std::optional<R>> staged(items.size());
  parallel_for(
      pool, items.size(), [&](std::size_t i) { staged[i].emplace(fn(items[i])); }, check);
  std::vector<R> out;
  out.reserve(items.size());
  for (auto& slot : staged) {
    WLC_ASSERT(slot.has_value());
    out.push_back(std::move(*slot));
  }
  return out;
}

/// Maps fn over items, preserving order: out[i] = fn(items[i]). Results
/// are staged through std::optional so the mapped type needs no default
/// constructor (WorkloadCurve, ClipAnalysis, ...).
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, const Fn& fn) {
  return parallel_map(pool, items, fn, detail::kNoCheck);
}

}  // namespace wlc::common
