// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// checksum shared by the serve snapshot format and the columnar trace
// format. One implementation, one polynomial: bytes checksummed by either
// subsystem verify under the other's reader.
//
// The kernel is slice-by-8: eight derived lookup tables let the hot loop
// fold eight input bytes per iteration instead of one, which matters for
// the columnar path (a 2M-row trace checksums ~40 MB per open). On a
// big-endian host the kernel falls back to the plain byte-at-a-time table
// loop — same polynomial, same result, just slower.
#pragma once

#include <cstdint>
#include <string_view>

namespace wlc::common {

/// CRC-32 of `bytes`. Matches zlib's crc32() for the same input.
std::uint32_t crc32(std::string_view bytes);

}  // namespace wlc::common
