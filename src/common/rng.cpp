#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace wlc::common {

std::size_t Rng::discrete(std::span<const double> weights) {
  WLC_REQUIRE(!weights.empty(), "discrete() needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    WLC_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  WLC_REQUIRE(total > 0.0, "weights must not all be zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail: attribute to the last bucket
}

double Rng::bounded_noise(double mean, double stddev, double lo, double hi) {
  WLC_REQUIRE(lo <= hi, "empty range");
  // Sum of three uniforms on [-1,1] has stddev 1, light tails in [-3,3].
  const double shaped = (uniform(-1.0, 1.0) + uniform(-1.0, 1.0) + uniform(-1.0, 1.0));
  return std::clamp(mean + stddev * shaped, lo, hi);
}

}  // namespace wlc::common
