// Deterministic, seeded syscall fault injection for chaos testing.
//
// The serve daemon's failure story (crash-safe snapshots, EINTR loops,
// admission backpressure) is only trustworthy if the *partial*-failure space
// is exercised: short reads and writes, EINTR storms, ENOSPC mid-snapshot,
// EMFILE on accept, and syscalls that complete late. Real kernels produce
// these rarely and non-reproducibly; `faultfs` produces them on demand,
// deterministically, from a one-line seeded plan.
//
// Every I/O call site that matters for the serve data path goes through the
// thin wrappers below instead of calling libc directly:
//
//   faultfs::read / write     — framed-protocol and request-log I/O
//                               (src/serve/net.cpp, server.cpp, request_log)
//   faultfs::open / fsync     — snapshot temp files and mmap'd trace input
//                               (src/common/atomic_file.cpp, mmap_file.cpp)
//   faultfs::accept           — the reactor's listen socket
//
// When no plan is armed the wrappers are a relaxed atomic load away from the
// raw syscall; when the build sets WLC_FAULT_DISABLE they compile to inline
// passthroughs with no atomic, no branch on plan state, and no linkage to
// the plan machinery at all — byte-identical behavior to direct libc calls.
//
// Plan grammar (installed via `wlc_analyze --fault-spec` or the
// WLC_FAULT_SPEC environment variable; see docs/architecture.md):
//
//   spec    := clause (';' clause)*
//   clause  := 'seed=' UINT64
//            | op ':' kind (',' param '=' value)*
//   op      := 'read' | 'write' | 'open' | 'accept' | 'fsync'
//   kind    := 'eintr'   (fail with EINTR, no syscall performed)
//            | 'short'   (perform the syscall with a truncated length;
//                         read/write only)
//            | 'enospc'  (fail with ENOSPC; write/open/fsync only)
//            | 'emfile'  (fail with EMFILE; open/accept only)
//            | 'delay'   (sleep `ms` milliseconds, then perform the call)
//   param   := 'p'       (injection probability in [0,1], default 1.0)
//            | 'after'   (skip the first N matching calls, default 0)
//            | 'count'   (fire at most N times, default unlimited)
//            | 'ms'      (delay duration for kind=delay, default 1)
//
// Example: "seed=42;read:eintr,p=0.2;write:short,p=0.3;fsync:enospc,count=1"
//
// Rules are evaluated in spec order per call; the first rule that fires
// wins. All randomness flows through common::Rng (xoshiro256**), so a given
// (spec, call sequence) pair injects the identical fault schedule on every
// platform — a failing chaos run is replayable from its seed.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

#ifdef WLC_FAULT_DISABLE
#include <fcntl.h>
#include <unistd.h>

#include "common/error.h"
#endif

namespace wlc::common::faultfs {

#ifndef WLC_FAULT_DISABLE

/// True in builds where fault injection is linked in at all.
inline constexpr bool kCompiledIn = true;

/// Parses `spec` and arms the global plan (replacing any previous one).
/// An empty spec disarms. Throws wlc::DomainError on a grammar error or an
/// op/kind combination that makes no sense (e.g. accept:enospc); nothing is
/// installed in that case. Thread-safe.
void install_spec(const std::string& spec);

/// Removes any armed plan; wrappers revert to passthrough.
void disarm() noexcept;

/// True when a plan is currently armed (fast, lock-free).
bool armed() noexcept;

/// Human-readable one-line summary of the armed plan and per-rule fire
/// counts, e.g. for a daemon start-up log line. Empty string when disarmed.
std::string describe();

/// Total faults injected since the plan was installed.
std::uint64_t injected_total() noexcept;

/// Wrappers. Signatures mirror libc; errno carries the failure reason
/// exactly as a real kernel would report it.
ssize_t read(int fd, void* buf, std::size_t count) noexcept;
ssize_t write(int fd, const void* buf, std::size_t count) noexcept;
int open(const char* path, int flags, unsigned mode = 0) noexcept;
int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) noexcept;
int fsync(int fd) noexcept;

#else  // WLC_FAULT_DISABLE: zero-cost passthrough, no plan machinery linked.

inline constexpr bool kCompiledIn = false;

inline void install_spec(const std::string& spec) {
  if (!spec.empty())
    throw DomainError("fault injection was compiled out (WLC_FAULT_DISABLE); --fault-spec/"
                      "WLC_FAULT_SPEC cannot be honored",
                      spec);
}
inline void disarm() noexcept {}
inline bool armed() noexcept { return false; }
inline std::string describe() { return ""; }
inline std::uint64_t injected_total() noexcept { return 0; }

inline ssize_t read(int fd, void* buf, std::size_t count) noexcept {
  return ::read(fd, buf, count);
}
inline ssize_t write(int fd, const void* buf, std::size_t count) noexcept {
  return ::write(fd, buf, count);
}
inline int open(const char* path, int flags, unsigned mode = 0) noexcept {
  return ::open(path, flags, static_cast<mode_t>(mode));
}
inline int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) noexcept {
  return ::accept(sockfd, addr, addrlen);
}
inline int fsync(int fd) noexcept { return ::fsync(fd); }

#endif  // WLC_FAULT_DISABLE

}  // namespace wlc::common::faultfs
