#include "common/thread_pool.h"

#include "obs/obs.h"

namespace wlc::common {

namespace {
/// Set for the lifetime of a worker's loop; lets blocking helpers detect
/// that they are being re-entered from inside their own pool.
thread_local const ThreadPool* t_owning_pool = nullptr;
}  // namespace

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  WLC_REQUIRE(threads >= 1, "a thread pool needs at least one thread");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  Item item{std::move(job), 0};
#ifndef WLC_OBS_DISABLE
  item.enqueue_us = obs::now_us();
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  WLC_GAUGE_ADD("pool.queue_depth", 1);
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const { return t_owning_pool == this; }

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  WLC_GAUGE_ADD("pool.workers", 1);
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ set and queue drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    WLC_GAUGE_ADD("pool.queue_depth", -1);
#ifndef WLC_OBS_DISABLE
    const std::int64_t start_us = obs::now_us();
    WLC_HISTOGRAM_OBSERVE("pool.task_wait_us", start_us - item.enqueue_us);
#endif
    {
      WLC_TRACE_SPAN("pool.task");
      item.fn();
    }
#ifndef WLC_OBS_DISABLE
    const std::int64_t run_us = obs::now_us() - start_us;
    WLC_HISTOGRAM_OBSERVE("pool.task_run_us", run_us);
    WLC_COUNTER_ADD("pool.busy_us", run_us);
#endif
    WLC_COUNTER_ADD("pool.tasks", 1);
  }
  WLC_GAUGE_ADD("pool.workers", -1);
}

}  // namespace wlc::common
