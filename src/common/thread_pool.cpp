#include "common/thread_pool.h"

namespace wlc::common {

namespace {
/// Set for the lifetime of a worker's loop; lets blocking helpers detect
/// that they are being re-entered from inside their own pool.
thread_local const ThreadPool* t_owning_pool = nullptr;
}  // namespace

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  WLC_REQUIRE(threads >= 1, "a thread pool needs at least one thread");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const { return t_owning_pool == this; }

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace wlc::common
